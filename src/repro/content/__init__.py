"""Search content model: keywords and synthetic result pages."""

from repro.content.keywords import Keyword, KeywordCatalog, KeywordClass
from repro.content.page import PageGenerator, PageProfile

__all__ = [
    "Keyword",
    "KeywordCatalog",
    "KeywordClass",
    "PageGenerator",
    "PageProfile",
]
