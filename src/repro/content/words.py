"""Vocabulary used to synthesise search keywords and result snippets.

The paper drove its measurements with keyword sets of varying popularity
(taken from Bing's trending list), granularity (progressively refined
phrases such as "Computer Science Department at University of Minnesota")
and complexity (uncorrelated mixtures like "computer and potato").  The
word pools below let the keyword generator build all three classes
deterministically.
"""

from __future__ import annotations

#: Words that anchor popular, heavily cached queries.
POPULAR_TOPICS = (
    "weather", "news", "maps", "youtube", "facebook", "music", "movies",
    "games", "sports", "stocks", "election", "olympics", "recipes",
    "travel", "jobs", "lottery", "horoscope", "celebrity", "fashion",
    "football",
)

#: Academic/technical nouns used to build refined multi-word queries.
TOPIC_NOUNS = (
    "computer", "science", "department", "university", "minnesota",
    "network", "measurement", "performance", "distribution", "content",
    "dynamic", "server", "cloud", "computing", "mobile", "search",
    "engine", "protocol", "latency", "bandwidth", "proxy", "cache",
    "datacenter", "internet", "systems", "analysis", "research",
    "laboratory", "institute", "conference",
)

#: Deliberately uncorrelated words for "complex" mixture queries
#: (the paper's example: "computer and potato").
UNCORRELATED_NOUNS = (
    "potato", "umbrella", "giraffe", "accordion", "volcano", "pancake",
    "submarine", "cactus", "trombone", "walrus", "origami", "lighthouse",
    "marmalade", "tundra", "catapult", "bagpipe", "glacier", "teapot",
    "zeppelin", "mongoose",
)

#: Filler words for generating result snippets and ad copy.
SNIPPET_WORDS = (
    "the", "of", "and", "a", "to", "in", "is", "for", "on", "with",
    "as", "by", "at", "from", "this", "that", "are", "be", "or", "an",
    "service", "official", "site", "page", "home", "free", "online",
    "best", "top", "new", "guide", "information", "about", "find",
    "results", "learn", "more", "get", "your", "here",
)

#: Static navigation entries rendered on every result page (the paper
#: calls out "Videos", "News", "Shopping" as part of the cached static
#: portion).
STATIC_MENU_ITEMS = (
    "Web", "Images", "Videos", "News", "Shopping", "Maps", "More",
)

#: Keyword-dependent navigation entries (part of the dynamic portion).
DYNAMIC_MENU_ITEMS = (
    "Related searches", "Search history", "Advanced", "Translate",
    "Books", "Places", "Discussions",
)
