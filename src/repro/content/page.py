"""Synthetic search-result pages.

Search responses are modelled exactly as the paper dissects them
(Section 3): a **static portion** — HTTP/HTML header, CSS, and the static
menu bar ("Videos", "News", "Shopping", ...) — that is byte-identical for
every query against a given service, and a **dynamic portion** — the
keyword-dependent menu, result list and ads — generated per query.

The generator emits *actual bytes* so the analysis pipeline can discover
the static/dynamic boundary the same way the paper did: by diffing
response bodies across different keywords, with no access to ground
truth.  Content is fully deterministic given (service, keyword).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.content import words
from repro.content.keywords import Keyword
from repro.sim.randomness import derive_seed
import random


@dataclass(frozen=True)
class PageProfile:
    """Size model of a service's result pages.

    Sizes in bytes.  Defaults approximate a 2011 search result page:
    ~10-15 kB of static boilerplate, ~20-60 kB total.
    """

    static_size: int = 12_000
    dynamic_base_size: int = 24_000
    dynamic_complexity_size: int = 14_000
    results_per_page: int = 10
    ads_per_page: int = 3

    def __post_init__(self):
        if self.static_size < 512:
            raise ValueError("static portion unrealistically small")
        if self.dynamic_base_size < 1024:
            raise ValueError("dynamic base size unrealistically small")

    def dynamic_size(self, keyword: Keyword) -> int:
        """Target dynamic-portion size for a keyword.

        More complex queries return longer (deeper) result sets; very
        popular queries carry more ads but the effect is mild — the
        paper notes result sizes are broadly similar across queries.
        """
        size = self.dynamic_base_size
        size += int(self.dynamic_complexity_size * keyword.complexity)
        size += int(2000 * keyword.popularity)
        return size


class PageGenerator:
    """Deterministic page builder for one simulated search service."""

    def __init__(self, service_name: str, profile: PageProfile = None,
                 seed: int = 0):
        self.service_name = service_name
        self.profile = profile or PageProfile()
        self.seed = seed
        self._static_cache: bytes = b""

    # ------------------------------------------------------------------
    # static portion
    # ------------------------------------------------------------------
    def static_content(self) -> bytes:
        """The cached-at-FE static prefix (identical for all queries)."""
        if not self._static_cache:
            self._static_cache = self._build_static()
        return self._static_cache

    def _build_static(self) -> bytes:
        menu = "".join('<li class="nav">%s</li>' % item
                       for item in words.STATIC_MENU_ITEMS)
        head = (
            "<!DOCTYPE html>\n"
            '<html><head><meta charset="utf-8">\n'
            "<title>%s search</title>\n" % self.service_name
        )
        banner = ('</head><body><div class="menubar"><ul>%s</ul></div>\n'
                  % menu)
        css_rng = random.Random(derive_seed(self.seed,
                                            "css/" + self.service_name))
        css_rules = []
        selectors = ["body", ".result", ".ad", ".nav", "#logo", "#footer",
                     "h1", "h2", "a", "p", ".snippet", ".menubar"]
        properties = ["margin", "padding", "border", "color", "font-size",
                      "line-height", "width", "height", "background"]
        css_budget = (self.profile.static_size - len(head) - len(banner)
                      - len("<style></style>\n"))
        while sum(len(r) for r in css_rules) < css_budget:
            selector = css_rng.choice(selectors)
            body = ";".join("%s:%dpx" % (css_rng.choice(properties),
                                         css_rng.randrange(100))
                            for _ in range(6))
            css_rules.append("%s{%s}" % (selector, body))
        if css_rules and sum(len(r) for r in css_rules) > css_budget:
            css_rules.pop()  # keep head+css+banner within the target
        css = "<style>%s</style>\n" % "".join(css_rules)
        page = (head + css + banner).encode("utf-8")
        return self._fit(page, self.profile.static_size,
                         filler_tag=b"<!-- static-pad -->")

    # ------------------------------------------------------------------
    # dynamic portion
    # ------------------------------------------------------------------
    def dynamic_content(self, keyword: Keyword) -> bytes:
        """The per-query dynamic suffix (results, ads, dynamic menu)."""
        rng = random.Random(derive_seed(
            self.seed, "dyn/%s/%s" % (self.service_name, keyword.text)))
        target = self.profile.dynamic_size(keyword)
        parts: List[str] = []
        parts.append('<div class="dynmenu">%s</div>\n' % "".join(
            "<span>%s: %s</span>" % (item, keyword.text)
            for item in words.DYNAMIC_MENU_ITEMS[:4]))
        for i in range(self.profile.ads_per_page):
            parts.append(self._ad(rng, keyword, i))
        result_count = 0
        while sum(len(p) for p in parts) < target - 400:
            parts.append(self._result(rng, keyword, result_count))
            result_count += 1
        parts.append("<div id=\"footer\">%s results generated</div>"
                     "</body></html>" % result_count)
        page = "".join(parts).encode("utf-8")
        return self._fit(page, target, filler_tag=b"<!-- dyn-pad -->")

    def _result(self, rng: random.Random, keyword: Keyword,
                index: int) -> str:
        snippet = " ".join(rng.choice(words.SNIPPET_WORDS)
                           for _ in range(30))
        return ('<div class="result"><h2><a href="http://site%d.example/'
                '%s">%s — result %d</a></h2>'
                '<p class="snippet">%s</p></div>\n'
                % (rng.randrange(10_000),
                   keyword.text.replace(" ", "-"), keyword.text,
                   index + 1, snippet))

    def _ad(self, rng: random.Random, keyword: Keyword, index: int) -> str:
        copy = " ".join(rng.choice(words.SNIPPET_WORDS) for _ in range(12))
        return ('<div class="ad">Ad %d: %s — %s</div>\n'
                % (index + 1, keyword.text, copy))

    # ------------------------------------------------------------------
    def full_page(self, keyword: Keyword) -> bytes:
        """Static + dynamic concatenation, as delivered to a user."""
        return self.static_content() + self.dynamic_content(keyword)

    @staticmethod
    def _fit(page: bytes, target: int, filler_tag: bytes) -> bytes:
        """Pad (with comment filler) or trim ``page`` to ``target`` bytes."""
        if len(page) < target:
            filler = filler_tag * (1 + (target - len(page))
                                   // len(filler_tag))
            page += filler[:target - len(page)]
        elif len(page) > target:
            page = page[:target]
        return page
