"""Search keyword model.

The paper classifies queries along three axes (Section 3):

* **popularity** — trending keywords (shown in the search box's
  suggestion list) versus obscure ones;
* **granularity** — progressively refined phrases, e.g. "Computer
  Science Department" -> "Computer Science Department at University of
  Minnesota";
* **complexity** — long queries mixing uncorrelated terms, e.g.
  "computer and potato".

:class:`Keyword` carries those attributes; :class:`KeywordCatalog`
deterministically generates keyword sets per class, including the large
40,000-keyword pool used for the FE-caching experiments and the
suggestion-box subset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.content import words
from repro.sim.randomness import RandomStreams


class KeywordClass(enum.Enum):
    """The four keyword types exercised in the paper's Figure 3."""

    POPULAR = "popular"
    REFINED = "refined"
    COMPLEX = "complex"
    MIXED = "mixed"


@dataclass(frozen=True)
class Keyword:
    """A search query with the attributes that drive back-end cost.

    Attributes
    ----------
    text:
        The query string as typed by a user.
    popularity:
        In [0, 1]; higher means more users issue it (and back-end result
        caches are hotter, reducing processing time).
    complexity:
        In [0, 1]; higher means more posting lists to intersect and
        uncorrelated terms to join (raising processing time).
    granularity:
        Refinement depth: 1 for a bare topic, increasing as qualifying
        words are appended.
    suggested:
        Whether the keyword appears in the search box suggestion list.
    """

    text: str
    popularity: float
    complexity: float
    granularity: int = 1
    suggested: bool = False

    def __post_init__(self):
        if not self.text:
            raise ValueError("keyword text must be non-empty")
        if not 0.0 <= self.popularity <= 1.0:
            raise ValueError("popularity must be in [0,1]")
        if not 0.0 <= self.complexity <= 1.0:
            raise ValueError("complexity must be in [0,1]")
        if self.granularity < 1:
            raise ValueError("granularity must be >= 1")

    @property
    def word_count(self) -> int:
        return len(self.text.split())


class KeywordCatalog:
    """Deterministic generator of keyword sets.

    All draws derive from a :class:`RandomStreams` registry so two
    catalogs built with the same seed produce identical keyword sets.
    """

    def __init__(self, seed: int = 0):
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------------
    # the four Figure-3 classes
    # ------------------------------------------------------------------
    def popular(self, count: int) -> List[Keyword]:
        """Trending single-topic keywords (suggestion-box material)."""
        rng = self.streams.get("popular")
        out = []
        for i in range(count):
            topic = words.POPULAR_TOPICS[i % len(words.POPULAR_TOPICS)]
            suffix = "" if i < len(words.POPULAR_TOPICS) else " %d" % (
                i // len(words.POPULAR_TOPICS))
            out.append(Keyword(text=topic + suffix,
                               popularity=rng.uniform(0.8, 1.0),
                               complexity=rng.uniform(0.0, 0.15),
                               granularity=1, suggested=True))
        return out

    def refined(self, count: int, depth: int = 4) -> List[Keyword]:
        """Progressively refined phrases of increasing granularity."""
        rng = self.streams.get("refined")
        out = []
        for i in range(count):
            base_index = rng.randrange(len(words.TOPIC_NOUNS))
            phrase_words = [words.TOPIC_NOUNS[(base_index + j) %
                                              len(words.TOPIC_NOUNS)]
                            for j in range(2 + (i % depth))]
            granularity = len(phrase_words) - 1
            out.append(Keyword(text=" ".join(phrase_words),
                               popularity=rng.uniform(0.2, 0.5)
                               / granularity,
                               complexity=min(1.0, 0.2 + 0.1 * granularity),
                               granularity=granularity))
        return out

    def complex(self, count: int) -> List[Keyword]:
        """Long queries mixing uncorrelated terms ("computer and potato")."""
        rng = self.streams.get("complex")
        out = []
        for _ in range(count):
            left = rng.choice(words.TOPIC_NOUNS)
            right = rng.choice(words.UNCORRELATED_NOUNS)
            extra = rng.choice(words.UNCORRELATED_NOUNS)
            text = "%s and %s %s" % (left, right, extra)
            out.append(Keyword(text=text,
                               popularity=rng.uniform(0.0, 0.05),
                               complexity=rng.uniform(0.7, 1.0),
                               granularity=1))
        return out

    def mixed(self, count: int) -> List[Keyword]:
        """Mid-popularity, mid-complexity everyday queries."""
        rng = self.streams.get("mixed")
        out = []
        for _ in range(count):
            text = "%s %s" % (rng.choice(words.TOPIC_NOUNS),
                              rng.choice(words.SNIPPET_WORDS))
            out.append(Keyword(text=text,
                               popularity=rng.uniform(0.3, 0.7),
                               complexity=rng.uniform(0.3, 0.6),
                               granularity=1))
        return out

    def figure3_set(self) -> List[Keyword]:
        """One keyword of each class, ordered popular -> complex.

        These are the "key1..key4" of the paper's Figure 3.
        """
        return [self.popular(1)[0], self.mixed(1)[0],
                self.refined(1)[0], self.complex(1)[0]]

    # ------------------------------------------------------------------
    # large pools for the caching experiments (Section 3)
    # ------------------------------------------------------------------
    def bulk_pool(self, count: int = 40_000,
                  suggested_fraction: float = 0.5) -> List[Keyword]:
        """The 40,000-keyword pool: half suggested, half obscure."""
        # Shard-safe despite the shared stream: every worker builds the
        # identical pool from a fresh catalog before any shard-variant
        # work, so the draw order is fixed (the serial-vs-sharded
        # fingerprint tests lock this in).
        rng = self.streams.get("bulk")  # simlint: ignore[RNG001]
        out = []
        for i in range(count):
            suggested = (i / max(1, count)) < suggested_fraction
            noun = words.TOPIC_NOUNS[i % len(words.TOPIC_NOUNS)]
            other = words.UNCORRELATED_NOUNS[i % len(words.UNCORRELATED_NOUNS)]
            text = "%s %s %d" % (noun, other, i)
            out.append(Keyword(
                text=text,
                popularity=rng.uniform(0.6, 1.0) if suggested
                else rng.uniform(0.0, 0.2),
                complexity=rng.uniform(0.2, 0.8),
                suggested=suggested))
        return out

    @staticmethod
    def refinement_chain(base: Sequence[str]) -> List[Keyword]:
        """Build the paper's explicit granularity example: each prefix of
        ``base`` becomes one keyword of increasing granularity."""
        chain = []
        for depth in range(1, len(base) + 1):
            text = " ".join(base[:depth])
            chain.append(Keyword(text=text,
                                 popularity=max(0.05, 0.5 / depth),
                                 complexity=min(1.0, 0.15 * depth),
                                 granularity=depth))
        return chain
