"""repro — reproduction of "Characterizing Roles of Front-end Servers in
End-to-End Performance of Dynamic Content Distribution" (IMC 2011).

The package simulates the paper's entire measurement universe — a
packet-level network with a faithful TCP, split-TCP front-end servers
with static-content caches, back-end search data centers, and a
PlanetLab-style testbed — and implements the paper's model-based
inference framework on top of captured packet traces.

Layer map (bottom-up):

========================  ==================================================
``repro.sim``             discrete-event engine, RNG streams, processes
``repro.net``             packets, links, nodes, routing, geography
``repro.tcp``             TCP: handshake, slow start, loss recovery
``repro.http``            HTTP/1.1 with chunked streaming
``repro.content``         keywords and synthetic search-result pages
``repro.services``        back-end data centers, front-end servers
``repro.testbed``         vantage points, sites, scenario assembly
``repro.measure``         packet capture, query emulator, campaigns
``repro.analysis``        stream reconstruction, boundaries, statistics
``repro.core``            the paper's inference framework (the result)
``repro.experiments``     one runner per figure of the paper
========================  ==================================================
"""

__version__ = "1.0.0"
