"""Plain-text charts for terminal reports.

The benchmark harness regenerates the paper's *figures*; these helpers
make the text output actually look like them: scatter plots (Figures 5,
7, 9), line/step plots for CDFs (Figure 6), and horizontal box plots
(Figure 8).  No plotting dependency is available offline, and ASCII
keeps the output greppable and diffable.

All functions return a string; callers decide where to print it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.stats import BoxStats

#: Marker characters assigned to series, in order.
SERIES_MARKS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    """Map value in [low, high] to a cell index in [0, cells-1]."""
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(cells - 1, max(0, int(fraction * (cells - 1) + 0.5)))


def _bounds(values: Sequence[float]) -> Tuple[float, float]:
    low, high = min(values), max(values)
    if low == high:
        pad = abs(low) * 0.1 or 1.0
        return low - pad, high + pad
    return low, high


def scatter(series: Dict[str, Sequence[Tuple[float, float]]], *,
            width: int = 64, height: int = 16,
            xlabel: str = "x", ylabel: str = "y",
            x_format: str = "%.0f", y_format: str = "%.0f") -> str:
    """Multi-series ASCII scatter plot.

    ``series`` maps a label to its (x, y) points.  Each series gets the
    next marker from :data:`SERIES_MARKS`; overlapping points from
    different series render as ``?``.
    """
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("nothing to plot")
    x_low, x_high = _bounds([p[0] for p in all_points])
    y_low, y_high = _bounds([p[1] for p in all_points])

    grid = [[" "] * width for _ in range(height)]
    for (label, points), mark in zip(series.items(), SERIES_MARKS):
        for x, y in points:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            cell = grid[row][column]
            grid[row][column] = mark if cell in (" ", mark) else "?"

    lines = []
    y_hi_label = y_format % y_high
    y_lo_label = y_format % y_low
    gutter = max(len(y_hi_label), len(y_lo_label))
    for index, row in enumerate(grid):
        if index == 0:
            label = y_hi_label.rjust(gutter)
        elif index == height - 1:
            label = y_lo_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append("%s |%s" % (label, "".join(row)))
    lines.append("%s +%s" % (" " * gutter, "-" * width))
    x_lo_label = x_format % x_low
    x_hi_label = x_format % x_high
    lines.append("%s  %s%s%s" % (
        " " * gutter, x_lo_label,
        " " * max(1, width - len(x_lo_label) - len(x_hi_label)),
        x_hi_label))
    legend = "   ".join("%s=%s" % (mark, label)
                        for (label, _), mark in zip(series.items(),
                                                    SERIES_MARKS))
    lines.append("%s  %s  (x: %s, y: %s)"
                 % (" " * gutter, legend, xlabel, ylabel))
    return "\n".join(lines)


def cdf_plot(series: Dict[str, Sequence[Tuple[float, float]]], *,
             width: int = 64, height: int = 12,
             xlabel: str = "value") -> str:
    """ASCII CDF plot: y is the cumulative fraction in [0, 1]."""
    converted = {}
    for label, points in series.items():
        converted[label] = [(x, f) for x, f in points]
    return scatter(converted, width=width, height=height,
                   xlabel=xlabel, ylabel="fraction <= x",
                   y_format="%.1f")


def hbox_plot(boxes: Sequence[Tuple[str, BoxStats]], *,
              width: int = 56, label_width: int = 30,
              value_format: str = "%.0f") -> str:
    """Horizontal box plots, one row per entry (the Figure-8 shape).

    Whisker ends render as ``|``, the interquartile box as ``=``, and
    the median as ``O``.
    """
    if not boxes:
        raise ValueError("nothing to plot")
    low = min(box.low_whisker for _, box in boxes)
    high = max(box.high_whisker for _, box in boxes)
    lines = []
    for label, box in boxes:
        cells = [" "] * width
        lo = _scale(box.low_whisker, low, high, width)
        q1 = _scale(box.q1, low, high, width)
        q3 = _scale(box.q3, low, high, width)
        hi = _scale(box.high_whisker, low, high, width)
        med = _scale(box.median, low, high, width)
        for column in range(lo, hi + 1):
            cells[column] = "-"
        for column in range(q1, q3 + 1):
            cells[column] = "="
        cells[lo] = cells[hi] = "|"
        cells[med] = "O"
        lines.append("%s |%s|" % (label[:label_width].ljust(label_width),
                                  "".join(cells)))
    scale_line = "%s  %s .. %s" % (" " * label_width,
                                   value_format % low,
                                   value_format % high)
    lines.append(scale_line)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line trend of values using block characters."""
    if not values:
        raise ValueError("nothing to plot")
    blocks = " .:-=+*#%@"
    low, high = _bounds(values)
    if width is not None and len(values) > width:
        # Downsample by taking the mean of equal slices.
        step = len(values) / width
        values = [sum(values[int(i * step):int((i + 1) * step) or None])
                  / max(1, len(values[int(i * step):int((i + 1) * step)
                                      or None]))
                  for i in range(width)]
    return "".join(blocks[_scale(v, low, high, len(blocks))]
                   for v in values)
