"""Temporal clustering of packet-level events.

Figure 4 of the paper plots per-session packet timelines and observes
that, at small RTT, events form three clear temporal clusters — the TCP
handshake, the static-content delivery, and the dynamic-content delivery
— and that the gap between the last two shrinks as RTT grows until they
merge.  This module implements that clustering: events are grouped
greedily by inter-arrival gap, with the gap threshold adapting to the
session's RTT (bursts within one window arrive ~back-to-back; separate
windows are ~an RTT apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.measure.capture import PacketEvent
from repro.measure.session import QuerySession


@dataclass
class EventCluster:
    """A temporally contiguous burst of packet events."""

    events: List[PacketEvent] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.events[0].time

    @property
    def end(self) -> float:
        return self.events[-1].time

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def payload_bytes(self) -> int:
        return sum(e.payload_len for e in self.events)

    @property
    def has_handshake(self) -> bool:
        return any(e.syn for e in self.events)


def cluster_by_gap(events: Sequence[PacketEvent],
                   gap: float) -> List[EventCluster]:
    """Split a time-ordered event sequence wherever the inter-event gap
    exceeds ``gap`` seconds."""
    if gap <= 0:
        raise ValueError("gap must be positive")
    clusters: List[EventCluster] = []
    current: Optional[EventCluster] = None
    last_time = None
    for event in events:
        if current is None or (last_time is not None
                               and event.time - last_time > gap):
            current = EventCluster()
            clusters.append(current)
        current.events.append(event)
        last_time = event.time
    return clusters


def handshake_rtt(session: QuerySession) -> float:
    """RTT measured from the SYN / SYN-ACK exchange of the session."""
    syn_time = None
    for event in session.events:
        if event.direction == "out" and event.syn:
            syn_time = event.time
        elif (event.direction == "in" and event.syn and event.ack_flag
              and syn_time is not None):
            return event.time - syn_time
    raise ValueError("session %s has no complete handshake"
                     % session.query_id)


def adaptive_gap(session: QuerySession, floor: float = 0.004) -> float:
    """A gap threshold separating windows without splitting bursts.

    Within a delivery burst, packets are spaced by serialization delay
    (sub-millisecond here); across windows or content parts, by ~RTT or a
    back-end fetch.  Half an RTT, floored for tiny-RTT sessions, divides
    the two regimes cleanly.
    """
    return max(floor, handshake_rtt(session) * 0.5)


@dataclass(frozen=True)
class SessionClusters:
    """The Figure-4 view of one session."""

    handshake: EventCluster
    bursts: List[EventCluster]      # inbound data bursts, in time order
    gap_after_first_burst: float    # candidate Tdelta when bursts >= 2

    @property
    def merged(self) -> bool:
        """True when static and dynamic arrived as a single burst."""
        return len(self.bursts) < 2


def classify_session(session: QuerySession,
                     gap: Optional[float] = None) -> SessionClusters:
    """Cluster a session's packets into handshake + data bursts.

    Mirrors the paper's reading of Figure 4: the first cluster is the
    three-way handshake (plus the GET), subsequent inbound-data clusters
    are content bursts.  With a large client-FE RTT the static and
    dynamic bursts merge into one — ``SessionClusters.merged``.
    """
    if gap is None:
        gap = adaptive_gap(session)  # simlint: unit[s]
    inbound_data = session.inbound_data_events()
    if not inbound_data:
        raise ValueError("session %s delivered no data" % session.query_id)
    handshake_events = [e for e in session.events
                        if e.syn or (e.direction == "out"
                                     and e.payload_len > 0
                                     and e.time < inbound_data[0].time)]
    handshake = EventCluster(events=list(handshake_events))
    bursts = cluster_by_gap(inbound_data, gap)
    if len(bursts) >= 2:
        gap_after_first = bursts[1].start - bursts[0].end  # simlint: unit[s]
    else:
        gap_after_first = 0.0
    return SessionClusters(handshake=handshake, bursts=bursts,
                           gap_after_first_burst=gap_after_first)
