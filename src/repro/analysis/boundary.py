"""Static/dynamic content boundary detection.

Section 3 of the paper: "Using the packet traces collected via TCPdump,
we perform detailed application layer content analysis ... we find that
in the search results returned by both Bing and Google, there is a
portion of the content that is static, namely, independent of the search
keywords submitted."

This module reproduces that content analysis.  It takes the raw inbound
byte streams of sessions that queried *different keywords* against the
same service and finds their longest common prefix.  Because the static
portion (HTTP headers, CSS, static menu) is keyword-independent, the
common prefix ends where the dynamic portion begins — giving a boundary
*in stream offsets* that temporal analysis can then apply to sessions
captured without payloads.

Nothing here reads ground truth: the boundary is discovered exactly the
way the paper discovered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.stream import reconstruct_inbound_stream
from repro.http.message import ResponseParser
from repro.measure.session import QuerySession


class BoundaryError(Exception):
    """Raised when a boundary cannot be determined from the sessions."""


@dataclass(frozen=True)
class BoundaryEstimate:
    """Result of the content analysis for one service.

    Attributes
    ----------
    stream_offset:
        Inbound stream offset (bytes from the first payload byte) at
        which responses for different keywords diverge.  Everything
        before it is the static portion (plus HTTP framing).
    sessions_used:
        How many sessions contributed.
    distinct_keywords:
        How many distinct keywords the contributing sessions used.
    min_stream_length:
        Shortest contributing stream (upper bound on the boundary).
    """

    stream_offset: int
    sessions_used: int
    distinct_keywords: int
    min_stream_length: int


def common_prefix_length(streams: Sequence[bytes]) -> int:
    """Length of the longest common prefix of all byte strings."""
    if not streams:
        raise ValueError("no streams supplied")
    shortest = min(len(s) for s in streams)
    reference = streams[0]
    # Binary search on the prefix length.
    low, high = 0, shortest
    while low < high:
        mid = (low + high + 1) // 2
        prefix = reference[:mid]
        if all(s[:mid] == prefix for s in streams[1:]):
            low = mid
        else:
            high = mid - 1
    return low


def detect_boundary(sessions: Sequence[QuerySession]) -> BoundaryEstimate:
    """Locate the static/dynamic boundary from captured sessions.

    Requires at least two complete sessions with *different* keywords
    (the same keyword would reproduce identical pages, so the "common
    prefix" would be the entire response — which is itself the signal
    the FE-caching analysis uses, but useless for boundary detection).
    """
    complete = [s for s in sessions if s.complete]
    if len(complete) < 2:
        raise BoundaryError("need at least two complete sessions")
    keywords = {s.keyword.text for s in complete}
    if len(keywords) < 2:
        raise BoundaryError(
            "all sessions used the same keyword; the common prefix "
            "would span the whole response")
    streams = [reconstruct_inbound_stream(s.events) for s in complete]
    offset = common_prefix_length(streams)
    shortest = min(len(s) for s in streams)
    if offset >= shortest:
        raise BoundaryError(
            "streams are identical over their whole shared length; "
            "cannot have used different keywords")
    if offset == 0:
        raise BoundaryError("no common prefix; are these the same service?")
    return BoundaryEstimate(stream_offset=offset,
                            sessions_used=len(complete),
                            distinct_keywords=len(keywords),
                            min_stream_length=shortest)


def boundaries_per_service(sessions: Sequence[QuerySession]
                           ) -> Dict[str, BoundaryEstimate]:
    """Run boundary detection separately for each service present.

    Sessions of one service must share a front-end server (the raw
    stream prefix includes FE-specific response headers); for mixed-FE
    campaigns use :class:`BoundaryCalibration` instead.
    """
    by_service: Dict[str, List[QuerySession]] = {}
    for session in sessions:
        by_service.setdefault(session.service, []).append(session)
    return {service: detect_boundary(group)
            for service, group in by_service.items()}


# ---------------------------------------------------------------------------
# body-level analysis and per-FE calibration
# ---------------------------------------------------------------------------
def parse_body(stream: bytes) -> bytes:
    """Extract the HTTP response body from a raw inbound stream."""
    parser = ResponseParser()
    body = None
    for kind, payload in parser.feed(stream):
        if kind == "end":
            body = payload.body
            break
    if body is None:
        raise BoundaryError("stream does not contain a complete response")
    return body


def detect_static_size(sessions: Sequence[QuerySession]) -> int:
    """Static-portion size from parsed response *bodies*.

    Body-level analysis is FE-independent (response headers differ per
    front-end but the cached static content does not), so sessions from
    different FEs of the same service can be pooled — this mirrors the
    paper's application-layer content analysis most directly.
    """
    complete = [s for s in sessions if s.complete]
    if len(complete) < 2:
        raise BoundaryError("need at least two complete sessions")
    if len({s.keyword.text for s in complete}) < 2:
        raise BoundaryError("sessions must use at least two keywords")
    bodies = [parse_body(reconstruct_inbound_stream(s.events))
              for s in complete]
    size = common_prefix_length(bodies)
    if size == 0:
        raise BoundaryError("responses share no common prefix")
    if size >= min(len(b) for b in bodies):
        raise BoundaryError("response bodies are identical")
    return size


def map_body_offset_to_stream(stream: bytes, body_offset: int) -> int:
    """Map a body offset to its raw-stream offset through HTTP framing.

    Supports Content-Length and chunked transfer encoding.  Raises
    :class:`BoundaryError` if the stream ends before the offset.
    """
    if body_offset < 0:
        raise ValueError("body_offset must be >= 0")
    head_end = stream.find(b"\r\n\r\n")
    if head_end < 0:
        raise BoundaryError("no HTTP head in stream")
    head = stream[:head_end].decode("latin-1", errors="replace").lower()
    cursor = head_end + 4
    if "transfer-encoding: chunked" not in head:
        target = cursor + body_offset
        if target >= len(stream):
            raise BoundaryError("stream shorter than requested offset")
        return target
    remaining = body_offset
    while True:
        line_end = stream.find(b"\r\n", cursor)
        if line_end < 0:
            raise BoundaryError("truncated chunk header")
        try:
            chunk_size = int(stream[cursor:line_end].split(b";")[0], 16)
        except ValueError:
            raise BoundaryError("bad chunk size in stream")
        data_start = line_end + 2
        if chunk_size == 0:
            raise BoundaryError("stream body shorter than requested offset")
        if remaining < chunk_size:
            return data_start + remaining
        remaining -= chunk_size
        cursor = data_start + chunk_size + 2  # skip payload + CRLF


@dataclass(frozen=True)
class ChunkSpan:
    """One chunk of a chunked response, in raw-stream offsets."""

    frame_start: int    # where the chunk's size line begins
    payload_start: int  # first payload byte
    payload_end: int    # one past the last payload byte

    @property
    def size(self) -> int:
        return self.payload_end - self.payload_start


def chunk_spans(stream: bytes) -> List[ChunkSpan]:
    """Walk a chunked response's framing; empty list if not chunked."""
    head_end = stream.find(b"\r\n\r\n")
    if head_end < 0:
        raise BoundaryError("no HTTP head in stream")
    head = stream[:head_end].decode("latin-1", errors="replace").lower()
    if "transfer-encoding: chunked" not in head:
        return []
    spans = []
    cursor = head_end + 4
    while True:
        line_end = stream.find(b"\r\n", cursor)
        if line_end < 0:
            raise BoundaryError("truncated chunk header")
        try:
            size = int(stream[cursor:line_end].split(b";")[0], 16)
        except ValueError:
            raise BoundaryError("bad chunk size in stream")
        payload_start = line_end + 2
        if size == 0:
            return spans
        spans.append(ChunkSpan(cursor, payload_start, payload_start + size))
        cursor = payload_start + size + 2


@dataclass(frozen=True)
class StreamBoundary:
    """The static/dynamic split of one front-end's response stream.

    ``static_end`` is one past the last static payload byte in raw-stream
    offsets; ``dynamic_start`` is the first raw-stream byte that travels
    with the dynamic portion (the next chunk's frame when chunked).  The
    two differ by the framing bytes between the parts.
    """

    static_end: int
    dynamic_start: int

    def __post_init__(self):
        if not 0 < self.static_end <= self.dynamic_start:
            raise ValueError("invalid boundary offsets")


def snap_to_chunk_boundary(stream: bytes, body_upper_bound: int
                           ) -> StreamBoundary:
    """Resolve the exact boundary by snapping to chunk structure.

    The body-level content diff yields an *upper bound* on the static
    size: the first bytes of the dynamic portion are often constant
    markup shared by every result page, so the common prefix overshoots.
    Front-end servers, however, flush the cached static portion as its
    own chunk(s); the true boundary therefore coincides with a chunk
    boundary — the last one at or below the upper bound.  (This combines
    the paper's two techniques: content analysis and the packet/framing
    structure.)
    """
    spans = chunk_spans(stream)
    if not spans:
        # Content-Length response: no framing to snap to; use the bound.
        offset = map_body_offset_to_stream(stream, body_upper_bound)
        return StreamBoundary(static_end=offset, dynamic_start=offset)
    cumulative = 0
    for index, span in enumerate(spans):
        cumulative += span.size
        if cumulative >= body_upper_bound:
            # First chunk whose end reaches the bound: if it ends exactly
            # at the bound the boundary is the next chunk; otherwise the
            # bound overshot into this chunk and the boundary is this
            # chunk's start.
            if cumulative == body_upper_bound and index + 1 < len(spans):
                return StreamBoundary(static_end=span.payload_end,
                                      dynamic_start=spans[index + 1]
                                      .frame_start)
            if index == 0:
                # The bound falls inside the first chunk: no earlier
                # chunk boundary to snap to, use the bound itself.
                offset = map_body_offset_to_stream(stream,
                                                   body_upper_bound)
                return StreamBoundary(static_end=offset,
                                      dynamic_start=offset)
            return StreamBoundary(
                static_end=spans[index - 1].payload_end,
                dynamic_start=span.frame_start)
    raise BoundaryError("body shorter than the static upper bound")


@dataclass
class BoundaryCalibration:
    """Per-front-end stream boundaries for one service.

    Built once from a small calibration campaign with payloads captured;
    then :meth:`boundary_for` classifies bulk sessions (captured without
    payloads) by their front-end server.

    ``static_size`` is the *body-level* static-portion size implied by
    the snapped boundary (the true cacheable prefix); ``static_upper``
    is the raw common-prefix length the content diff produced.
    """

    service: str
    static_size: int
    static_upper: int
    boundaries: Dict[str, StreamBoundary] = field(default_factory=dict)

    @classmethod
    def from_sessions(cls, sessions: Sequence[QuerySession]
                      ) -> "BoundaryCalibration":
        """Calibrate from payload-bearing sessions of one service.

        Needs >= 2 keywords overall (for the body diff) and >= 1 session
        per front-end that bulk analysis will encounter.
        """
        complete = [s for s in sessions if s.complete]
        if not complete:
            raise BoundaryError("no complete sessions")
        services = {s.service for s in complete}
        if len(services) != 1:
            raise BoundaryError("calibration sessions span %d services"
                                % len(services))
        static_upper = detect_static_size(complete)
        calibration = cls(service=services.pop(), static_size=0,
                          static_upper=static_upper)
        for session in complete:
            if session.fe_name in calibration.boundaries:
                continue
            stream = reconstruct_inbound_stream(session.events)
            boundary = snap_to_chunk_boundary(stream, static_upper)
            calibration.boundaries[session.fe_name] = boundary
            if calibration.static_size == 0:
                spans = chunk_spans(stream)
                calibration.static_size = sum(
                    s.size for s in spans
                    if s.payload_end <= boundary.static_end) \
                    or static_upper
        return calibration

    def boundary_for(self, session: QuerySession) -> StreamBoundary:
        """The stream boundary to use for a bulk session."""
        try:
            return self.boundaries[session.fe_name]
        except KeyError:
            raise BoundaryError(
                "no calibration for front-end %r; add a calibration "
                "session against it" % session.fe_name) from None

    # Backwards-compatible single-offset view.
    def offset_for(self, session: QuerySession) -> StreamBoundary:
        return self.boundary_for(session)
