"""Deterministic, mergeable quantile sketches for streaming campaigns.

A million-query campaign cannot keep per-session latency lists around
(see :mod:`repro.measure.streaming`), yet the paper-style reporting
needs percentile tails (p50/p95/p99).  :class:`QuantileSketch` is the
bounded-memory substitute: a fixed-bound *log-bucket* histogram whose
buckets subdivide each power-of-two range (binade) linearly.

Design rules, matching the obs metrics registry
(:mod:`repro.obs.metrics`):

* **Exact, order-independent merging.**  Bucket counts are integers and
  the running sum is a :class:`fractions.Fraction`, so
  ``a + b == b + a`` and any sharding of an observation stream merges
  to the bit-identical serial sketch.
* **No transcendental bucketing.**  Bucket indices come from
  :func:`math.frexp` (exact) plus integer arithmetic on the mantissa —
  never ``log``.  Two processes computing the bucket of the same float
  agree everywhere, which is what lets serial and sharded campaign
  runs compare sketch *fingerprints* byte-for-byte.
* **Bounded size.**  The number of occupied buckets is at most
  ``subbuckets`` per binade touched; durations and byte sizes span a
  handful of binades, so a sketch stays a few kilobytes no matter how
  many observations it absorbs.

The quantile rule is nearest-rank on the bucket CDF: ``quantile(q)``
returns the midpoint of the bucket containing the sorted observation
at index ``floor(q * (count - 1))``, so the returned value is within
:attr:`~QuantileSketch.relative_error` of that exact observation
(``1 / (2 * subbuckets)``; 1/256 ≈ 0.4% at the default resolution).
"""

from __future__ import annotations

import hashlib
import math
from fractions import Fraction
from typing import Dict, Iterable, Optional

__all__ = ["QuantileSketch", "merge_sketches"]

#: Default linear subdivisions per binade; relative error = 1/(2*128).
DEFAULT_SUBBUCKETS = 128


class QuantileSketch:
    """A mergeable log-bucket quantile sketch over non-negative floats.

    >>> sketch = QuantileSketch()
    >>> for value in (0.1, 0.2, 0.4, 0.8):
    ...     sketch.observe(value)
    >>> abs(sketch.quantile(0.5) - 0.2) <= 0.2 * sketch.relative_error
    True
    """

    __slots__ = ("subbuckets", "counts", "count", "zeros", "total",
                 "minimum", "maximum")

    def __init__(self, subbuckets: int = DEFAULT_SUBBUCKETS):
        if subbuckets < 1:
            raise ValueError("subbuckets must be >= 1, got %r"
                             % (subbuckets,))
        self.subbuckets = subbuckets
        #: bucket index -> observation count; index encodes
        #: (binade exponent, linear sub-bucket) as one integer.
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.zeros = 0
        self.total = Fraction(0)
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    @property
    def relative_error(self) -> float:
        """Worst-case relative distance of a quantile answer from the
        exact observation it stands for."""
        return 1.0 / (2.0 * self.subbuckets)

    # ------------------------------------------------------------------
    # observe / merge
    # ------------------------------------------------------------------
    def _bucket(self, value: float) -> int:
        # frexp: value == mantissa * 2**exponent with mantissa in
        # [0.5, 1).  The sub-bucket is the mantissa's position in a
        # linear grid over the binade — exact float arithmetic (powers
        # of two only), no logarithms.
        mantissa, exponent = math.frexp(value)
        sub = int((mantissa - 0.5) * (2 * self.subbuckets))
        if sub == self.subbuckets:  # mantissa rounded up to 1.0
            sub = self.subbuckets - 1
        return exponent * self.subbuckets + sub

    def _bucket_midpoint(self, bucket: int) -> float:
        exponent, sub = divmod(bucket, self.subbuckets)
        return math.ldexp(0.5 + (2 * sub + 1) / (4.0 * self.subbuckets),
                          exponent)

    def observe(self, value: float) -> None:
        """Fold one observation in (values must be >= 0 and finite)."""
        if not (value >= 0.0) or math.isinf(value):
            raise ValueError("sketch values must be finite and >= 0, "
                             "got %r" % (value,))
        if value == 0.0:
            self.zeros += 1
        else:
            bucket = self._bucket(value)
            self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.count += 1
        self.total += Fraction(value)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (exact, order-independent)."""
        if other.subbuckets != self.subbuckets:
            raise ValueError(
                "cannot merge sketches with different resolutions: "
                "%d vs %d sub-buckets"
                % (self.subbuckets, other.subbuckets))
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.count += other.count
        self.zeros += other.zeros
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum

    def __add__(self, other: "QuantileSketch") -> "QuantileSketch":
        merged = QuantileSketch(self.subbuckets)
        merged.merge(self)
        merged.merge(other)
        return merged

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return float(self.total / self.count)

    def quantile(self, q: float) -> Optional[float]:
        """The value at quantile ``q`` in [0, 1] (None when empty).

        ``q=0``/``q=1`` return the exact tracked minimum/maximum;
        interior quantiles return the midpoint of the bucket holding
        the nearest-rank observation (see the module docstring for the
        error bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1], got %r" % (q,))
        if self.count == 0:
            return None
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = int(q * (self.count - 1))
        if target < self.zeros:
            return 0.0
        cumulative = self.zeros
        for bucket in sorted(self.counts):
            cumulative += self.counts[bucket]
            if cumulative > target:
                # Clamp to the exact tracked extremes so quantiles are
                # monotone in q even when an extreme observation sits
                # off-center in its bucket.
                midpoint = self._bucket_midpoint(bucket)
                return min(max(midpoint, self.minimum), self.maximum)
        return self.maximum  # unreachable; guards float edge cases

    # ------------------------------------------------------------------
    # state / fingerprint
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """A picklable, canonical copy of the sketch state."""
        return {"subbuckets": self.subbuckets,
                "counts": tuple(sorted(self.counts.items())),
                "zeros": self.zeros,
                "count": self.count,
                "total": self.total,
                "min": self.minimum,
                "max": self.maximum}

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        sketch = cls(state["subbuckets"])
        sketch.counts = dict(state["counts"])
        sketch.zeros = state["zeros"]
        sketch.count = state["count"]
        sketch.total = Fraction(state["total"])
        sketch.minimum = state["min"]
        sketch.maximum = state["max"]
        return sketch

    def fingerprint(self) -> str:
        """SHA-256 over the canonical state (bit-comparable across
        processes: floats are rendered with ``float.hex``)."""
        digest = hashlib.sha256()
        digest.update(b"quantile-sketch/v1\n")
        digest.update(("subbuckets=%d\n" % self.subbuckets).encode())
        for bucket, count in sorted(self.counts.items()):
            digest.update(("%d:%d\n" % (bucket, count)).encode())
        digest.update(("zeros=%d count=%d\n"
                       % (self.zeros, self.count)).encode())
        digest.update(("total=%d/%d\n" % (self.total.numerator,
                                          self.total.denominator))
                      .encode())
        for label, value in (("min", self.minimum), ("max", self.maximum)):
            rendered = "none" if value is None else float(value).hex()
            digest.update(("%s=%s\n" % (label, rendered)).encode())
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.state() == other.state()

    def __repr__(self) -> str:
        return ("QuantileSketch(count=%d, min=%r, max=%r, buckets=%d)"
                % (self.count, self.minimum, self.maximum,
                   len(self.counts)))


def merge_sketches(sketches: Iterable[QuantileSketch],
                   subbuckets: Optional[int] = None) -> QuantileSketch:
    """Exact merge of any number of sketches (empty input allowed)."""
    sketches = list(sketches)
    if subbuckets is None:
        subbuckets = sketches[0].subbuckets if sketches \
            else DEFAULT_SUBBUCKETS
    merged = QuantileSketch(subbuckets)
    for sketch in sketches:
        merged.merge(sketch)
    return merged
