"""Per-flow TCP stream reconstruction from captured packets.

Given the packet events of one query session (client viewpoint), these
functions rebuild the server-to-client byte stream: which stream offsets
arrived when (for the timeline metrics) and, when payloads were captured,
the actual bytes (for the content analysis).

All offsets are relative to the first payload byte of the inbound stream
(i.e. the peer's ISN + 1), exactly how tcpdump-based analysis would
normalise sequence numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.measure.capture import PacketEvent


class TraceError(Exception):
    """Raised when a packet trace is malformed or incomplete."""


@dataclass(frozen=True)
class ByteArrival:
    """New inbound stream bytes delivered by one packet."""

    time: float
    start: int   # stream offset of the first new byte
    end: int     # one past the last new byte
    event: PacketEvent

    @property
    def size(self) -> int:
        return self.end - self.start


def peer_isn(events: Sequence[PacketEvent]) -> int:
    """The server's initial sequence number, from its SYN-ACK."""
    for event in events:
        if event.direction == "in" and event.syn:
            return event.seq
    raise TraceError("no inbound SYN in trace")


def inbound_byte_arrivals(events: Sequence[PacketEvent]) -> List[ByteArrival]:
    """First-arrival intervals of the inbound stream, in time order.

    Retransmitted or overlapping data counts only where it delivers new
    (previously unseen) stream bytes; this makes the timeline metrics
    robust to loss on the client-FE path.
    """
    isn = peer_isn(events)
    arrivals: List[ByteArrival] = []
    covered: List[List[int]] = []  # sorted disjoint [start, end) intervals

    def add_interval(start: int, end: int) -> List[List[int]]:
        """Insert [start, end); return the newly covered sub-intervals."""
        new_parts = []
        cursor = start
        for interval in covered:
            if interval[1] <= cursor:
                continue
            if interval[0] >= end:
                break
            if interval[0] > cursor:
                new_parts.append([cursor, min(interval[0], end)])
            cursor = max(cursor, interval[1])
            if cursor >= end:
                break
        if cursor < end:
            new_parts.append([cursor, end])
        if new_parts:
            covered.extend(new_parts)
            covered.sort()
            _merge(covered)
        return new_parts

    for event in events:
        if event.direction != "in" or event.payload_len == 0:
            continue
        start = event.seq - (isn + 1)
        end = start + event.payload_len
        if start < 0:
            raise TraceError("inbound data below stream start (seq=%d)"
                             % event.seq)
        for part_start, part_end in add_interval(start, end):
            arrivals.append(ByteArrival(event.time, part_start, part_end,
                                        event))
    return arrivals


def _merge(intervals: List[List[int]]) -> None:
    """Coalesce sorted, possibly touching intervals in place."""
    merged = []
    for interval in intervals:
        if merged and interval[0] <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], interval[1])
        else:
            merged.append(list(interval))
    intervals[:] = merged


def reconstruct_inbound_stream(events: Sequence[PacketEvent]) -> bytes:
    """Rebuild the raw inbound byte stream (requires stored payloads)."""
    isn = peer_isn(events)
    chunks = {}
    top = 0
    for event in events:
        if event.direction != "in" or event.payload_len == 0:
            continue
        if event.payload is None:
            raise TraceError(
                "trace captured without payloads; re-run the capture "
                "with store_payload=True for content analysis")
        start = event.seq - (isn + 1)
        existing = chunks.get(start)
        if existing is None or len(existing) < len(event.payload):
            chunks[start] = event.payload
        top = max(top, start + event.payload_len)
    stream = bytearray(top)
    filled = bytearray(top)
    for start in sorted(chunks):
        data = chunks[start]
        stream[start:start + len(data)] = data
        filled[start:start + len(data)] = b"\x01" * len(data)
    if top and not all(filled):
        raise TraceError("inbound stream has holes; trace incomplete")
    return bytes(stream)


def arrival_time_of_offset(arrivals: Sequence[ByteArrival],
                           offset: int) -> Optional[float]:
    """When the stream byte at ``offset`` first arrived (None if never)."""
    for arrival in arrivals:
        if arrival.start <= offset < arrival.end:
            return arrival.time
    return None


def total_inbound_bytes(arrivals: Sequence[ByteArrival]) -> int:
    """Distinct stream bytes delivered."""
    return sum(a.size for a in arrivals)
