"""Statistical helpers used throughout the analysis.

Everything the paper's plots need: moving medians (Figure 3 smooths with
a window of 10), empirical CDFs (Figure 6), box-plot statistics
(Figure 8), per-bin medians against an x variable (Figure 5), and
ordinary least-squares linear regression (Figure 9's fit lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


def median(values: Sequence[float]) -> float:
    """Plain median; raises on empty input."""
    if len(values) == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100])."""
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def moving_median(values: Sequence[float], window: int = 10) -> List[float]:
    """Moving median with a trailing window (paper's Figure 3 smoothing).

    The first ``window - 1`` outputs use the values available so far, so
    the result has the same length as the input.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    out = []
    buffer: List[float] = []
    for value in values:
        buffer.append(value)
        if len(buffer) > window:
            buffer.pop(0)
        out.append(median(buffer))
    return out


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) steps."""
    if len(values) == 0:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold``."""
    if len(values) == 0:
        raise ValueError("fraction_below of empty sequence")
    return sum(1 for v in values if v < threshold) / len(values)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's Figure 8 box plots."""

    low_whisker: float
    q1: float
    median: float
    q3: float
    high_whisker: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(values: Sequence[float]) -> BoxStats:
    """Tukey box-plot statistics (whiskers at 1.5 IQR, clamped to data)."""
    if len(values) == 0:
        raise ValueError("box_stats of empty sequence")
    arr = np.asarray(values, dtype=float)
    q1, q2, q3 = (float(np.percentile(arr, q)) for q in (25, 50, 75))
    iqr = q3 - q1
    low = float(arr[arr >= q1 - 1.5 * iqr].min())
    high = float(arr[arr <= q3 + 1.5 * iqr].max())
    # Interpolated quartiles may not be data points; whiskers must still
    # bracket the box.
    low = min(low, q1)
    high = max(high, q3)
    return BoxStats(low, q1, q2, q3, high)


def binned_medians(x: Sequence[float], y: Sequence[float],
                   bin_width: float) -> List[Tuple[float, float]]:
    """Median of ``y`` per ``x`` bin; returns (bin_center, median) pairs.

    Bins with no samples are omitted.  This is how Figure 5's per-RTT
    median curves are computed.
    """
    if len(x) != len(y):
        raise ValueError("x and y must be the same length")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    buckets: Dict[int, List[float]] = {}
    for xi, yi in zip(x, y):
        buckets.setdefault(int(xi // bin_width), []).append(yi)
    return [((index + 0.5) * bin_width, median(values))
            for index, values in sorted(buckets.items())]


@dataclass(frozen=True)
class LinearFit:
    """Ordinary least-squares line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares fit; raises for fewer than two distinct x values."""
    if len(x) != len(y):
        raise ValueError("x and y must be the same length")
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    arr_x = np.asarray(x, dtype=float)
    arr_y = np.asarray(y, dtype=float)
    spread = float(np.ptp(arr_x))
    scale = float(np.max(np.abs(arr_x))) if len(arr_x) else 0.0
    if spread == 0.0 or spread < 1e-12 * max(1.0, scale):
        raise ValueError("x values are (numerically) all identical")
    slope, intercept = np.polyfit(arr_x, arr_y, 1)
    predicted = slope * arr_x + intercept
    ss_res = float(np.sum((arr_y - predicted) ** 2))
    ss_tot = float(np.sum((arr_y - arr_y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(float(slope), float(intercept), r_squared, len(x))


def summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / std / spread summary used by comparison tables."""
    if len(values) == 0:
        raise ValueError("summary of empty sequence")
    arr = np.asarray(values, dtype=float)
    return {
        "n": float(len(arr)),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "std": float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
