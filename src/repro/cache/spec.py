"""Declarative cache configuration (picklable, hashable, frozen).

A :class:`CacheSpec` describes one content cache: its eviction policy,
byte capacity, and admission rule.  A :class:`CacheHierarchySpec`
composes the front-end's caches — the per-keyword static-content cache,
an optional regional middle tier, and the (counterfactual) result cache
— plus the fill policy that decides which tiers keep a copy after a
miss is repaired.

Specs live on :class:`~repro.testbed.scenario.ScenarioConfig` so that
shard workers can rebuild byte-identical cache state from the config
alone; everything here must therefore stay a plain frozen dataclass.

The degenerate default — ``CacheSpec(policy="infinite")`` — reproduces
the paper's black-box assumption: the FE cache always hits for static
content.  Every other policy starts cold and actually misses, which is
what makes the static/dynamic boundary a real caching experiment (see
``docs/CACHING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Eviction policies understood by :class:`repro.cache.ContentCache`.
POLICIES: Tuple[str, ...] = ("infinite", "lru", "lfu", "fifo", "random")

#: Admission rules: admit every insert, or admit probabilistically
#: (ProbCache-style; see Saino et al.'s icarus policy zoo).
ADMISSIONS: Tuple[str, ...] = ("always", "prob")

#: Fill policies for multi-tier hierarchies: leave-copy-everywhere
#: (every tier above the hit keeps a copy) or leave-copy-down (only the
#: tier immediately above the hit does — Laoutaris et al.'s LCD).
FILLS: Tuple[str, ...] = ("lce", "lcd")

#: Regional-tier sharing scope: one regional cache per front-end
#: (shard-safe) or one shared per backend site (serial only).
REGIONAL_SCOPES: Tuple[str, ...] = ("per-fe", "shared")


@dataclass(frozen=True)
class CacheSpec:
    """Policy, capacity, and admission rule of one content cache."""

    policy: str = "infinite"
    #: Byte capacity; must be None for "infinite" and set otherwise.
    capacity_bytes: Optional[int] = None
    admission: str = "always"
    #: Admission probability for ``admission="prob"``.
    admit_probability: float = 1.0

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ValueError("unknown cache policy %r (have %s)"
                             % (self.policy, "/".join(POLICIES)))
        if self.admission not in ADMISSIONS:
            raise ValueError("unknown admission rule %r (have %s)"
                             % (self.admission, "/".join(ADMISSIONS)))
        if self.policy == "infinite":
            if self.capacity_bytes is not None:
                raise ValueError("infinite caches take no capacity; use "
                                 "a finite policy (lru/lfu/fifo/random)")
        else:
            if self.capacity_bytes is None or self.capacity_bytes <= 0:
                raise ValueError("finite policy %r needs a positive "
                                 "capacity_bytes" % self.policy)
        if not 0.0 <= self.admit_probability <= 1.0:
            raise ValueError("admit_probability must be in [0, 1]")

    @property
    def finite(self) -> bool:
        """True when this cache can evict (and therefore miss)."""
        return self.policy != "infinite"


@dataclass(frozen=True)
class CacheHierarchySpec:
    """The front-end's cache complement and its tier composition.

    ``static`` is the per-keyword static-content cache the paper treats
    as a black box; ``regional`` (optional) is a middle tier consulted
    on FE misses before the back-end origin; ``result`` bounds the
    counterfactual dynamic-result cache (``cache_results=True``).
    """

    static: CacheSpec = field(default_factory=CacheSpec)
    regional: Optional[CacheSpec] = None
    #: Extra delay to pull a static object out of the regional tier
    #: into the response (the regional round trip the packet simulator
    #: does not model; the origin path IS packet-simulated).
    regional_fetch_delay: float = 0.030  # simlint: unit[s]
    fill: str = "lce"
    regional_scope: str = "per-fe"
    result: CacheSpec = field(default_factory=CacheSpec)

    def __post_init__(self):
        if self.fill not in FILLS:
            raise ValueError("unknown fill policy %r (have %s)"
                             % (self.fill, "/".join(FILLS)))
        if self.regional_scope not in REGIONAL_SCOPES:
            raise ValueError("unknown regional scope %r (have %s)"
                             % (self.regional_scope,
                                "/".join(REGIONAL_SCOPES)))
        if self.regional is not None and not self.static.finite:
            raise ValueError("a regional tier is unreachable behind the "
                             "infinite (always-hit) static cache; give "
                             "the static cache a finite policy first")
        if self.regional_fetch_delay < 0.0:
            raise ValueError("regional_fetch_delay must be >= 0")

    @property
    def finite(self) -> bool:
        """True when the static path can miss (cold/evicting caches)."""
        return self.static.finite

    @property
    def shared_regional(self) -> bool:
        """True when the regional tier is shared across front-ends."""
        return self.regional is not None \
            and self.regional_scope == "shared"

    @property
    def tier_depth(self) -> int:
        """Number of cache tiers ahead of the origin (1 or 2; 0 for
        the degenerate always-hit black box)."""
        if not self.static.finite:
            return 0
        return 2 if self.regional is not None else 1
