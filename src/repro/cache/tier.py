"""FE → regional → origin lookup chain for static content.

:class:`CacheTier` composes the per-front-end static cache with an
optional regional middle tier.  A lookup walks the tiers in order and
reports where the object was found:

* level ``0`` — the FE's own cache (no extra delay),
* level ``1`` — the regional cache (costs ``regional_fetch_delay``),
* :data:`ORIGIN` (``-1``) — nowhere: the front-end must fetch the full
  page from the back-end, which rides the real packet-simulated path
  and therefore perturbs t3/t4/t5.

After a hit below the top, or an origin fetch, copies propagate per the
hierarchy's fill policy: ``lce`` (leave-copy-everywhere) fills every
tier above the hit, ``lcd`` (leave-copy-down) fills only the single
tier just above it — so an object must be requested repeatedly to climb
one tier per miss (Laoutaris et al.).

The degenerate hierarchy (infinite static cache) keeps the paper's
black-box behaviour: ``lookup`` always answers level 0, touches no
counters, and exports no metrics — existing figure outputs and
campaign fingerprints stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.policy import ContentCache
from repro.cache.spec import CacheHierarchySpec
from repro.obs import runtime as _obs
from repro.obs.metrics import SCOPE_SIM

#: ``lookup`` result when no tier holds the object.
ORIGIN = -1

#: Human-readable tier names, indexed by lookup level.
LEVEL_NAMES = ("fe", "regional")


class CacheTier:
    """One front-end's view of the static-content cache hierarchy.

    ``regional_cache`` lets the deployment inject a *shared* regional
    instance (``regional_scope="shared"``: one per backend site);
    otherwise each front-end gets a private regional cache.
    """

    ORIGIN = ORIGIN

    def __init__(self, spec: CacheHierarchySpec, *, name: str = "fe",
                 seed: int = 0,
                 regional_cache: Optional[ContentCache] = None):
        self.spec = spec
        self.name = name
        self.levels: List[ContentCache] = []
        self.origin_fetches = 0
        if spec.static.finite:
            self.levels.append(ContentCache(
                spec.static, name="%s/static" % name, seed=seed,
                metric_prefix="cache.fe."))
            if spec.regional is not None:
                if regional_cache is None:
                    regional_cache = ContentCache(
                        spec.regional, name="%s/regional" % name,
                        seed=seed, metric_prefix="cache.regional.")
                self.levels.append(regional_cache)

    @property
    def finite(self) -> bool:
        """True when lookups can actually miss (non-degenerate)."""
        return bool(self.levels)

    def lookup(self, key: str) -> int:
        """Walk the tiers; return the hit level or :data:`ORIGIN`.

        A hit below the top immediately propagates copies upward per
        the fill policy, so the caller only has to add the fetch delay.
        """
        if not self.levels:
            return 0  # pre-warmed black box: the paper's always-hit FE
        for level, cache in enumerate(self.levels):
            if cache.lookup(key):
                if level > 0:
                    self._fill_above(key, cache.size_of(key), level)
                return level
        self.origin_fetches += 1
        if _obs.enabled:
            _obs.metrics.inc("cache.origin.fetches", scope=SCOPE_SIM)
        return ORIGIN

    def fill_from_origin(self, key: str, size_bytes: int) -> None:
        """Install copies after the back-end supplied the object."""
        if not self.levels:
            return
        bottom = len(self.levels)  # origin sits just below the stack
        if self.spec.fill == "lcd":
            # Leave-copy-down: only the tier directly above the origin.
            self.levels[bottom - 1].insert(key, size_bytes)
        else:
            for cache in self.levels:
                cache.insert(key, size_bytes)

    def fetch_delay(self, level: int) -> float:
        """Extra response delay for a hit at ``level`` (seconds)."""
        if level <= 0:
            return 0.0  # simlint: unit[s]
        return self.spec.regional_fetch_delay

    def clear(self) -> None:
        for cache in self.levels:
            cache.clear()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier counter dump plus the origin-fetch total."""
        out = {LEVEL_NAMES[level]: cache.stats()
               for level, cache in enumerate(self.levels)}
        out["origin"] = {"fetches": self.origin_fetches}
        return out

    def _fill_above(self, key: str, size_bytes: int,
                    hit_level: int) -> None:
        if self.spec.fill == "lcd":
            self.levels[hit_level - 1].insert(key, size_bytes)
        else:
            for cache in self.levels[:hit_level]:
                cache.insert(key, size_bytes)


def aggregate_stats(tiers) -> Optional[Dict[str, int]]:
    """Sum finite-cache counters over many front-ends' tiers.

    Keys are ``<level>_<counter>`` (``fe_hits``, ``regional_evictions``,
    ...) plus ``origin_fetches``.  A shared regional cache referenced by
    several tiers is counted once (deduplicated by identity).  Returns
    None when every tier is the degenerate infinite hierarchy, so
    default campaigns report no cache section at all.
    """
    totals: Dict[str, int] = {}
    seen = set()
    any_finite = False
    for tier in tiers:
        if not tier.finite:
            continue
        any_finite = True
        totals["origin_fetches"] = (totals.get("origin_fetches", 0)
                                    + tier.origin_fetches)
        for level, cache in enumerate(tier.levels):
            if id(cache) in seen:
                continue
            seen.add(id(cache))
            prefix = LEVEL_NAMES[level]
            for key, value in cache.stats().items():
                name = "%s_%s" % (prefix, key)
                totals[name] = totals.get(name, 0) + value
    if not any_finite:
        return None
    return totals
