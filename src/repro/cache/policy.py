"""Byte-capacity content cache with pluggable eviction and admission.

:class:`ContentCache` stores opaque objects under string keys, charges
each against a byte budget, and evicts according to the policy named in
its :class:`~repro.cache.spec.CacheSpec`:

``infinite``
    Never evicts (the unbounded-dict degenerate case the repo shipped
    with); ``lookup`` misses until the key is inserted.
``lru``
    Evicts the least recently *used* entry.  Implemented on dict
    insertion order: hits and inserts move the entry to the tail, so
    the head is always the LRU victim — O(1).
``lfu``
    Evicts the least frequently used entry, oldest-inserted first on
    ties (deterministic; O(n) scan per eviction).
``fifo``
    Evicts the oldest-inserted entry regardless of use (O(n) scan —
    hits reorder the dict for LRU, so insertion age lives on the
    entry).
``random``
    Evicts a uniformly random entry, drawn from a ``derive_seed``-keyed
    stream so the victim sequence is a pure function of (cache seed,
    cache name, eviction ordinal) — independent of any other RNG in
    the simulation.

Admission is ``always`` or ``prob`` (ProbCache-style coin flip per
insert attempt, again from a keyed stream).  Objects larger than the
whole capacity are never admitted.

Determinism contract: every draw is keyed off this cache's own seed and
its private event ordinals, and the per-FE request stream that feeds a
cache is shard-local under the FE-sharing partition — so sharded runs
replay identical cache state.  See docs/CACHING.md.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.cache.spec import CacheSpec
from repro.obs import runtime as _obs
from repro.obs.metrics import SCOPE_SIM
from repro.sim.randomness import derive_seed


class _Entry:
    __slots__ = ("size_bytes", "value", "frequency", "sequence")

    def __init__(self, size_bytes: int, value, sequence: int):
        self.size_bytes = size_bytes  # simlint: unit[bytes]
        self.value = value
        self.frequency = 1
        #: Insertion ordinal — FIFO age and the deterministic LFU
        #: tie-break.  Survives LRU reordering of the backing dict.
        self.sequence = sequence


class ContentCache:
    """One cache: a byte budget, an eviction policy, an admission rule.

    ``metric_prefix`` names the obs counters (``<prefix>hits`` etc.);
    counters are only exported for *finite* caches so the degenerate
    infinite default adds no sim-scope records to existing fingerprints.
    """

    def __init__(self, spec: CacheSpec, *, name: str = "cache",
                 seed: int = 0, metric_prefix: Optional[str] = None):
        self.spec = spec
        self.name = name
        self._seed = seed
        # Infinite caches stay silent in obs exports (fingerprint
        # compatibility); finite ones announce every hit/miss/eviction.
        self._metric_prefix = metric_prefix if spec.finite else None
        self._entries: Dict[str, _Entry] = {}
        self.used_bytes = 0  # simlint: unit[bytes]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self._insert_seq = 0
        self._evict_seq = 0
        self._admit_seq = 0

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> Optional[float]:
        """Hit fraction over all lookups so far (None before any)."""
        total = self.lookups
        if total == 0:
            return None
        return self.hits / total

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "used_bytes": self.used_bytes,
            "entries": len(self._entries),
        }

    # -- core operations -----------------------------------------------

    def lookup(self, key: str) -> bool:
        """Touch ``key``: True on hit (updates recency/frequency)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._inc("misses")
            return False
        entry.frequency += 1
        if self.spec.policy == "lru":
            # Move to the tail so dict head stays the LRU victim.
            del self._entries[key]
            self._entries[key] = entry
        self.hits += 1
        self._inc("hits")
        return True

    def get(self, key: str):
        """``lookup`` that returns the stored value (None on miss)."""
        if not self.lookup(key):
            return None
        return self._entries[key].value

    def peek(self, key: str) -> bool:
        """Presence test without touching recency or counters."""
        return key in self._entries

    def size_of(self, key: str) -> int:
        """Stored byte size of a resident key (KeyError if absent)."""
        return self._entries[key].size_bytes

    def insert(self, key: str, size_bytes: int, value=None) -> bool:
        """Offer an object; returns True when it ends up resident.

        Re-offering a resident key refreshes its value/size in place
        (no admission draw, no insertion counted).  New keys pass the
        admission rule, then evict victims until the object fits;
        objects larger than the whole capacity are rejected outright.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.used_bytes += size_bytes - entry.size_bytes
            entry.size_bytes = size_bytes
            entry.value = value
            if self.spec.finite:
                self._evict_until(self.spec.capacity_bytes, protect=key)
            return True
        if not self._admit(key):
            self.rejections += 1
            self._inc("rejections")
            return False
        capacity = self.spec.capacity_bytes
        if capacity is not None:
            if size_bytes > capacity:
                self.rejections += 1
                self._inc("rejections")
                return False
            self._evict_until(capacity - size_bytes)
        self._insert_seq += 1
        self._entries[key] = _Entry(size_bytes, value, self._insert_seq)
        self.used_bytes += size_bytes
        self.insertions += 1
        self._inc("insertions")
        return True

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._entries.clear()
        self.used_bytes = 0

    def reset_stats(self) -> None:
        """Zero the counters (residency is untouched)."""
        self.hits = self.misses = 0
        self.insertions = self.evictions = self.rejections = 0

    # -- internals -----------------------------------------------------

    def _admit(self, key: str) -> bool:
        if self.spec.admission == "always":
            return True
        self._admit_seq += 1
        rng = random.Random(derive_seed(
            self._seed, "cache/%s/admit#%d" % (self.name, self._admit_seq)))
        return rng.random() < self.spec.admit_probability

    def _evict_until(self, budget: int,
                     protect: Optional[str] = None) -> None:
        while self.used_bytes > budget:
            victim = self._pick_victim(protect)
            if victim is None:
                return
            entry = self._entries.pop(victim)
            self.used_bytes -= entry.size_bytes
            self.evictions += 1
            self._inc("evictions")

    def _pick_victim(self, protect: Optional[str]) -> Optional[str]:
        candidates = [k for k in self._entries if k != protect]
        if not candidates:
            return None
        policy = self.spec.policy
        if policy == "lru":
            # Dict head == least recently used (hits re-append).
            return candidates[0]
        if policy == "fifo":
            return min(candidates,
                       key=lambda k: self._entries[k].sequence)
        if policy == "lfu":
            return min(candidates,
                       key=lambda k: (self._entries[k].frequency,
                                      self._entries[k].sequence))
        # "random": keyed stream — victim ordinal n is a pure function
        # of (seed, name, n), untangled from every other sim draw.
        self._evict_seq += 1
        rng = random.Random(derive_seed(
            self._seed, "cache/%s/evict#%d" % (self.name, self._evict_seq)))
        return candidates[rng.randrange(len(candidates))]

    def _inc(self, suffix: str) -> None:
        if self._metric_prefix is None or not _obs.enabled:
            return
        _obs.metrics.inc("%s%s" % (self._metric_prefix, suffix),
                         scope=SCOPE_SIM)
