"""Finite content caches and tier composition for front-end servers.

The cache-policy laboratory: byte-capacity :class:`ContentCache` with
pluggable eviction (LRU/LFU/FIFO/random) and admission (always/prob)
policies, and :class:`CacheTier` chaining FE → regional → back-end
lookups.  The degenerate :class:`CacheSpec` default ("infinite")
reproduces the paper's always-hit black-box FE cache and keeps default
runs bit-identical.  See docs/CACHING.md.
"""

from repro.cache.policy import ContentCache
from repro.cache.spec import (ADMISSIONS, FILLS, POLICIES,
                              REGIONAL_SCOPES, CacheHierarchySpec,
                              CacheSpec)
from repro.cache.tier import (LEVEL_NAMES, ORIGIN, CacheTier,
                              aggregate_stats)

__all__ = [
    "ADMISSIONS",
    "FILLS",
    "POLICIES",
    "REGIONAL_SCOPES",
    "CacheHierarchySpec",
    "CacheSpec",
    "CacheTier",
    "ContentCache",
    "LEVEL_NAMES",
    "ORIGIN",
    "aggregate_stats",
]
