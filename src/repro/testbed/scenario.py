"""Measurement scenario assembly.

A :class:`Scenario` is the complete simulated universe of the paper's
study: two service deployments (google-like and bing-akamai-like), a
fleet of PlanetLab-style vantage points, and the plumbing to wire a
vantage point to any front-end server with a geography-derived link.

Links between clients and FEs are created lazily (a 250-node testbed
against ~80 FE sites would otherwise mean ~20,000 mostly unused links),
and are deterministic: re-requesting the same pair is a no-op.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cache import CacheHierarchySpec
from repro.net.topology import Topology
from repro.services.deployment import (
    ServiceDeployment,
    ServiceProfile,
    bing_akamai_profile,
    google_like_profile,
)
from repro.services.frontend import FrontEndServer
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams, derive_seed
from repro.tcp.config import TcpConfig
from repro.tcp.host import TcpHost
from repro.testbed import sites
from repro.testbed.vantage import VantagePoint, generate_vantage_points

#: Route inflation used on client-FE paths (public Internet).
CLIENT_ROUTE_INFLATION = 1.6


class LazyServiceMap:
    """Mapping of service name -> deployment, constructed on first use.

    Building a deployment is the expensive part of scenario assembly
    (every FE opens its persistent connection pool to its back-end, and
    those handshakes are simulated packet-by-packet at t=0), so it is
    deferred until the service is actually touched: a campaign over one
    service never pays for the other's fleet.  Names, iteration order
    and membership are available without construction; ``items()`` and
    ``values()`` force every deployment, in registration order, so bulk
    consumers see exactly the eager behavior.

    Laziness is observation-equivalent because deployment construction
    draws no shared randomness (all streams are name-keyed) and a
    service's simulated events are confined to its own nodes and links.
    Deployments must be first touched while the clock is still at the
    time origin (drivers do this during setup); the pool handshakes
    then run at t=0 exactly as they would have eagerly.
    """

    def __init__(self):
        self._factories: Dict[str, object] = {}
        self._built: Dict[str, ServiceDeployment] = {}

    def register(self, name: str, factory) -> None:
        self._factories[name] = factory

    def __getitem__(self, name: str) -> ServiceDeployment:
        deployment = self._built.get(name)
        if deployment is None:
            try:
                factory = self._factories[name]
            except KeyError:
                raise KeyError(name) from None
            deployment = factory()
            self._built[name] = deployment
        return deployment

    def __iter__(self):
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __contains__(self, name) -> bool:
        return name in self._factories

    def get(self, name, default=None):
        if name not in self._factories:
            return default
        return self[name]

    def keys(self):
        return self._factories.keys()

    def values(self):
        return [self[name] for name in self._factories]

    def items(self):
        return [(name, self[name]) for name in self._factories]

    @property
    def built(self) -> Dict[str, ServiceDeployment]:
        """The deployments constructed so far (for tests/diagnostics)."""
        return dict(self._built)


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of a measurement scenario."""

    seed: int = 0
    vantage_count: int = 240
    client_bandwidth: float = units.mbps(100)
    client_loss_rate: float = 0.0
    akamai_coverage: float = 0.75
    cache_static: bool = True
    #: Probability that DNS maps a client to its second- or third-
    #: nearest FE instead of the nearest (real 2011 DNS mapping was
    #: resolver-based and imperfect; 0 keeps resolution deterministic).
    dns_variance: float = 0.0
    #: TCP config for vantage-point stacks.
    client_tcp: TcpConfig = TcpConfig()
    #: The front-end cache complement (see :mod:`repro.cache`).  The
    #: default — an infinite always-hit static cache, no regional tier,
    #: an unbounded result cache — is the paper's black-box assumption
    #: and keeps campaign outputs bit-identical to the plain
    #: ``cache_static`` boolean.  Finite specs make static misses real
    #: (full-page back-end fetches) and are rejected by sharding modes
    #: that would split one cache's request stream across workers.
    fe_cache: CacheHierarchySpec = CacheHierarchySpec()
    #: When True, FE load and BE processing delays are drawn from
    #: per-query generators (keyed by query id) instead of shared
    #: sequential streams.  The marginal distributions are identical but
    #: the realizations differ; per-query draws do not depend on the
    #: global arrival order, which is what lets sharded campaign runs
    #: reproduce serial ones bit-for-bit (see ``repro.parallel``).
    keyed_service_draws: bool = False
    #: When True, the service profiles are made noise-free: FE load and
    #: BE processing sigmas drop to 0 and the FE-BE paths lose their
    #: loss/jitter.  Useful for performance work — in particular it is
    #: the mode where the session-replay cache (``repro.sim.replay``)
    #: gets hits, since every repeated (VP, FE, keyword) submission then
    #: shares one deterministic timeline.  Marginal delay values shift
    #: to the profile medians, so results are *not* comparable to the
    #: stochastic defaults.
    deterministic_services: bool = False

    def __post_init__(self):
        if not 0.0 <= self.dns_variance <= 1.0:
            raise ValueError("dns_variance must be in [0, 1]")


def deterministic_profile(profile: ServiceProfile) -> ServiceProfile:
    """Strip every stochastic element from a service profile.

    Load and processing delays collapse to their deterministic
    components (sigma=0) and the FE-BE path loses loss and jitter; all
    structural parameters (sizes, bandwidths, pools, TCP configs) are
    untouched.
    """
    return profile.with_overrides(
        processing=replace(profile.processing, sigma=0.0),
        fe_load=replace(profile.fe_load, sigma=0.0),
        fe_be_loss=0.0,
        fe_be_jitter=0.0)


def scenario_profiles(config: ScenarioConfig) -> Dict[str, ServiceProfile]:
    """The service profiles a config-built :class:`Scenario` will use.

    Shared with :mod:`repro.parallel.campaigns`, whose shardability
    check must accept exactly the profiles a worker process rebuilding
    the scenario from this config would construct.
    """
    profiles = [google_like_profile(), bing_akamai_profile()]
    if config.deterministic_services:
        profiles = [deterministic_profile(p) for p in profiles]
    return {p.name: p for p in profiles}


class Scenario:
    """The full measurement universe."""

    GOOGLE = "google-like"
    BING = "bing-akamai"

    def __init__(self, config: Optional[ScenarioConfig] = None, *,
                 google_profile: Optional[ServiceProfile] = None,
                 bing_profile: Optional[ServiceProfile] = None):
        self.config = config or ScenarioConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.config.seed)
        self.topology = Topology(self.sim, self.streams)

        default_profiles = scenario_profiles(self.config)
        google_profile = google_profile or default_profiles[self.GOOGLE]
        bing_profile = bing_profile or default_profiles[self.BING]
        self.services = LazyServiceMap()
        self.services.register(
            google_profile.name,
            lambda: ServiceDeployment(
                self.sim, self.topology, self.streams, google_profile,
                fe_sites=sites.google_like_fe_sites(),
                be_sites=list(sites.GOOGLE_LIKE_BE_SITES),
                cache_static=self.config.cache_static,
                content_seed=self.config.seed,
                keyed_draws=self.config.keyed_service_draws,
                cache_spec=self.config.fe_cache))
        self.services.register(
            bing_profile.name,
            lambda: ServiceDeployment(
                self.sim, self.topology, self.streams, bing_profile,
                fe_sites=sites.akamai_like_fe_sites(
                    self.config.akamai_coverage),
                be_sites=list(sites.BING_LIKE_BE_SITES),
                cache_static=self.config.cache_static,
                content_seed=self.config.seed + 1,
                keyed_draws=self.config.keyed_service_draws,
                cache_spec=self.config.fe_cache))
        self.vantage_points: List[VantagePoint] = generate_vantage_points(
            self.config.vantage_count, streams=self.streams)
        self._client_hosts: Dict[str, TcpHost] = {}
        self._links_built: set = set()
        self._build_clients()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_clients(self) -> None:
        for vp in self.vantage_points:
            node = self.topology.add_node(vp.name, vp.location)
            self._client_hosts[vp.name] = TcpHost(
                self.sim, node, self.config.client_tcp, self.streams)

    def client_host(self, vp: VantagePoint) -> TcpHost:
        """The TCP stack of a vantage point."""
        return self._client_hosts[vp.name]

    def add_vantage_point(self, vp: VantagePoint) -> VantagePoint:
        """Register an extra (custom-placed) vantage point.

        Experiments that need controlled client placement — e.g. the
        Figure-9 runner puts one client in each probed FE's metro — add
        nodes here instead of relying on the generated fleet.
        """
        if vp.name in self._client_hosts:
            raise ValueError("vantage point %r already exists" % vp.name)
        node = self.topology.add_node(vp.name, vp.location)
        self._client_hosts[vp.name] = TcpHost(
            self.sim, node, self.config.client_tcp, self.streams)
        self.vantage_points.append(vp)
        return vp

    def service(self, name: str) -> ServiceDeployment:
        try:
            return self.services[name]
        except KeyError:
            raise KeyError("unknown service %r (have %s)"
                           % (name, sorted(self.services))) from None

    # ------------------------------------------------------------------
    # client-FE wiring
    # ------------------------------------------------------------------
    def link_client_to_frontend(self, vp: VantagePoint,
                                frontend: FrontEndServer,
                                service: ServiceDeployment) -> float:
        """Ensure a link between a vantage point and an FE.

        Returns the one-way delay of the (possibly pre-existing) link.
        The delay combines geographic propagation, the node's access
        delay, and its peering penalty when the FE sits in another metro.
        """
        key = (vp.name, frontend.node.name)
        fe_metro = service.site_of_node.get(frontend.node.name)
        delay = vp.one_way_delay_to(frontend.location, fe_metro,
                                    CLIENT_ROUTE_INFLATION)
        if key in self._links_built:
            return delay
        self.topology.connect(vp.name, frontend.node.name,
                              delay=delay,
                              bandwidth=self.config.client_bandwidth,
                              loss_rate=self.config.client_loss_rate)
        self._links_built.add(key)
        return delay

    def client_fe_rtt(self, vp: VantagePoint,
                      frontend: FrontEndServer,
                      service: ServiceDeployment) -> float:
        """Round-trip propagation delay between a client and an FE."""
        fe_metro = service.site_of_node.get(frontend.node.name)
        return 2.0 * vp.one_way_delay_to(frontend.location, fe_metro,
                                         CLIENT_ROUTE_INFLATION)

    # ------------------------------------------------------------------
    # DNS-style default FE resolution
    # ------------------------------------------------------------------
    def default_frontend(self, service_name: str,
                         vp: VantagePoint) -> FrontEndServer:
        """The FE a DNS lookup returns for this vantage point.

        Models 2011 DNS-based mapping: the FE with the lowest expected
        RTT from the client's resolver (which shares the client's
        metro).  With ``dns_variance`` > 0, the mapping occasionally
        lands on the second- or third-nearest FE instead — the draw is
        deterministic per (vantage point, service), like a cached,
        slightly-off resolver answer.
        """
        service = self.service(service_name)
        ranked = sorted(
            service.frontends,
            key=lambda frontend: self.client_fe_rtt(vp, frontend,
                                                    service))
        if not ranked:
            raise RuntimeError("service %r has no front-ends"
                               % service_name)
        variance = self.config.dns_variance
        if variance <= 0.0 or len(ranked) < 2:
            return ranked[0]
        # A fresh RNG per (service, vp) keeps repeated lookups stable,
        # like a resolver's cached answer.
        rng = random.Random(derive_seed(
            self.streams.seed, "dns/%s/%s" % (service_name, vp.name)))
        if rng.random() >= variance:
            return ranked[0]
        return ranked[min(len(ranked) - 1, 1 + int(rng.random() * 2))]

    def connect_default(self, service_name: str,
                        vp: VantagePoint) -> Tuple[FrontEndServer, float]:
        """Resolve the default FE and ensure the link; returns (fe, rtt)."""
        service = self.service(service_name)
        frontend = self.default_frontend(service_name, vp)
        one_way = self.link_client_to_frontend(vp, frontend, service)
        return frontend, 2.0 * one_way
