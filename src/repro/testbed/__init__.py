"""PlanetLab-style testbed: sites, vantage points, scenario assembly."""

from repro.testbed.scenario import CLIENT_ROUTE_INFLATION, Scenario, ScenarioConfig
from repro.testbed.sites import (
    BING_LIKE_BE_SITES,
    GOOGLE_LIKE_BE_SITES,
    METROS,
    Metro,
    akamai_like_fe_sites,
    google_like_fe_sites,
)
from repro.testbed.vantage import VantagePoint, generate_vantage_points

__all__ = [
    "BING_LIKE_BE_SITES",
    "CLIENT_ROUTE_INFLATION",
    "GOOGLE_LIKE_BE_SITES",
    "METROS",
    "Metro",
    "Scenario",
    "ScenarioConfig",
    "VantagePoint",
    "akamai_like_fe_sites",
    "generate_vantage_points",
    "google_like_fe_sites",
]
