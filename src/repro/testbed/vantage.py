"""PlanetLab-style vantage points.

Each :class:`VantagePoint` is a measurement host in a campus network:
it lives in (a small offset from) a metro, and has a last-mile access
delay and a *peering penalty* — extra one-way delay incurred when its
traffic must leave the metro to reach a server elsewhere (IXP detours,
regional transit).  The peering penalty is what keeps nearest-FE RTTs
realistic when the FE is one metro over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.geo import GeoPoint
from repro.sim import units
from repro.sim.randomness import RandomStreams
from repro.testbed.sites import METROS, REGION_WEIGHTS, Metro


@dataclass(frozen=True)
class VantagePoint:
    """One measurement node.

    Attributes
    ----------
    name:
        Host name, e.g. ``"planetlab-017-minneapolis"``.
    metro:
        The metro hosting the node.
    location:
        Node coordinates (metro center plus a campus-scale offset).
    access_delay:
        One-way last-mile delay in seconds (campus + regional network).
    peering_penalty:
        Extra one-way delay in seconds applied when the remote endpoint
        is outside this node's metro.
    """

    name: str
    metro: Metro
    location: GeoPoint
    access_delay: float
    peering_penalty: float

    def one_way_delay_to(self, remote_location: GeoPoint,
                         remote_metro_name: Optional[str] = None,
                         route_inflation: float = 1.6) -> float:
        """One-way network delay from this node to a server.

        Propagation from geographic distance, plus access delay, plus the
        peering penalty when the server is in a different metro.
        """
        delay = self.location.one_way_delay(remote_location,
                                            route_inflation)
        delay += self.access_delay
        if remote_metro_name != self.metro.name:
            delay += self.peering_penalty
        return delay


def generate_vantage_points(count: int, *,
                            seed: int = 0,
                            metros: Sequence[Metro] = METROS,
                            streams: Optional[RandomStreams] = None
                            ) -> List[VantagePoint]:
    """Generate ``count`` vantage points with PlanetLab-like geography.

    Nodes are assigned to metros with the region mixture of
    :data:`~repro.testbed.sites.REGION_WEIGHTS`; several nodes may share
    a metro (PlanetLab sites typically hosted 2-4 nodes).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    streams = streams or RandomStreams(seed)
    # Shard-safe despite the shared stream: placement happens once per
    # worker inside Scenario.__init__, before any shard-variant work,
    # so every shard draws the identical sequence (locked in by the
    # serial-vs-sharded fingerprint tests).
    rng = streams.get("vantage-placement")  # simlint: ignore[RNG001]
    by_region = {}
    for metro in metros:
        by_region.setdefault(metro.region, []).append(metro)
    regions = sorted(by_region)
    weights = [REGION_WEIGHTS.get(region, 0.05) for region in regions]

    points = []
    for index in range(count):
        region = rng.choices(regions, weights=weights)[0]
        metro = rng.choice(by_region[region])
        # Campus-scale offset: up to ~0.1 degrees (~7 miles).
        location = GeoPoint(
            max(-90.0, min(90.0, metro.location.lat
                           + rng.uniform(-0.1, 0.1))),
            max(-180.0, min(180.0, metro.location.lon
                            + rng.uniform(-0.1, 0.1))))
        points.append(VantagePoint(
            name="planetlab-%03d-%s" % (index, metro.name),
            metro=metro,
            location=location,
            access_delay=units.ms(rng.uniform(1.0, 4.0)),
            peering_penalty=units.ms(rng.uniform(3.0, 10.0))))
    return points
