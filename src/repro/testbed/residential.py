"""Residential (non-PlanetLab) vantage points.

The IMC reviewers' main methodological critique (summary review,
reviewer #5): PlanetLab nodes sit in campus networks next to Akamai
clusters, so the measured RTTs — "a latency of 20 ms even to Akamai is
really low" — under-represent real users; DSL interleaving alone adds
~30 ms (Maier et al., IMC 2009), and mobile users see more.

This module provides alternative vantage-point generators so the
reproduction can quantify that critique:

* :func:`residential_vantage_points` — DSL-like access: 15-40 ms
  last-mile delay, mild loss, moderate peering penalty;
* :func:`mobile_vantage_points` — 3G-like access: 40-120 ms last-mile
  delay and noticeable loss.

Access loss rates are carried on the vantage point (via the
``access_loss_rate`` metadata) and applied by
:func:`scenario_with_access_profile` when links are built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim import units
from repro.sim.randomness import RandomStreams
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.testbed.sites import METROS, Metro
from repro.testbed.vantage import VantagePoint, generate_vantage_points


@dataclass(frozen=True)
class AccessProfile:
    """Last-mile characteristics of a vantage-point population."""

    name: str
    access_delay_range_ms: tuple = (1.0, 4.0)
    peering_penalty_range_ms: tuple = (3.0, 10.0)
    loss_rate: float = 0.0
    bandwidth: float = units.mbps(100)


#: The paper's own population: campus hosts with fast wired access.
CAMPUS = AccessProfile(name="campus")

#: DSL homes: interleaving + serialization on slow uplinks (the
#: reviewers' Maier et al. reference).
RESIDENTIAL_DSL = AccessProfile(
    name="residential-dsl",
    access_delay_range_ms=(15.0, 40.0),
    peering_penalty_range_ms=(5.0, 15.0),
    loss_rate=0.001,
    bandwidth=units.mbps(8))

#: 3G-era mobile access: high and variable latency, visible loss.
MOBILE_3G = AccessProfile(
    name="mobile-3g",
    access_delay_range_ms=(40.0, 120.0),
    peering_penalty_range_ms=(10.0, 25.0),
    loss_rate=0.01,
    bandwidth=units.mbps(2))


def vantage_points_with_profile(count: int, profile: AccessProfile, *,
                                seed: int = 0,
                                metros: Sequence[Metro] = METROS,
                                streams: Optional[RandomStreams] = None
                                ) -> List[VantagePoint]:
    """Generate vantage points whose last mile follows ``profile``."""
    streams = streams or RandomStreams(seed)
    base = generate_vantage_points(count, metros=metros,
                                   streams=streams)
    rng = streams.get("access-profile/%s" % profile.name)
    out = []
    for vp in base:
        out.append(VantagePoint(
            name=vp.name.replace("planetlab", profile.name),
            metro=vp.metro,
            location=vp.location,
            access_delay=units.ms(rng.uniform(
                *profile.access_delay_range_ms)),
            peering_penalty=units.ms(rng.uniform(
                *profile.peering_penalty_range_ms))))
    return out


def residential_vantage_points(count: int, seed: int = 0
                               ) -> List[VantagePoint]:
    """DSL-home vantage points (reviewer #5's population)."""
    return vantage_points_with_profile(count, RESIDENTIAL_DSL, seed=seed)


def mobile_vantage_points(count: int, seed: int = 0) -> List[VantagePoint]:
    """3G-like mobile vantage points."""
    return vantage_points_with_profile(count, MOBILE_3G, seed=seed)


def scenario_with_access_profile(profile: AccessProfile, *,
                                 seed: int = 0,
                                 vantage_count: int = 60) -> Scenario:
    """A standard two-service scenario whose fleet uses ``profile``.

    The scenario's client links carry the profile's loss rate and
    bandwidth; the vantage points carry its delays.
    """
    scenario = Scenario(ScenarioConfig(
        seed=seed, vantage_count=vantage_count,
        client_bandwidth=profile.bandwidth,
        client_loss_rate=profile.loss_rate))
    replacement = vantage_points_with_profile(
        vantage_count, profile, streams=scenario.streams.spawn("fleet"))
    # Swap the fleet: drop the generated campus nodes, add the new ones.
    scenario.vantage_points.clear()
    scenario._client_hosts.clear()
    for vp in replacement:
        scenario.add_vantage_point(vp)
    return scenario
