"""Geographic site catalogue.

Synthetic stand-ins for the geography of the 2011 measurement study:

* **metros** — cities hosting PlanetLab-style vantage points (most are
  university towns, mirroring the paper's observation that PlanetLab
  nodes sit in campus networks);
* **back-end data-center sites** — locations inspired by the public
  Google/Microsoft data-center lists the paper cites ([1, 2] in the
  paper);
* **front-end site builders** — the Akamai-like deployment places an FE
  in (nearly) every metro, the Google-like deployment only at major
  hubs.  This density difference is what produces the paper's Figure 6
  (Bing FEs closer to clients than Google FEs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.net.geo import GeoPoint


@dataclass(frozen=True)
class Metro:
    """A metropolitan area that can host vantage points and FE servers."""

    name: str
    location: GeoPoint
    region: str       # "us", "eu", "asia", "other"
    hub: bool = False  # major interconnection hub (google-like FE site)


def _metro(name, lat, lon, region, hub=False):
    return Metro(name, GeoPoint(lat, lon), region, hub)


#: Vantage-point metros.  ``hub=True`` marks major interconnection points.
METROS: Tuple[Metro, ...] = (
    # United States
    _metro("minneapolis", 44.98, -93.27, "us"),
    _metro("chicago", 41.88, -87.63, "us", hub=True),
    _metro("new-york", 40.71, -74.01, "us", hub=True),
    _metro("boston", 42.36, -71.06, "us"),
    _metro("washington-dc", 38.91, -77.04, "us", hub=True),
    _metro("atlanta", 33.75, -84.39, "us", hub=True),
    _metro("miami", 25.76, -80.19, "us", hub=True),
    _metro("seattle", 47.61, -122.33, "us", hub=True),
    _metro("san-francisco", 37.77, -122.42, "us", hub=True),
    _metro("los-angeles", 34.05, -118.24, "us", hub=True),
    _metro("san-diego", 32.72, -117.16, "us"),
    _metro("denver", 39.74, -104.99, "us"),
    _metro("dallas", 32.78, -96.80, "us", hub=True),
    _metro("houston", 29.76, -95.37, "us"),
    _metro("phoenix", 33.45, -112.07, "us"),
    _metro("st-louis", 38.63, -90.20, "us"),
    _metro("pittsburgh", 40.44, -79.99, "us"),
    _metro("philadelphia", 39.95, -75.17, "us"),
    _metro("salt-lake-city", 40.76, -111.89, "us"),
    _metro("portland", 45.52, -122.68, "us"),
    _metro("madison", 43.07, -89.40, "us"),
    _metro("ann-arbor", 42.28, -83.74, "us"),
    _metro("austin", 30.27, -97.74, "us"),
    _metro("raleigh", 35.78, -78.64, "us"),
    _metro("ithaca", 42.44, -76.50, "us"),
    # Europe
    _metro("london", 51.51, -0.13, "eu", hub=True),
    _metro("paris", 48.86, 2.35, "eu", hub=True),
    _metro("berlin", 52.52, 13.40, "eu"),
    _metro("frankfurt", 50.11, 8.68, "eu", hub=True),
    _metro("amsterdam", 52.37, 4.90, "eu", hub=True),
    _metro("madrid", 40.42, -3.70, "eu"),
    _metro("rome", 41.90, 12.50, "eu"),
    _metro("zurich", 47.37, 8.54, "eu"),
    _metro("vienna", 48.21, 16.37, "eu"),
    _metro("stockholm", 59.33, 18.07, "eu", hub=True),
    _metro("helsinki", 60.17, 24.94, "eu"),
    _metro("warsaw", 52.23, 21.01, "eu"),
    _metro("dublin", 53.35, -6.26, "eu"),
    _metro("brussels", 50.85, 4.35, "eu"),
    _metro("prague", 50.08, 14.44, "eu"),
    _metro("athens", 37.98, 23.73, "eu"),
    # Asia-Pacific
    _metro("tokyo", 35.68, 139.69, "asia", hub=True),
    _metro("seoul", 37.57, 126.98, "asia"),
    _metro("beijing", 39.90, 116.41, "asia"),
    _metro("singapore", 1.35, 103.82, "asia", hub=True),
    _metro("hong-kong", 22.32, 114.17, "asia"),
    _metro("taipei", 25.03, 121.57, "asia"),
    # Other
    _metro("sydney", -33.87, 151.21, "other", hub=True),
    _metro("toronto", 43.65, -79.38, "other", hub=True),
    _metro("vancouver", 49.28, -123.12, "other"),
    _metro("sao-paulo", -23.55, -46.63, "other", hub=True),
)

#: Regional mixture matching PlanetLab's 2011 footprint.
REGION_WEIGHTS = {"us": 0.55, "eu": 0.30, "asia": 0.10, "other": 0.05}


#: Google-like back-end data centers (from the public location list the
#: paper cites: The Dalles, Council Bluffs, Lenoir, Berkeley County,
#: Mayes County, Dublin, St. Ghislain).
GOOGLE_LIKE_BE_SITES: Tuple[Tuple[str, GeoPoint], ...] = (
    ("the-dalles-or", GeoPoint(45.60, -121.18)),
    ("council-bluffs-ia", GeoPoint(41.26, -95.86)),
    ("lenoir-nc", GeoPoint(35.91, -81.54)),
    ("berkeley-county-sc", GeoPoint(33.07, -80.04)),
    ("mayes-county-ok", GeoPoint(36.30, -95.30)),
    ("dublin-ie", GeoPoint(53.35, -6.26)),
    ("st-ghislain-be", GeoPoint(50.45, 3.82)),
)

#: Bing-like back-end data centers (Microsoft's 2011 list: Boydton VA,
#: Quincy WA, Chicago, San Antonio, Dublin, Amsterdam).
BING_LIKE_BE_SITES: Tuple[Tuple[str, GeoPoint], ...] = (
    ("boydton-va", GeoPoint(36.66, -78.39)),
    ("quincy-wa", GeoPoint(47.23, -119.85)),
    ("chicago-il", GeoPoint(41.88, -87.63)),
    ("san-antonio-tx", GeoPoint(29.42, -98.49)),
    ("dublin-ie", GeoPoint(53.35, -6.26)),
    ("amsterdam-nl", GeoPoint(52.37, 4.90)),
)


def akamai_like_fe_sites(coverage: float = 0.9,
                         metros: Sequence[Metro] = METROS
                         ) -> List[Tuple[str, GeoPoint]]:
    """FE sites for the shared-CDN deployment: an FE in (almost) every
    metro.  ``coverage`` is the fraction of metros covered; uncovered
    metros are skipped deterministically (every k-th metro)."""
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    skip_every = int(round(1.0 / (1.0 - coverage))) if coverage < 1.0 else 0
    sites = []
    for index, metro in enumerate(metros):
        if skip_every and (index + 1) % skip_every == 0 and not metro.hub:
            continue
        sites.append((metro.name, metro.location))
    return sites


def google_like_fe_sites(metros: Sequence[Metro] = METROS
                         ) -> List[Tuple[str, GeoPoint]]:
    """FE sites for the dedicated deployment: hub metros only."""
    return [(m.name, m.location) for m in metros if m.hub]
