"""Timeline extraction: from packet traces to the paper's metrics.

Given a query session's packet trace and the static/dynamic stream
boundary discovered by content analysis
(:mod:`repro.analysis.boundary`), this module extracts the Figure-2
event times ``tb, t1, t2, t3, t4, t5, te`` and computes ``Tstatic``,
``Tdynamic``, ``Tdelta`` and the overall delay — the quantities every
figure of the paper is built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.stream import (
    arrival_time_of_offset,
    inbound_byte_arrivals,
)
from repro.measure.session import QuerySession


class MetricsError(Exception):
    """Raised when a trace is too incomplete to extract the timeline."""


@dataclass(frozen=True)
class QueryTimeline:
    """The Figure-2 event times for one query (absolute sim seconds)."""

    tb: float   # first SYN sent
    t1: float   # HTTP GET sent
    t2: float   # ACK of the GET received
    t3: float   # first static-content packet received
    t4: float   # last static-content packet received
    t5: float   # first dynamic-content packet received
    te: float   # last packet of the response received
    rtt: float  # handshake-measured RTT


@dataclass(frozen=True)
class QueryMetrics:
    """The paper's derived quantities for one query."""

    session: QuerySession
    timeline: QueryTimeline

    @property
    def tstatic(self) -> float:
        """Tstatic := t4 - t2."""
        return self.timeline.t4 - self.timeline.t2

    @property
    def tdynamic(self) -> float:
        """Tdynamic := t5 - t2."""
        return self.timeline.t5 - self.timeline.t2

    @property
    def tdelta(self) -> float:
        """Tdelta := t5 - t4 (>= 0; 0 when the parts coalesce)."""
        return max(0.0, self.timeline.t5 - self.timeline.t4)

    @property
    def overall_delay(self) -> float:
        """User-perceived response time: connection open to last byte."""
        return self.timeline.te - self.timeline.tb

    @property
    def request_to_last_byte(self) -> float:
        """te - t1, the paper's alternative overall measure."""
        return self.timeline.te - self.timeline.t1

    @property
    def rtt(self) -> float:
        return self.timeline.rtt


def _boundary_offsets(boundary) -> "tuple[int, int]":
    """Normalise a boundary argument to (static_end, dynamic_start).

    Accepts a plain int (single split offset) or an object exposing
    ``static_end`` / ``dynamic_start`` attributes
    (:class:`repro.analysis.boundary.StreamBoundary`).
    """
    static_end = getattr(boundary, "static_end", None)
    dynamic_start = getattr(boundary, "dynamic_start", None)
    if static_end is None or dynamic_start is None:
        static_end = dynamic_start = int(boundary)
    return static_end, dynamic_start


def extract_timeline(session: QuerySession,
                     boundary) -> QueryTimeline:
    """Extract the Figure-2 event times from a session trace.

    ``boundary`` locates the static/dynamic split in the inbound stream:
    either a single offset or a
    :class:`repro.analysis.boundary.StreamBoundary` (from the per-FE
    calibration), whose ``static_end``/``dynamic_start`` pin t4 and t5
    independently of the framing bytes between the parts.
    """
    static_end, dynamic_start = _boundary_offsets(boundary)
    if static_end <= 0:
        raise MetricsError("boundary offset must be positive")
    events = session.events
    if not events:
        raise MetricsError("session %s has no trace" % session.query_id)

    tb = syn_ack_time = None
    t1 = get_event = None
    for event in events:
        if event.direction == "out" and event.syn and tb is None:
            tb = event.time
        elif (event.direction == "in" and event.syn and event.ack_flag
              and syn_ack_time is None):
            syn_ack_time = event.time
        elif (event.direction == "out" and event.payload_len > 0
              and t1 is None):
            t1 = event.time
            get_event = event
    if tb is None or syn_ack_time is None:
        raise MetricsError("session %s lacks a handshake" % session.query_id)
    if t1 is None:
        raise MetricsError("session %s never sent a request"
                           % session.query_id)
    rtt = syn_ack_time - tb

    get_end_seq = get_event.seq + get_event.payload_len
    t2 = None
    for event in events:
        if (event.direction == "in" and event.ack_flag
                and event.ack >= get_end_seq and event.time >= t1):
            t2 = event.time
            break
    if t2 is None:
        raise MetricsError("GET was never acknowledged in session %s"
                           % session.query_id)

    arrivals = inbound_byte_arrivals(events)
    if not arrivals:
        raise MetricsError("no inbound data in session %s"
                           % session.query_id)
    t3 = arrivals[0].time
    t4 = arrival_time_of_offset(arrivals, static_end - 1)
    t5 = arrival_time_of_offset(arrivals, dynamic_start)
    if t4 is None or t5 is None:
        raise MetricsError(
            "session %s never delivered the boundary bytes (offsets "
            "%d/%d)" % (session.query_id, static_end, dynamic_start))
    te = arrivals[-1].time
    return QueryTimeline(tb=tb, t1=t1, t2=t2, t3=t3, t4=t4, t5=t5,
                         te=te, rtt=rtt)


def extract_metrics(session: QuerySession, boundary) -> QueryMetrics:
    """Extract :class:`QueryMetrics` for one session."""
    return QueryMetrics(session=session,
                        timeline=extract_timeline(session, boundary))


def extract_all(sessions: Sequence[QuerySession], boundary,
                skip_failed: bool = True) -> List[QueryMetrics]:
    """Extract metrics for a batch, skipping failed/incomplete sessions."""
    out = []
    for session in sessions:
        if skip_failed and not session.complete:
            continue
        try:
            out.append(extract_metrics(session, boundary))
        except MetricsError:
            if not skip_failed:
                raise
    return out


def extract_all_calibrated(sessions: Sequence[QuerySession],
                           calibration,
                           skip_failed: bool = True) -> List[QueryMetrics]:
    """Like :func:`extract_all`, with per-front-end boundaries.

    ``calibration`` is a
    :class:`repro.analysis.boundary.BoundaryCalibration`; each session
    is classified with the stream boundary of its own front-end server.
    """
    out = []
    for session in sessions:
        if skip_failed and not session.complete:
            continue
        try:
            boundary = calibration.boundary_for(session)
            out.append(extract_metrics(session, boundary))
        except MetricsError:
            if not skip_failed:
                raise
    return out
