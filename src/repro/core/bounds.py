"""Validation of the fetch-time bounds (paper Eq. 1).

The paper's key inferential step is that the unobservable FE-BE fetch
time is sandwiched by two client-side observables:

    Tdelta  <=  Tfetch  <=  Tdynamic

The original study could only argue this from the model.  Because the
simulation records the *true* fetch time at every front-end server
(:class:`repro.services.frontend.FetchRecord`), this module can check the
bounds sample by sample — the reproduction's added value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.metrics import QueryMetrics
from repro.services.frontend import FetchRecord


@dataclass(frozen=True)
class BoundSample:
    """One query's bound check against ground truth."""

    query_id: str
    tdelta: float
    tfetch_true: float
    tdynamic: float
    rtt: float

    @property
    def lower_holds(self) -> bool:
        return self.tdelta <= self.tfetch_true + 1e-9

    @property
    def upper_holds(self) -> bool:
        return self.tfetch_true <= self.tdynamic + 1e-9

    @property
    def holds(self) -> bool:
        return self.lower_holds and self.upper_holds

    @property
    def gap(self) -> float:  # simlint: unit[s]
        """Width of the bound interval (estimation uncertainty)."""
        return self.tdynamic - self.tdelta


@dataclass
class BoundsReport:
    """Aggregate bound validity over a measurement campaign."""

    samples: List[BoundSample] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def lower_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.lower_holds for s in self.samples) / self.n

    @property
    def upper_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.upper_holds for s in self.samples) / self.n

    @property
    def both_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.holds for s in self.samples) / self.n

    @property
    def mean_gap(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.gap for s in self.samples) / self.n


def check_bounds(metrics: Sequence[QueryMetrics],
                 fetch_log: Dict[str, FetchRecord]) -> BoundsReport:
    """Check Eq. 1 for every query that has a ground-truth fetch record."""
    report = BoundsReport()
    for metric in metrics:
        record = fetch_log.get(metric.session.query_id)
        if record is None or record.tfetch is None:
            continue
        report.samples.append(BoundSample(
            query_id=metric.session.query_id,
            tdelta=metric.tdelta,
            tfetch_true=record.tfetch,
            tdynamic=metric.tdynamic,
            rtt=metric.rtt))
    return report


def estimate_tfetch(metric: QueryMetrics,
                    weight: float = 0.5) -> float:
    """Point estimate of Tfetch from the bounds.

    ``weight`` interpolates between the lower bound (0.0) and upper
    bound (1.0).  At small client-FE RTT, Tdynamic is the tight bound
    (the paper uses it directly as the Tfetch proxy in Section 5).
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError("weight must be in [0,1]")
    return (1.0 - weight) * metric.tdelta + weight * metric.tdynamic
