"""Do front-end servers cache search results?  (Section 3.)

The paper's experiment: against a fixed FE, (a) all nodes submit the
*same* query repeatedly, (b) each node submits a *different* query.  If
the FE cached dynamically generated results, repeated queries would skip
the back-end fetch and their ``Tdynamic`` distribution would collapse
toward ``Tstatic``; distinct queries would not.  Comparing the two
distributions answers the question — the paper concludes FE servers do
**not** cache search results.

This module implements that comparison with a two-sample
Kolmogorov-Smirnov test plus a median-ratio effect-size check (a
significant KS alone can reflect tiny differences at large n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from repro.analysis.stats import median


@dataclass(frozen=True)
class CacheDetectionResult:
    """Outcome of the same-query vs distinct-query comparison.

    ``caching_detected`` is True when repeated queries are both
    statistically distinguishable (KS p below ``alpha``) *and*
    substantially faster (median ratio below ``ratio_threshold``).
    """

    median_same: float
    median_distinct: float
    ks_statistic: float
    p_value: float
    caching_detected: bool

    @property
    def median_ratio(self) -> float:
        if self.median_distinct == 0:
            return float("inf")
        return self.median_same / self.median_distinct

    def verdict(self) -> str:
        if self.caching_detected:
            return ("FE servers appear to CACHE search results: repeated "
                    "queries are %.0f%% faster (p=%.2g)"
                    % ((1 - self.median_ratio) * 100, self.p_value))
        return ("FE servers do NOT appear to cache search results "
                "(median ratio %.2f, p=%.2g)"
                % (self.median_ratio, self.p_value))


def detect_result_caching(same_query_tdynamic: Sequence[float],
                          distinct_query_tdynamic: Sequence[float], *,
                          alpha: float = 0.01,
                          ratio_threshold: float = 0.6
                          ) -> CacheDetectionResult:
    """Compare Tdynamic distributions of repeated vs distinct queries.

    Parameters
    ----------
    same_query_tdynamic:
        Tdynamic samples when every node issued the same keyword.
    distinct_query_tdynamic:
        Tdynamic samples when every node issued a different keyword.
    alpha:
        KS significance level.
    ratio_threshold:
        Maximum median(same)/median(distinct) ratio compatible with
        caching (a cached response skips the whole FE-BE fetch, so the
        drop is large when caching exists).
    """
    if len(same_query_tdynamic) < 3 or len(distinct_query_tdynamic) < 3:
        raise ValueError("need at least 3 samples per condition")
    ks = scipy_stats.ks_2samp(same_query_tdynamic,
                              distinct_query_tdynamic)
    median_same = median(same_query_tdynamic)
    median_distinct = median(distinct_query_tdynamic)
    ratio = (median_same / median_distinct
             if median_distinct > 0 else float("inf"))
    detected = bool(ks.pvalue < alpha and ratio < ratio_threshold)
    return CacheDetectionResult(
        median_same=median_same,
        median_distinct=median_distinct,
        ks_statistic=float(ks.statistic),
        p_value=float(ks.pvalue),
        caching_detected=detected)
