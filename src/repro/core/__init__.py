"""The paper's contribution: the model-based inference framework.

* :mod:`repro.core.model` — the Section-2 abstract model (Eq. 1 & 2).
* :mod:`repro.core.metrics` — trace -> (Tstatic, Tdynamic, Tdelta).
* :mod:`repro.core.bounds` — Tdelta <= Tfetch <= Tdynamic validation.
* :mod:`repro.core.threshold` — the RTT threshold beyond which FE
  placement stops mattering.
* :mod:`repro.core.factoring` — Tfetch = Tproc + C*RTTbe via the
  distance regression (Figure 9).
* :mod:`repro.core.cache_detect` — do FEs cache search results?
* :mod:`repro.core.compare` — the Bing-vs-Google style comparison.
"""

from repro.core.bounds import BoundSample, BoundsReport, check_bounds, estimate_tfetch
from repro.core.cache_detect import CacheDetectionResult, detect_result_caching
from repro.core.compare import (
    ComparisonReport,
    ServiceSummary,
    compare_services,
    summarize_service,
)
from repro.core.factoring import (
    DistancePoint,
    FetchFactoring,
    build_distance_points,
    build_sample_pairs,
    estimate_rtt_be,
    factor_fetch_time,
    tproc_via_geography,
)
from repro.core.metrics import (
    MetricsError,
    QueryMetrics,
    QueryTimeline,
    extract_all,
    extract_all_calibrated,
    extract_metrics,
    extract_timeline,
)
from repro.core.model import AbstractModel
from repro.core.whatif import (
    FittedModel,
    PlacementAdvice,
    WhatIfError,
    advise_placement,
    fit_model,
)
from repro.core.threshold import (
    RegimeSplit,
    ThresholdEstimate,
    estimate_tdelta_threshold,
    split_tdynamic_regimes,
)

__all__ = [
    "AbstractModel",
    "BoundSample",
    "BoundsReport",
    "CacheDetectionResult",
    "ComparisonReport",
    "DistancePoint",
    "FittedModel",
    "FetchFactoring",
    "MetricsError",
    "PlacementAdvice",
    "QueryMetrics",
    "QueryTimeline",
    "RegimeSplit",
    "ServiceSummary",
    "ThresholdEstimate",
    "WhatIfError",
    "advise_placement",
    "build_distance_points",
    "build_sample_pairs",
    "check_bounds",
    "compare_services",
    "detect_result_caching",
    "estimate_rtt_be",
    "estimate_tdelta_threshold",
    "estimate_tfetch",
    "extract_all",
    "extract_all_calibrated",
    "extract_metrics",
    "extract_timeline",
    "factor_fetch_time",
    "fit_model",
    "split_tdynamic_regimes",
    "summarize_service",
    "tproc_via_geography",
]
