"""The paper's abstract model (Section 2).

The model describes a search query's packet-level timeline (Figure 2):

* ``tb`` — TCP three-way handshake begins;
* ``t1`` — the client sends the HTTP GET;
* ``t2`` — the client receives the ACK of the GET (one RTT later);
* ``t3`` / ``t4`` — first / last packet of the **static** portion;
* ``t5`` — first packet of the **dynamic** portion;
* ``te`` — last packet of the response.

and defines the measurable quantities

* ``Tstatic  := t4 - t2``
* ``Tdynamic := t5 - t2``
* ``Tdelta   := t5 - t4``

with the central inequality (paper Eq. 1) and decomposition (Eq. 2):

* ``Tdelta <= Tfetch <= Tdynamic``
* ``Tfetch  = Tproc + C * RTTbe``

:class:`AbstractModel` turns those equations into executable predictions
parameterised by the client-FE RTT, the FE processing delay, the fetch
time, and the number of extra client-FE round trips the static portion's
TCP-window delivery needs (``static_windows``, the paper's implicit
``k``).  The predictions are what Figures 3-5 check qualitatively; the
test suite checks the simulator against them quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AbstractModel:
    """Closed-form predictions of the Section-2 model.

    Parameters
    ----------
    fe_delay:
        FE processing delay before the static portion is written (s).
    tfetch:
        FE-BE fetch time: forwarding + back-end processing + delivery of
        the dynamic portion to the FE (s).
    static_windows:
        Extra client-FE round trips needed to deliver the static portion
        beyond its first in-window burst (the ``k`` factor; 0 when the
        static portion fits in the initial congestion window).
    """

    fe_delay: float
    tfetch: float
    static_windows: int = 1

    def __post_init__(self):
        if self.fe_delay < 0 or self.tfetch < 0:
            raise ValueError("delays must be non-negative")
        if self.static_windows < 0:
            raise ValueError("static_windows must be >= 0")

    # ------------------------------------------------------------------
    def predict_tstatic(self, rtt: float) -> float:  # simlint: unit[s]
        """t4 - t2: FE delay plus the windowed static delivery."""
        return self.fe_delay + self.static_windows * rtt

    def predict_tdelta(self, rtt: float) -> float:
        """t5 - t4: positive until the static delivery catches up."""
        return max(0.0, self.tfetch - self.predict_tstatic(rtt))

    def predict_tdynamic(self, rtt: float) -> float:  # simlint: unit[s]
        """t5 - t2: the larger of the fetch and the static delivery."""
        return max(self.tfetch, self.predict_tstatic(rtt))

    def rtt_threshold(self) -> float:
        """The RTT beyond which Tdelta is predicted to be zero.

        Beyond this point the last static packet and the first dynamic
        packet are delivered back-to-back, and reducing the client-FE
        RTT further cannot improve Tdynamic: end-to-end performance is
        determined solely by the FE-BE fetch time.  This is the paper's
        placement/fetch-time trade-off.
        """
        if self.static_windows == 0:
            return float("inf") if self.tfetch > self.fe_delay else 0.0
        return max(0.0, (self.tfetch - self.fe_delay) / self.static_windows)

    # ------------------------------------------------------------------
    @staticmethod
    def bounds_hold(tdelta: float, tfetch: float, tdynamic: float,
                    slack: float = 0.0) -> bool:
        """Check the paper's Eq. 1: Tdelta <= Tfetch <= Tdynamic."""
        return tdelta - slack <= tfetch <= tdynamic + slack

    @staticmethod
    def fetch_decomposition(tproc: float, rtt_be: float,
                            c: float) -> float:
        """The paper's Eq. 2: Tfetch = Tproc + C * RTTbe."""
        if c < 0 or tproc < 0 or rtt_be < 0:
            raise ValueError("components must be non-negative")
        return tproc + c * rtt_be
