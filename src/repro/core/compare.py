"""Service comparison (Section 4.2).

Aggregates per-service distributions of the paper's metrics — RTT to the
default FE (Figure 6), Tstatic and Tdynamic (Figure 7), and the overall
delay (Figure 8) — and renders the comparison the paper draws: the CDN-
fronted service has *closer* front-ends yet *slower and more variable*
delivery, because fetch time and server load dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import fraction_below, summary
from repro.core.metrics import QueryMetrics
from repro.sim import units


@dataclass(frozen=True)
class ServiceSummary:
    """Distribution summaries of one service's measurements."""

    service: str
    rtt: Dict[str, float]
    tstatic: Dict[str, float]
    tdynamic: Dict[str, float]
    tdelta: Dict[str, float]
    overall: Dict[str, float]
    rtt_fraction_under_20ms: float


def summarize_service(service: str,
                      metrics: Sequence[QueryMetrics]) -> ServiceSummary:
    """Summaries for one service from extracted metrics."""
    if not metrics:
        raise ValueError("no metrics for service %r" % service)
    rtts = [m.rtt for m in metrics]
    return ServiceSummary(
        service=service,
        rtt=summary(rtts),
        tstatic=summary([m.tstatic for m in metrics]),
        tdynamic=summary([m.tdynamic for m in metrics]),
        tdelta=summary([m.tdelta for m in metrics]),
        overall=summary([m.overall_delay for m in metrics]),
        rtt_fraction_under_20ms=fraction_below(rtts, units.ms(20)))


@dataclass
class ComparisonReport:
    """The Section-4.2 comparison between two services."""

    first: ServiceSummary
    second: ServiceSummary

    def closer_frontends(self) -> str:
        """Which service's default FEs are closer (lower median RTT)."""
        return (self.first.service
                if self.first.rtt["median"] < self.second.rtt["median"]
                else self.second.service)

    def faster_overall(self) -> str:
        """Which service delivers lower median overall delay."""
        return (self.first.service
                if self.first.overall["median"] < self.second.overall["median"]
                else self.second.service)

    def more_variable(self) -> str:
        """Which service shows higher overall-delay spread (std)."""
        return (self.first.service
                if self.first.overall["std"] > self.second.overall["std"]
                else self.second.service)

    @property
    def paradox_present(self) -> bool:
        """The paper's headline: the closer-FE service is NOT the faster.

        True when the service with closer front-ends has *worse* median
        overall delay — proximity lost to fetch time and load.
        """
        return self.closer_frontends() != self.faster_overall()

    def rows(self) -> List[Dict[str, object]]:
        """Tabular form (one row per service) for report printing."""
        rows = []
        for s in (self.first, self.second):
            rows.append({
                "service": s.service,
                "rtt_median_ms": units.seconds_to_ms(s.rtt["median"]),
                "rtt_under_20ms": s.rtt_fraction_under_20ms,
                "tstatic_median_ms":
                    units.seconds_to_ms(s.tstatic["median"]),
                "tstatic_std_ms": units.seconds_to_ms(s.tstatic["std"]),
                "tdynamic_median_ms":
                    units.seconds_to_ms(s.tdynamic["median"]),
                "tdynamic_std_ms": units.seconds_to_ms(s.tdynamic["std"]),
                "overall_median_ms":
                    units.seconds_to_ms(s.overall["median"]),
                "overall_std_ms": units.seconds_to_ms(s.overall["std"]),
            })
        return rows


def compare_services(metrics_by_service: Dict[str, Sequence[QueryMetrics]]
                     ) -> ComparisonReport:
    """Build the comparison report from per-service metrics."""
    if len(metrics_by_service) != 2:
        raise ValueError("comparison needs exactly two services, got %d"
                         % len(metrics_by_service))
    names = sorted(metrics_by_service)
    return ComparisonReport(
        first=summarize_service(names[0], metrics_by_service[names[0]]),
        second=summarize_service(names[1], metrics_by_service[names[1]]))
