"""Factoring the FE-BE fetch time (Section 5, Figure 9).

``Tfetch = Tproc + C * RTTbe`` mixes back-end computation with FE-BE
network delay.  The paper separates them with a geographic regression:

1. take front-end servers at varying distances from a chosen back-end
   data center;
2. measure ``Tdynamic`` from *low-RTT* clients against each FE (at low
   client-FE RTT, Tdynamic ~ Tfetch);
3. regress median Tdynamic on FE-BE great-circle distance.

The **intercept** is the distance-free component — the back-end
processing time (the paper reads ~260 ms for Bing, ~34 ms for Google) —
and the **slope** is the network contribution per mile (~0.08-0.099
ms/mile in the paper, similar for both services since both ride on
fiber).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import LinearFit, linear_fit, median
from repro.sim import units
from repro.core.metrics import QueryMetrics


@dataclass(frozen=True)
class DistancePoint:
    """One FE's contribution to the Figure-9 regression."""

    fe_name: str
    distance_miles: float
    tdynamic_median: float
    samples: int


@dataclass(frozen=True)
class FetchFactoring:
    """The Figure-9 result for one service."""

    points: Tuple[DistancePoint, ...]
    fit: LinearFit

    @property
    def tproc_estimate(self) -> float:
        """Back-end processing time: the regression intercept (seconds)."""
        return self.fit.intercept

    @property
    def slope_ms_per_mile(self) -> float:
        """Network delay contribution, in ms per mile of FE-BE distance."""
        return self.fit.slope * 1000.0

    def network_share(self, distance_miles: float) -> float:
        """Estimated fraction of Tfetch due to the network at a distance."""
        total = self.fit.predict(distance_miles)
        if total <= 0:
            return 0.0
        return max(0.0, self.fit.slope * distance_miles) / total


def build_distance_points(
        metrics_by_fe: Dict[str, Sequence[QueryMetrics]],
        fe_distances: Dict[str, float], *,
        max_client_rtt: float = 0.040,
        min_samples: int = 3) -> List[DistancePoint]:
    """Aggregate per-FE Tdynamic medians from low-RTT clients.

    ``metrics_by_fe`` maps FE node name to the metrics of queries served
    by that FE; ``fe_distances`` maps FE node name to its distance from
    the back-end (miles).  Only clients with RTT below ``max_client_rtt``
    contribute (the paper's "for smaller values of RTT, Tdynamic can be
    considered an approximation of Tfetch").
    """
    points = []
    for fe_name, metrics in metrics_by_fe.items():
        if fe_name not in fe_distances:
            continue
        low_rtt = [m.tdynamic for m in metrics if m.rtt <= max_client_rtt]
        if len(low_rtt) < min_samples:
            continue
        points.append(DistancePoint(
            fe_name=fe_name,
            distance_miles=fe_distances[fe_name],
            tdynamic_median=median(low_rtt),
            samples=len(low_rtt)))
    return points


def build_sample_pairs(metrics_by_fe: Dict[str, Sequence[QueryMetrics]],
                       fe_distances: Dict[str, float], *,
                       max_client_rtt: float = 0.040
                       ) -> List[Tuple[float, float]]:
    """All low-RTT (distance, Tdynamic) samples, unaggregated.

    The paper fits its regression line over the raw scatter (Figure 9
    plots every data point), which keeps the slope identifiable when
    per-query processing noise is comparable to the distance signal.
    """
    pairs = []
    for fe_name, metrics in metrics_by_fe.items():
        distance = fe_distances.get(fe_name)
        if distance is None:
            continue
        for metric in metrics:
            if metric.rtt <= max_client_rtt:
                pairs.append((distance, metric.tdynamic))
    return pairs


def factor_fetch_time(points: Sequence[DistancePoint],
                      sample_pairs: Optional[Sequence[Tuple[float, float]]]
                      = None) -> FetchFactoring:
    """Fit the Figure-9 regression.

    With ``sample_pairs`` the line is fitted over the raw scatter (the
    paper's method); otherwise over the per-FE medians.  ``points`` are
    always kept for reporting.
    """
    if len(points) < 2:
        raise ValueError("need at least two FE distance points, got %d"
                         % len(points))
    if sample_pairs:
        fit = linear_fit([d for d, _ in sample_pairs],
                         [t for _, t in sample_pairs])
    else:
        fit = linear_fit([p.distance_miles for p in points],
                         [p.tdynamic_median for p in points])
    return FetchFactoring(points=tuple(points), fit=fit)


def estimate_rtt_be(factoring: FetchFactoring, distance_miles: float,
                    c: float = 3.0) -> float:
    """Back out RTTbe from the slope given an assumed window count C.

    The paper's Eq. 2 reviewer heuristic: slope = C * dRTTbe/dmiles, so
    RTTbe(distance) = slope * distance / C.
    """
    if c <= 0:
        raise ValueError("C must be positive")
    return factoring.fit.slope * distance_miles / c


def tproc_via_geography(metrics: Sequence[QueryMetrics],
                        fe_be_distance_miles: float, *,
                        c: float = 3.0,
                        route_inflation: float = 1.6,
                        max_client_rtt: float = 0.040) -> List[float]:
    """Per-query back-end processing estimates via geographic RTTbe.

    Reviewer #3's suggestion in the paper's summary review: "use a
    virtual coordinate system to estimate the RTT between FE and BE
    servers and then take this ... out from Tdynamic in order to say
    something about Tproc at the datacenter."  Here the coordinate
    system is geography itself: RTTbe is predicted from the FE-BE
    great-circle distance at fiber speed, scaled by ``route_inflation``,
    and ``Tproc ~ Tdynamic - C * RTTbe`` for low-client-RTT queries.

    Returns one estimate per qualifying query (clamped at zero).
    """
    if fe_be_distance_miles < 0:
        raise ValueError("distance must be non-negative")
    if c <= 0:
        raise ValueError("C must be positive")
    rtt_be = 2.0 * units.propagation_delay(fe_be_distance_miles,
                                           route_inflation)
    estimates = []
    for metric in metrics:
        if metric.rtt > max_client_rtt:
            continue
        estimates.append(max(0.0, metric.tdynamic - c * rtt_be))
    return estimates
