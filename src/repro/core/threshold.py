"""RTT-threshold estimation (Section 4.1).

The paper's reading of Figure 5: as the client-FE RTT grows, ``Tdelta``
decreases roughly linearly and hits zero at a threshold RTT — beyond
which the dynamic portion coalesces with the static delivery and further
reducing the RTT "will not drastically improve the overall user
perceived performance".  Symmetrically, ``Tdynamic`` is constant below
the threshold and grows linearly above it.

This module estimates that threshold from (RTT, Tdelta) samples: it bins
by RTT, takes per-bin medians, fits the decreasing segment, and reports
where the fit (and the data) reach zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import LinearFit, binned_medians, linear_fit


@dataclass(frozen=True)
class ThresholdEstimate:
    """Result of the Tdelta-extinction analysis.

    Attributes
    ----------
    threshold_rtt:
        Estimated RTT (seconds) at which Tdelta reaches ~zero.
    fit:
        Linear fit of the decreasing (positive-Tdelta) segment; its
        slope estimates ``-k`` (static delivery windows) and its
        intercept estimates ``Tfetch - fe_delay``.
    bin_medians:
        The (rtt_bin_center, median_tdelta) points used.
    zero_bin_rtt:
        Center of the first RTT bin whose median Tdelta fell below the
        zero tolerance (None if no bin did).
    """

    threshold_rtt: float
    fit: Optional[LinearFit]
    bin_medians: List[Tuple[float, float]]
    zero_bin_rtt: Optional[float]


def estimate_tdelta_threshold(rtts: Sequence[float],
                              tdeltas: Sequence[float], *,
                              bin_width: float = 0.020,
                              zero_tolerance: float = 0.005
                              ) -> ThresholdEstimate:
    """Estimate where median Tdelta reaches zero as a function of RTT.

    ``bin_width`` and ``zero_tolerance`` are in seconds (defaults: 20 ms
    bins, 5 ms tolerance — Tdelta below the tolerance counts as
    extinguished).
    """
    if len(rtts) != len(tdeltas):
        raise ValueError("rtts and tdeltas must have equal length")
    if len(rtts) < 2:
        raise ValueError("need at least two samples")
    points = binned_medians(rtts, tdeltas, bin_width)
    if not points:
        raise ValueError("binning produced no points")

    zero_bin_rtt = None
    for center, med in points:
        if med <= zero_tolerance:
            zero_bin_rtt = center
            break

    # Fit only the decreasing, strictly positive segment.
    positive = [(x, y) for x, y in points if y > zero_tolerance]
    fit = None
    threshold = None
    if len(positive) >= 2 and len({x for x, _ in positive}) >= 2:
        fit = linear_fit([x for x, _ in positive],
                         [y for _, y in positive])
        if fit.slope < 0:
            threshold = -fit.intercept / fit.slope
    if threshold is None:
        # Fall back to the first zero bin, or the largest observed RTT
        # when Tdelta never reached zero in the data.
        threshold = zero_bin_rtt if zero_bin_rtt is not None \
            else max(x for x, _ in points)
    elif zero_bin_rtt is not None:
        # The fit can overshoot when the tail is flat; keep it within
        # one bin of the first observed zero.
        threshold = min(threshold, zero_bin_rtt + bin_width)
    return ThresholdEstimate(threshold_rtt=float(threshold), fit=fit,
                             bin_medians=points, zero_bin_rtt=zero_bin_rtt)


@dataclass(frozen=True)
class RegimeSplit:
    """Tdynamic's two regimes: flat (fetch-bound) then linear (RTT-bound).

    Attributes
    ----------
    flat_level:
        Median Tdynamic over the bins below the split (the Tfetch
        plateau).
    linear_fit:
        Fit over the bins above the split (slope ~ static windows k).
    split_rtt:
        The RTT separating the regimes.
    """

    flat_level: float
    linear_fit: Optional[LinearFit]
    split_rtt: float


def split_tdynamic_regimes(rtts: Sequence[float],
                           tdynamics: Sequence[float], *,
                           bin_width: float = 0.020,
                           split_rtt: Optional[float] = None
                           ) -> RegimeSplit:
    """Characterise Tdynamic's flat-then-linear shape.

    If ``split_rtt`` is not given, the split is chosen as the bin after
    which the medians start rising consistently.
    """
    points = binned_medians(rtts, tdynamics, bin_width)
    if not points:
        raise ValueError("no data")
    if split_rtt is None:
        split_rtt = _detect_rise(points)
    low = [y for x, y in points if x <= split_rtt]
    high = [(x, y) for x, y in points if x > split_rtt]
    flat_level = (sorted(low)[len(low) // 2] if low
                  else points[0][1])
    fit = None
    if len(high) >= 2 and len({x for x, _ in high}) >= 2:
        fit = linear_fit([x for x, _ in high], [y for _, y in high])
    return RegimeSplit(flat_level=float(flat_level), linear_fit=fit,
                       split_rtt=float(split_rtt))


def _detect_rise(points: List[Tuple[float, float]]) -> float:
    """Heuristic split: first bin from which medians keep increasing."""
    if len(points) < 3:
        return points[-1][0]
    base = min(y for _, y in points[:max(1, len(points) // 3)])
    for index in range(len(points) - 1):
        x, y = points[index]
        tail = points[index:]
        rising = all(tail[i + 1][1] >= tail[i][1] * 0.95
                     for i in range(len(tail) - 1))
        if y > base * 1.2 and rising:
            return points[max(0, index - 1)][0]
    return points[-1][0]
