"""What-if analysis: placement and back-end questions from measurements.

The paper closes by arguing its inference framework should "potentially
guide us in designing better content placement and delivery strategies
for dynamic content distribution" (and cites WISE [11], the what-if
reasoning system, as inspiration).  This module delivers that step: it
fits the Section-2 abstract model to a set of measured
:class:`~repro.core.metrics.QueryMetrics` and answers the questions an
operator would ask:

* *What if the front-end moved closer/farther (RTT changed)?*
* *What if back-end processing were twice as fast?*
* *What if the FE-BE fetch path were shortened?*
* *Where is the RTT threshold below which placement stops mattering?*

The fit estimates three parameters per (service, FE) population:

* ``fe_delay`` — median Tstatic extrapolated to RTT 0;
* ``static_windows`` (k) — the slope of Tstatic against RTT;
* ``tfetch`` — median Tdynamic among low-RTT clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.stats import linear_fit, median
from repro.core.metrics import QueryMetrics
from repro.core.model import AbstractModel


class WhatIfError(Exception):
    """Raised when the measurements cannot support a model fit."""


@dataclass(frozen=True)
class FittedModel:
    """An :class:`AbstractModel` fitted from measurements."""

    model: AbstractModel
    samples: int
    #: Goodness of the Tstatic-vs-RTT fit (r^2), None for tiny samples.
    static_fit_r2: Optional[float]

    # ------------------------------------------------------------------
    # operator questions
    # ------------------------------------------------------------------
    def predicted_tdynamic(self, rtt: float) -> float:
        """Expected Tdynamic for a client at ``rtt``."""
        return self.model.predict_tdynamic(rtt)

    def placement_gain(self, rtt_now: float, rtt_new: float) -> float:
        """Tdynamic improvement from moving the FE (seconds, >= 0)."""
        return max(0.0, self.model.predict_tdynamic(rtt_now)
                   - self.model.predict_tdynamic(rtt_new))

    def faster_backend_gain(self, rtt: float,
                            tproc_speedup: float,
                            tproc_share: float = 0.85) -> float:
        """Tdynamic improvement if back-end processing sped up.

        ``tproc_speedup`` of 2.0 halves the processing component;
        ``tproc_share`` is the fraction of Tfetch attributed to
        processing (from the Figure-9 factoring: intercept / mean).
        """
        if tproc_speedup <= 0:
            raise ValueError("speedup must be positive")
        if not 0.0 <= tproc_share <= 1.0:
            raise ValueError("tproc_share must be in [0,1]")
        tproc = self.model.tfetch * tproc_share
        network = self.model.tfetch - tproc
        improved = AbstractModel(
            fe_delay=self.model.fe_delay,
            tfetch=network + tproc / tproc_speedup,
            static_windows=self.model.static_windows)
        return max(0.0, self.model.predict_tdynamic(rtt)
                   - improved.predict_tdynamic(rtt))

    def placement_threshold(self) -> float:
        """The RTT below which moving the FE closer stops helping."""
        return self.model.rtt_threshold()

    def dominant_factor(self, rtt: float) -> str:
        """What limits Tdynamic for a client at ``rtt``."""
        if self.model.predict_tdelta(rtt) > 0:
            return "fetch"      # Tfetch-bound: fix the back end / path
        return "delivery"       # RTT-bound: placement/last mile matters


def fit_model(metrics: Sequence[QueryMetrics], *,
              low_rtt_cutoff: float = 0.040,
              min_samples: int = 5) -> FittedModel:
    """Fit the abstract model to measured metrics.

    Requires a spread of client RTTs (for the Tstatic slope) and at
    least a few low-RTT clients (for the Tfetch plateau).
    """
    if len(metrics) < min_samples:
        raise WhatIfError("need at least %d samples, got %d"
                          % (min_samples, len(metrics)))
    rtts = [m.rtt for m in metrics]
    tstatics = [m.tstatic for m in metrics]

    static_fit = None
    if max(rtts) - min(rtts) > 0.010:
        static_fit = linear_fit(rtts, tstatics)
    if static_fit is not None and static_fit.slope > -0.5:
        k = max(0, round(static_fit.slope))
        fe_delay = max(0.0, static_fit.intercept)
        r2 = static_fit.r_squared
    else:
        # No RTT spread: assume the FE delay is the whole Tstatic and a
        # single extra delivery window (the common case).
        k = 1
        fe_delay = max(0.0, median(tstatics) - k * median(rtts))
        r2 = None

    low_rtt = [m.tdynamic for m in metrics if m.rtt <= low_rtt_cutoff]
    if len(low_rtt) >= 3:
        tfetch = median(low_rtt)
    else:
        # Fall back to the bound midpoint over all samples.
        tfetch = median([(m.tdelta + m.tdynamic) / 2 for m in metrics])
    tfetch = max(0.0, tfetch)

    model = AbstractModel(fe_delay=fe_delay, tfetch=tfetch,
                          static_windows=int(k))
    return FittedModel(model=model, samples=len(metrics),
                       static_fit_r2=r2)


@dataclass(frozen=True)
class PlacementAdvice:
    """Operator-facing summary of a fitted population."""

    threshold_rtt: float
    tfetch: float
    fraction_fetch_bound: float
    recommendation: str


def advise_placement(metrics: Sequence[QueryMetrics], *,
                     fetch_bound_majority: float = 0.5) -> PlacementAdvice:
    """Summarise whether FE placement or the fetch time is the lever.

    The paper's conclusion, operationalised: if most measured clients
    are fetch-bound (Tdelta > 0), moving FEs closer cannot help them —
    optimize Tproc / the FE-BE path instead.
    """
    fitted = fit_model(metrics)
    fetch_bound = sum(1 for m in metrics if m.tdelta > 0.005)
    fraction = fetch_bound / len(metrics)
    if fraction >= fetch_bound_majority:
        recommendation = (
            "optimize the back end: %.0f%% of clients are fetch-bound; "
            "placing front-ends closer cannot improve their response "
            "times" % (fraction * 100))
    else:
        recommendation = (
            "optimize placement/last mile: %.0f%% of clients are "
            "delivery-bound; their RTT to the front-end dominates"
            % ((1 - fraction) * 100))
    return PlacementAdvice(
        threshold_rtt=fitted.placement_threshold(),
        tfetch=fitted.model.tfetch,
        fraction_fetch_bound=fraction,
        recommendation=recommendation)
