"""Open-loop session arrival processes.

The paper's campaigns are closed-loop (each vantage point waits out a
fixed interval); a population of real users is open-loop — sessions
start by a time-varying arrival process regardless of how earlier ones
fared.  Three processes cover the regimes the streaming runner cares
about:

* :class:`PoissonArrivals` — homogeneous rate, the baseline;
* :class:`DiurnalArrivals` — sinusoidal day/night modulation;
* :class:`FlashCrowdArrivals` — a rate spike over a burst window, the
  "flash crowd" a front-end provisioning story is judged by.

All three generate through *thinning* (Lewis & Shedler): candidate
gaps are exponential at the peak rate and each candidate is accepted
with probability ``rate(t) / peak``.  Every candidate consumes exactly
two draws from the supplied RNG (gap + acceptance), so the start-time
sequence is a pure function of the RNG seed — independent of consumer
timing, which is what lets every shard regenerate the identical
stream (see :mod:`repro.workload.generator`).
"""

from __future__ import annotations

import math
import random
from typing import Iterator

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "make_arrivals",
]

#: CLI-facing names of the available processes.
ARRIVAL_KINDS = ("poisson", "diurnal", "flash")


class ArrivalProcess:
    """Base class: a deterministic nonhomogeneous Poisson process."""

    #: Aggregate base rate over the whole user population.
    rate: float  # simlint: unit[1/s]

    def intensity(self, time: float) -> float:
        """Instantaneous arrival rate at ``time`` (sessions/second)."""
        raise NotImplementedError

    def peak(self) -> float:
        """A tight upper bound on :meth:`intensity` (thinning ceiling)."""
        raise NotImplementedError

    def times(self, rng: random.Random,
              duration: float) -> Iterator[float]:
        """Yield session start times in (0, duration), in order.

        Thinning at the peak rate: two RNG draws per candidate, always,
        so the emitted sequence depends only on the RNG state.
        """
        peak = self.peak()
        if peak <= 0.0:
            return
        time = 0.0  # simlint: unit[s]
        while True:
            time += rng.expovariate(peak)
            if time >= duration:
                return
            if rng.random() * peak < self.intensity(time):
                yield time


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a constant rate."""

    def __init__(self, rate: float):
        if rate < 0.0:
            raise ValueError("rate must be >= 0, got %r" % (rate,))
        self.rate = rate

    def intensity(self, time: float) -> float:
        return self.rate

    def peak(self) -> float:
        return self.rate


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night modulation around a base rate.

    ``intensity(t) = rate * (1 + amplitude * sin(2*pi*t / period))``;
    ``amplitude`` in [0, 1] keeps the rate non-negative.
    """

    def __init__(self, rate: float, amplitude: float = 0.5,
                 period: float = 86_400.0):  # simlint: unit[s]
        if rate < 0.0:
            raise ValueError("rate must be >= 0, got %r" % (rate,))
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1], got %r"
                             % (amplitude,))
        if period <= 0.0:
            raise ValueError("period must be > 0, got %r" % (period,))
        self.rate = rate
        self.amplitude = amplitude
        self.period = period

    def intensity(self, time: float) -> float:
        return self.rate * (1.0 + self.amplitude
                            * math.sin(2.0 * math.pi * time / self.period))

    def peak(self) -> float:
        return self.rate * (1.0 + self.amplitude)


class FlashCrowdArrivals(ArrivalProcess):
    """A flash crowd: baseline rate with a multiplied burst window."""

    def __init__(self, rate: float, at: float = 600.0,  # simlint: unit[s]
                 burst: float = 120.0,  # simlint: unit[s]
                 multiplier: float = 8.0):
        if rate < 0.0:
            raise ValueError("rate must be >= 0, got %r" % (rate,))
        if at < 0.0 or burst < 0.0:
            raise ValueError("burst window must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1, got %r"
                             % (multiplier,))
        self.rate = rate
        self.at = at
        self.burst = burst
        self.multiplier = multiplier

    def intensity(self, time: float) -> float:
        if self.at <= time < self.at + self.burst:
            return self.rate * self.multiplier
        return self.rate

    def peak(self) -> float:
        return self.rate * self.multiplier


def make_arrivals(kind: str, rate: float, *,
                  diurnal_amplitude: float = 0.5,
                  diurnal_period: float = 86_400.0,  # simlint: unit[s]
                  flash_at: float = 600.0,  # simlint: unit[s]
                  flash_duration: float = 120.0,  # simlint: unit[s]
                  flash_multiplier: float = 8.0) -> ArrivalProcess:
    """Build the arrival process a :class:`WorkloadSpec` names."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "diurnal":
        return DiurnalArrivals(rate, amplitude=diurnal_amplitude,
                               period=diurnal_period)
    if kind == "flash":
        return FlashCrowdArrivals(rate, at=flash_at,
                                  burst=flash_duration,
                                  multiplier=flash_multiplier)
    raise ValueError("arrivals must be one of %s, got %r"
                     % ("/".join(ARRIVAL_KINDS), kind))
