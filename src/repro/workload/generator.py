"""The lazy open-loop workload generator.

:class:`OpenLoopWorkload` turns a picklable :class:`WorkloadSpec` into
an ordered, *lazy* stream of :class:`QueryEvent`; nothing about the
stream is ever materialized, so a million-event workload costs the
same memory as a hundred-event one.

Determinism is the load-bearing property — a sharded campaign
(:func:`repro.parallel.run_streaming_sharded`) must see exactly the
serial stream — and rests on two seeded layers, both through
:func:`repro.sim.randomness.derive_seed`:

* **Session starts** come from one sequential arrival RNG
  (``workload/arrivals``).  Every shard replays this stream in full
  and filters to its own vantage points, so start times are identical
  by construction.
* **Session bodies** (user, service, query count, think times,
  keywords) come from a per-session RNG seeded by the session index
  (``workload/session/<n>``).  No session's draws depend on any other
  session's, so skipping or reordering sessions never perturbs the
  stream — the per-query analogue of
  :meth:`~repro.sim.randomness.RandomStreams.keyed`.

Users map onto vantage points by ``user % fleet_size``; all sessions
of a user therefore submit from one VP, which keeps per-VP query-id
counters (:class:`~repro.measure.emulator.QueryEmulator`) shard-local.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.content.keywords import Keyword
from repro.sim.randomness import derive_seed
from repro.workload.arrivals import ARRIVAL_KINDS, make_arrivals
from repro.workload.popularity import ZipfPopularity, zipf_universe

__all__ = ["OpenLoopWorkload", "QueryEvent", "WorkloadSpec"]


@dataclass(frozen=True)
class QueryEvent:
    """One query submission instant in an open-loop workload."""

    time: float  # simlint: unit[s]
    session_id: int
    query_index: int
    user: int
    vp_name: str
    service: str
    keyword: Keyword

    def sort_key(self) -> Tuple[float, int, int]:
        """Global stream order: time, then stable session/query ties."""
        return (self.time, self.session_id, self.query_index)


@dataclass(frozen=True)
class WorkloadSpec:
    """Picklable description of an open-loop workload.

    A spec plus a scenario config is everything a shard worker needs to
    regenerate the identical event stream; see the module docstring for
    the determinism contract.
    """

    seed: int = 0
    #: Size of the simulated user population.
    users: int = 10_000
    #: Campaign length in simulated seconds.
    duration: float = 3600.0  # simlint: unit[s]
    #: Arrival process kind (see :data:`~repro.workload.arrivals.ARRIVAL_KINDS`).
    arrivals: str = "poisson"
    #: Aggregate session-arrival rate of the whole population.
    session_rate: float = 1.0  # simlint: unit[1/s]
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 86_400.0  # simlint: unit[s]
    flash_at: float = 600.0  # simlint: unit[s]
    flash_duration: float = 120.0  # simlint: unit[s]
    flash_multiplier: float = 8.0
    #: Mean queries per session (geometric, >= 1) and its hard cap.
    queries_per_session: float = 3.0
    max_session_queries: int = 16
    #: Mean think time between a session's queries (exponential).
    think_time: float = 30.0  # simlint: unit[s]
    #: Zipf skew of keyword popularity and the ranked universe size.
    alpha: float = 1.0
    keyword_count: int = 256
    #: Services each session may target (one chosen per session).
    services: Tuple[str, ...] = ("google-like",)
    #: Global cap on emitted events (None = run out the duration).
    max_events: Optional[int] = None

    def __post_init__(self):
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.duration <= 0.0:
            raise ValueError("duration must be > 0")
        if self.arrivals not in ARRIVAL_KINDS:
            raise ValueError("arrivals must be one of %s, got %r"
                             % ("/".join(ARRIVAL_KINDS), self.arrivals))
        if self.session_rate < 0.0:
            raise ValueError("session_rate must be >= 0")
        if self.queries_per_session < 1.0:
            raise ValueError("queries_per_session must be >= 1")
        if self.max_session_queries < 1:
            raise ValueError("max_session_queries must be >= 1")
        if self.think_time <= 0.0:
            raise ValueError("think_time must be > 0")
        if not self.services:
            raise ValueError("need at least one service")
        if self.max_events is not None and self.max_events < 0:
            raise ValueError("max_events must be >= 0")


class OpenLoopWorkload:
    """Lazy, deterministic event stream for one workload spec.

    ``vp_names`` must be the scenario's *full* fleet in fleet order —
    the user-to-VP mapping is position-based, so every shard must pass
    the identical list (workers rebuild it from the scenario config).
    """

    def __init__(self, spec: WorkloadSpec, vp_names: Sequence[str]):
        if not vp_names:
            raise ValueError("need at least one vantage point name")
        self.spec = spec
        self.vp_names: Tuple[str, ...] = tuple(vp_names)
        self.popularity = ZipfPopularity(
            zipf_universe(spec.seed, spec.keyword_count), spec.alpha)
        self.process = make_arrivals(
            spec.arrivals, spec.session_rate,
            diurnal_amplitude=spec.diurnal_amplitude,
            diurnal_period=spec.diurnal_period,
            flash_at=spec.flash_at,
            flash_duration=spec.flash_duration,
            flash_multiplier=spec.flash_multiplier)

    @property
    def services(self) -> Tuple[str, ...]:
        return self.spec.services

    # ------------------------------------------------------------------
    def _expand_session(self, session_id: int,
                        start: float) -> List[QueryEvent]:
        """All query events of one session (bounded by the spec's cap).

        Every draw comes from the session's own seeded RNG, in a fixed
        order: user, service, query count, then per query think time
        and keyword.
        """
        spec = self.spec
        rng = random.Random(derive_seed(
            spec.seed, "workload/session/%d" % session_id))
        user = rng.randrange(spec.users)
        service = spec.services[rng.randrange(len(spec.services))]
        continue_p = 1.0 - 1.0 / spec.queries_per_session
        count = 1
        while count < spec.max_session_queries \
                and rng.random() < continue_p:
            count += 1
        vp_name = self.vp_names[user % len(self.vp_names)]
        events: List[QueryEvent] = []
        time = start
        for query_index in range(count):
            if query_index > 0:
                time = time + rng.expovariate(1.0 / spec.think_time)
                if time >= spec.duration:
                    break  # sessions truncate at the campaign horizon
            events.append(QueryEvent(
                time=time, session_id=session_id,
                query_index=query_index, user=user, vp_name=vp_name,
                service=service, keyword=self.popularity.sample(rng)))
        return events

    def events(self) -> Iterator[QueryEvent]:
        """The full event stream in global time order.

        Memory is O(active sessions): a min-heap holds only the queries
        of sessions whose start has been reached but whose think-time
        tail is still interleaving with newer sessions.
        """
        spec = self.spec
        arrival_rng = random.Random(derive_seed(spec.seed,
                                                "workload/arrivals"))
        starts = self.process.times(arrival_rng, spec.duration)
        heap: List[Tuple[float, int, int, QueryEvent]] = []
        emitted = 0
        session_id = 0
        next_start = next(starts, None)
        while heap or next_start is not None:
            if heap and (next_start is None
                         or heap[0][0] <= next_start):
                _, _, _, event = heapq.heappop(heap)
                yield event
                emitted += 1
                if spec.max_events is not None \
                        and emitted >= spec.max_events:
                    return
                continue
            for event in self._expand_session(session_id, next_start):
                heapq.heappush(heap, (event.time, event.session_id,
                                      event.query_index, event))
            session_id += 1
            next_start = next(starts, None)

    def events_for(self, vp_names) -> Iterator[QueryEvent]:
        """The stream filtered to a vantage-point subset.

        The global stream (and its ``max_events`` cap) is generated in
        full and filtered afterwards, so the union of the per-shard
        streams is exactly the serial stream.
        """
        names = frozenset(vp_names)
        for event in self.events():
            if event.vp_name in names:
                yield event
