"""``python -m repro workload`` — run open-loop streaming campaigns.

Examples::

    python -m repro workload --users 10000 --duration 600 --rate 2
    python -m repro workload --arrivals flash --alpha 1.2 --shards 4
    python -m repro workload --sweep-alpha 0.6,0.8,1.0,1.2
    python -m repro workload --events 5000 --trace-out run.jsonl
    python -m repro workload --trace-in run.jsonl
    python -m repro workload --shards 3 --verify-serial

The command builds a deterministic scenario
(``ScenarioConfig(keyed_service_draws=True,
deterministic_services=True)``), generates the workload lazily
(:mod:`repro.workload`), and folds it through the bounded-memory
streaming runner (:mod:`repro.measure.streaming`), printing aggregate
counters, replay hit rate, and sketch quantiles.  ``--verify-serial``
re-runs serially and fails unless the sharded fingerprint is
bit-identical.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cache import POLICIES, CacheHierarchySpec, CacheSpec
from repro.measure.streaming import (
    DEFAULT_BATCH_EVENTS,
    DEFAULT_LOOKAHEAD,
    StreamingCampaignResult,
    run_streaming_campaign,
)
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload.arrivals import ARRIVAL_KINDS
from repro.workload.generator import OpenLoopWorkload, WorkloadSpec
from repro.workload.trace import TraceWorkload, write_events

__all__ = ["main"]

_QUANTILES = (0.5, 0.9, 0.99)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro workload",
        description="Run an open-loop workload through the "
                    "bounded-memory streaming campaign runner.")
    parser.add_argument("--seed", type=int, default=1,
                        help="scenario AND workload seed (default: 1)")
    parser.add_argument("--vps", type=int, default=12, metavar="N",
                        help="vantage-point fleet size (default: 12)")
    parser.add_argument("--users", type=int, default=10_000,
                        help="simulated user population (default: 10000)")
    parser.add_argument("--duration", type=float, default=600.0,
                        metavar="SECONDS",
                        help="campaign length in simulated seconds "
                             "(default: 600)")
    parser.add_argument("--rate", type=float, default=1.0,
                        metavar="PER_SECOND",
                        help="aggregate session-arrival rate "
                             "(default: 1.0)")
    parser.add_argument("--arrivals", default="poisson",
                        choices=ARRIVAL_KINDS,
                        help="arrival process (default: poisson)")
    parser.add_argument("--alpha", type=float, default=1.0,
                        help="Zipf keyword-popularity skew "
                             "(default: 1.0)")
    parser.add_argument("--keywords", type=int, default=256,
                        metavar="N",
                        help="ranked keyword-universe size "
                             "(default: 256)")
    parser.add_argument("--events", type=int, default=None, metavar="N",
                        help="hard cap on generated query events "
                             "(default: run out the duration)")
    parser.add_argument("--services", default="google-like",
                        metavar="NAME[,NAME]",
                        help="comma-separated service names "
                             "(default: google-like)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="shard the fleet across N partitions "
                             "(default: 1, serial)")
    parser.add_argument("--processes", type=int, default=0, metavar="N",
                        help="worker processes for sharded runs "
                             "(default: 0 = one per shard, capped at "
                             "CPU count)")
    parser.add_argument("--tier", default=None,
                        choices=("analytic", "packet", "auto"),
                        help="execution tier (as on the main CLI)")
    parser.add_argument("--replay-cache", action="store_true",
                        help="force the session-replay cache on "
                             "(default: REPRO_REPLAY_CACHE)")
    parser.add_argument("--batch", type=int,
                        default=DEFAULT_BATCH_EVENTS, metavar="N",
                        help="events scheduled per simulator burst "
                             "(default: %d)" % DEFAULT_BATCH_EVENTS)
    parser.add_argument("--lookahead", type=float,
                        default=DEFAULT_LOOKAHEAD, metavar="SECONDS",
                        help="schedule visibility window (default: "
                             "%.0f)" % DEFAULT_LOOKAHEAD)
    parser.add_argument("--fe-cache", default="infinite",
                        metavar="POLICY[:BYTES]",
                        help="front-end static-content cache: "
                             "'infinite' (default, the paper's "
                             "always-hit black box) or "
                             "POLICY:CAPACITY_BYTES with POLICY one of "
                             "%s, e.g. lru:131072 (see docs/CACHING.md)"
                             % "/".join(p for p in POLICIES
                                        if p != "infinite"))
    parser.add_argument("--sweep-alpha", default=None,
                        metavar="A[,A...]",
                        help="run once per Zipf alpha (replay cache "
                             "forced on) and print the hit-rate table")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the generated event stream as a "
                             "JSONL trace instead of simulating")
    parser.add_argument("--trace-in", default=None, metavar="PATH",
                        help="replay a recorded JSONL trace (serial "
                             "only) instead of generating")
    parser.add_argument("--verify-serial", action="store_true",
                        help="after a sharded run, re-run serially and "
                             "fail unless fingerprints match")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="also write the aggregate result as JSON")
    return parser


def _spec_from_args(args, alpha: Optional[float] = None) -> WorkloadSpec:
    return WorkloadSpec(
        seed=args.seed, users=args.users, duration=args.duration,
        arrivals=args.arrivals, session_rate=args.rate,
        alpha=args.alpha if alpha is None else alpha,
        keyword_count=args.keywords,
        services=tuple(name.strip()
                       for name in args.services.split(",")
                       if name.strip()),
        max_events=args.events)


def _parse_fe_cache(text: str) -> CacheHierarchySpec:
    """``infinite`` or ``POLICY:CAPACITY_BYTES`` -> a hierarchy spec."""
    if text == "infinite":
        return CacheHierarchySpec()
    policy, sep, capacity = text.partition(":")
    if not sep:
        raise ValueError("finite --fe-cache needs a capacity: "
                         "use POLICY:CAPACITY_BYTES, e.g. lru:131072")
    return CacheHierarchySpec(
        static=CacheSpec(policy, capacity_bytes=int(capacity)))


def _scenario_from_args(args) -> Scenario:
    return Scenario(ScenarioConfig(
        seed=args.seed, vantage_count=args.vps,
        keyed_service_draws=True, deterministic_services=True,
        fe_cache=_parse_fe_cache(args.fe_cache)))


def _run(args, spec: WorkloadSpec,
         replay_cache=None) -> StreamingCampaignResult:
    replay = True if (args.replay_cache and replay_cache is None) \
        else replay_cache
    if args.shards > 1:
        from repro.parallel import run_streaming_sharded
        return run_streaming_sharded(
            _scenario_from_args(args), spec,
            shards=args.shards, processes=args.processes,
            batch_events=args.batch, lookahead=args.lookahead,
            tier=args.tier, replay_cache=replay)
    scenario = _scenario_from_args(args)
    workload = OpenLoopWorkload(
        spec, [vp.name for vp in scenario.vantage_points])
    return run_streaming_campaign(
        scenario, workload, batch_events=args.batch,
        lookahead=args.lookahead, tier=args.tier, replay_cache=replay)


def _summary_dict(result: StreamingCampaignResult) -> dict:
    summary = {
        "events": result.events,
        "sessions": result.sessions,
        "failures": result.failures,
        "truncated": result.truncated,
        "shards": result.shards,
        "fingerprint": result.fingerprint(),
        "sketches": {},
    }
    if result.replay is not None:
        summary["replay"] = {"hits": result.replay.hits,
                             "misses": result.replay.misses,
                             "hit_rate": result.hit_rate()}
    if result.tier is not None:
        summary["tier"] = {"analytic": result.tier.analytic,
                           "simulated": result.tier.simulated}
    if result.content_cache is not None:
        summary["content_cache"] = {
            "counters": dict(result.content_cache),
            "hit_rate": result.content_hit_rate(),
        }
    for name in sorted(result.sketches):
        sketch = result.sketches[name]
        summary["sketches"][name] = {
            "count": sketch.count,
            "mean": sketch.mean,
            "quantiles": {("p%g" % (q * 100)): sketch.quantile(q)
                          for q in _QUANTILES},
        }
    return summary


def _print_result(result: StreamingCampaignResult) -> None:
    print("events    %d" % result.events)
    print("sessions  %d  (failures %d, truncated %d)"
          % (result.sessions, result.failures, result.truncated))
    if result.shards > 1:
        print("shards    %d" % result.shards)
    if result.replay is not None:
        print("replay    hits %d  misses %d  hit-rate %.3f"
              % (result.replay.hits, result.replay.misses,
                 result.hit_rate() or 0.0))
    if result.tier is not None:
        print("tier      analytic %d  simulated %d"
              % (result.tier.analytic, result.tier.simulated))
    if result.content_cache is not None:
        cache = result.content_cache
        print("fe-cache  hits %d  misses %d  evictions %d  "
              "origin-fetches %d  hit-rate %.3f"
              % (cache.get("fe_hits", 0), cache.get("fe_misses", 0),
                 cache.get("fe_evictions", 0),
                 cache.get("origin_fetches", 0),
                 result.content_hit_rate() or 0.0))
    for name in sorted(result.sketches):
        sketch = result.sketches[name]
        unit = "s" if name.startswith("duration/") else "B"
        print("%-24s %s"
              % (name, "  ".join(
                  "p%g=%.4g%s" % (q * 100, sketch.quantile(q), unit)
                  for q in _QUANTILES)))
    print("fingerprint %s" % result.fingerprint())


def _sweep_alpha(args, alphas: List[float]) -> int:
    print("alpha sweep (replay cache on): %s"
          % ", ".join("%g" % a for a in alphas))
    print("%-8s %-10s %-10s %-10s %-10s"
          % ("alpha", "events", "hits", "hit-rate", "fe-cache"))
    rates = []
    for alpha in alphas:
        result = _run(args, _spec_from_args(args, alpha=alpha),
                      replay_cache=True)
        # With a finite --fe-cache the content hit rate is the figure
        # of merit; the default black box falls back to replay hits.
        content = result.content_hit_rate()
        rate = result.hit_rate() or 0.0
        rates.append(content if content is not None else rate)
        print("%-8g %-10d %-10d %-10.3f %-10s"
              % (alpha, result.events,
                 result.replay.hits if result.replay else 0, rate,
                 "%.3f" % content if content is not None else "-"))
    if rates == sorted(rates):
        print("hit-rate rises monotonically with alpha")
    else:
        print("warning: hit-rate is not monotone over this sweep")
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.trace_in and args.trace_out:
        print("--trace-in and --trace-out are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.trace_in and args.shards > 1:
        print("traces replay serially; drop --shards or regenerate "
              "from a spec", file=sys.stderr)
        return 2

    if args.sweep_alpha:
        alphas = [float(part) for part in args.sweep_alpha.split(",")
                  if part.strip()]
        return _sweep_alpha(args, alphas)

    if args.trace_out:
        scenario = _scenario_from_args(args)
        workload = OpenLoopWorkload(
            _spec_from_args(args),
            [vp.name for vp in scenario.vantage_points])
        count = write_events(args.trace_out, workload.events())
        print("wrote %d events to %s" % (count, args.trace_out))
        return 0

    if args.trace_in:
        scenario = _scenario_from_args(args)
        result = run_streaming_campaign(
            scenario, TraceWorkload(args.trace_in),
            batch_events=args.batch, lookahead=args.lookahead,
            tier=args.tier,
            replay_cache=True if args.replay_cache else None)
    else:
        result = _run(args, _spec_from_args(args))
    _print_result(result)

    exit_code = 0
    if args.verify_serial and args.shards > 1:
        serial_args = argparse.Namespace(**vars(args))
        serial_args.shards = 1
        serial = _run(serial_args, _spec_from_args(args))
        if serial.fingerprint() == result.fingerprint():
            print("verify-serial: fingerprints match")
        else:
            print("verify-serial: MISMATCH (serial %s != sharded %s)"
                  % (serial.fingerprint(), result.fingerprint()),
                  file=sys.stderr)
            exit_code = 1

    if args.summary:
        with open(args.summary, "w") as handle:
            json.dump(_summary_dict(result), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("summary written to %s" % args.summary)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
