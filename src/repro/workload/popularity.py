"""Zipf keyword popularity over the content keyword universe.

Garetto et al. (PAPERS.md) motivate Zipf-skewed request streams as the
interesting regime for caches of dynamic content: a small head of hot
keys absorbs most requests.  :class:`ZipfPopularity` ranks a keyword
universe and samples rank ``r`` with probability proportional to
``1 / r**alpha``; higher ``alpha`` concentrates the stream onto the
head, which is exactly where the session-replay cache
(:mod:`repro.sim.replay`) earns hits — a repeated (VP, FE, keyword)
submission shares one recorded timeline.

Sampling is inverse-CDF over a precomputed cumulative table, one
``rng.random()`` draw per sample, so a per-session keyed RNG makes the
draw order-independent across shards (see :mod:`repro.workload.generator`).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import List, Sequence

from repro.content.keywords import Keyword, KeywordCatalog

__all__ = ["ZipfPopularity", "zipf_universe"]


def zipf_universe(seed: int, count: int) -> List[Keyword]:
    """The deterministic keyword universe a workload ranks.

    Drawn from the catalog's bulk pool and ordered by descending
    intrinsic popularity (ties broken by text), so Zipf rank 1 is the
    genuinely hottest keyword — hot keywords also get the back-end
    popularity discount, like real trending queries.
    """
    if count < 1:
        raise ValueError("keyword universe needs count >= 1, got %r"
                         % (count,))
    pool = KeywordCatalog(seed).bulk_pool(count)
    return sorted(pool, key=lambda kw: (-kw.popularity, kw.text))


class ZipfPopularity:
    """Rank-``alpha`` Zipf sampler over a fixed keyword sequence."""

    def __init__(self, keywords: Sequence[Keyword], alpha: float):
        if not keywords:
            raise ValueError("need at least one keyword")
        if alpha < 0.0:
            raise ValueError("alpha must be >= 0, got %r" % (alpha,))
        self.keywords: List[Keyword] = list(keywords)
        self.alpha = alpha
        self._cumulative: List[float] = []
        running = 0.0
        for rank in range(1, len(self.keywords) + 1):
            running += rank ** -alpha
            self._cumulative.append(running)
        self._total = running

    def probability(self, rank: int) -> float:
        """P(sample == keyword at 1-based ``rank``)."""
        if not 1 <= rank <= len(self.keywords):
            raise ValueError("rank out of range: %r" % (rank,))
        return (rank ** -self.alpha) / self._total

    def sample(self, rng: random.Random) -> Keyword:
        """Draw one keyword; consumes exactly one ``rng.random()``."""
        point = rng.random() * self._total
        index = bisect_right(self._cumulative, point)
        if index >= len(self.keywords):  # point == total edge case
            index = len(self.keywords) - 1
        return self.keywords[index]

    def __len__(self) -> int:
        return len(self.keywords)
