"""JSONL workload traces: record a generated stream, replay it later.

One JSON object per line, schema ``v1``::

    {"v": 1, "time": 12.25, "session": 3, "query": 0, "user": 1881,
     "vp": "vp-007", "service": "google-like",
     "keyword": {"text": "...", "popularity": 0.91, "complexity": 0.4,
                 "granularity": 1, "suggested": true}}

Floats serialize through :func:`repr` (Python's ``json``), which
round-trips every IEEE double exactly — a replayed trace submits at
bit-identical times.  Reading is lazy (line by line), so replaying a
trace preserves the streaming runner's bounded-memory property.

:class:`TraceWorkload` adapts a trace file to the workload interface
the streaming runner consumes (``events()`` / ``events_for()``).
Traces replay serially; sharded runs regenerate from a
:class:`~repro.workload.generator.WorkloadSpec` instead, which is
cheaper than shipping a file to every worker and equally deterministic.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Tuple

from repro.content.keywords import Keyword
from repro.workload.generator import QueryEvent

__all__ = ["TraceFormatError", "TraceWorkload", "read_events",
           "write_events"]

_VERSION = 1


class TraceFormatError(ValueError):
    """A workload trace line failed to parse or validate."""


def _event_record(event: QueryEvent) -> dict:
    keyword = event.keyword
    return {"v": _VERSION, "time": event.time,
            "session": event.session_id, "query": event.query_index,
            "user": event.user, "vp": event.vp_name,
            "service": event.service,
            "keyword": {"text": keyword.text,
                        "popularity": keyword.popularity,
                        "complexity": keyword.complexity,
                        "granularity": keyword.granularity,
                        "suggested": keyword.suggested}}


def _event_from_record(record: dict, line_number: int) -> QueryEvent:
    try:
        if record.get("v") != _VERSION:
            raise TraceFormatError(
                "line %d: unsupported trace version %r"
                % (line_number, record.get("v")))
        keyword = record["keyword"]
        return QueryEvent(
            time=float(record["time"]),
            session_id=int(record["session"]),
            query_index=int(record["query"]),
            user=int(record["user"]),
            vp_name=record["vp"],
            service=record["service"],
            keyword=Keyword(text=keyword["text"],
                            popularity=float(keyword["popularity"]),
                            complexity=float(keyword["complexity"]),
                            granularity=int(keyword["granularity"]),
                            suggested=bool(keyword["suggested"])))
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, TraceFormatError):
            raise
        raise TraceFormatError("line %d: malformed trace record (%s)"
                               % (line_number, error)) from error


def write_events(path: str, events: Iterable[QueryEvent]) -> int:
    """Stream ``events`` to ``path`` as JSONL; returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(_event_record(event),
                                    sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_events(path: str) -> Iterator[QueryEvent]:
    """Lazily yield the events of a JSONL trace, in file order."""
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    "line %d: invalid JSON (%s)"
                    % (line_number, error)) from error
            yield _event_from_record(record, line_number)


class TraceWorkload:
    """A recorded trace presented through the workload interface."""

    def __init__(self, path: str, services: Tuple[str, ...] = ()):
        self.path = path
        self._services = tuple(services)

    @property
    def services(self) -> Tuple[str, ...]:
        """Service names the trace touches (scanned once if not given)."""
        if not self._services:
            seen = []
            for event in read_events(self.path):
                if event.service not in seen:
                    seen.append(event.service)
            self._services = tuple(seen)
        return self._services

    def events(self) -> Iterator[QueryEvent]:
        return read_events(self.path)

    def events_for(self, vp_names) -> Iterator[QueryEvent]:
        names = frozenset(vp_names)
        for event in self.events():
            if event.vp_name in names:
                yield event
