"""Open-loop workload generation: the million-user side of the study.

The paper measures with a few hundred closed-loop vantage points; the
ROADMAP north star is front-ends serving "heavy traffic from millions
of users".  This package supplies that traffic as *lazy, deterministic*
event streams:

* :class:`~repro.workload.generator.WorkloadSpec` /
  :class:`~repro.workload.generator.OpenLoopWorkload` — the generator:
  Zipf keyword popularity over the content universe, Poisson / diurnal
  / flash-crowd session arrivals, per-user session models (think time,
  queries per session);
* :mod:`repro.workload.trace` — JSONL record/replay of any stream.

Every draw is seeded through :func:`repro.sim.randomness.derive_seed`,
so serial and sharded runs generate bit-identical streams; the
streaming campaign runner (:mod:`repro.measure.streaming`) consumes
them in bounded memory.
"""

from repro.workload.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workload.generator import (
    OpenLoopWorkload,
    QueryEvent,
    WorkloadSpec,
)
from repro.workload.popularity import ZipfPopularity, zipf_universe
from repro.workload.trace import (
    TraceFormatError,
    TraceWorkload,
    read_events,
    write_events,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "OpenLoopWorkload",
    "PoissonArrivals",
    "QueryEvent",
    "TraceFormatError",
    "TraceWorkload",
    "WorkloadSpec",
    "ZipfPopularity",
    "make_arrivals",
    "read_events",
    "write_events",
    "zipf_universe",
]
