"""Unit-safety rule pack (UNIT001-UNIT004).

The tree-wide convention (see ``src/repro/sim/units.py``): simulator
time is **seconds**; milliseconds, microseconds, miles, bytes, and bit
rates appear in names via suffixes (``rtt_ms``, ``distance_miles``,
``size_bytes``, ``bandwidth_bps``).  These rules catch a suffixed value
crossing into a differently-suffixed slot without going through a
:mod:`repro.sim.units` conversion helper.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from repro.lint.framework import Rule, register

#: Recognised suffixes, longest first so ``_bytes_per_s`` wins over ``_s``.
#: Each maps to a (dimension, unit) pair.
SUFFIX_UNITS: Tuple[Tuple[str, Tuple[str, str]], ...] = (
    ("_bytes_per_s", ("rate", "bytes_per_s")),
    ("_miles_per_s", ("speed", "miles_per_s")),
    ("_per_s", ("rate", "per_s")),
    ("_seconds", ("time", "s")),
    ("_secs", ("time", "s")),
    ("_sec", ("time", "s")),
    ("_ns", ("time", "ns")),
    ("_us", ("time", "us")),
    ("_ms", ("time", "ms")),
    ("_s", ("time", "s")),
    ("_miles", ("distance", "miles")),
    ("_km", ("distance", "km")),
    ("_bytes", ("size", "bytes")),
    ("_kb", ("size", "kb")),
    ("_mb", ("size", "mb")),
    ("_gbps", ("rate", "gbps")),
    ("_mbps", ("rate", "mbps")),
    ("_kbps", ("rate", "kbps")),
    ("_bps", ("rate", "bps")),
)

#: Return units of the repro.sim.units conversion helpers, keyed by the
#: final two segments of the resolved qualified name.
CONVERSION_RETURNS: Dict[str, Tuple[str, str]] = {
    "units.ms": ("time", "s"),
    "units.us": ("time", "s"),
    "units.seconds_to_ms": ("time", "ms"),
    "units.kbps": ("rate", "bytes_per_s"),
    "units.mbps": ("rate", "bytes_per_s"),
    "units.gbps": ("rate", "bytes_per_s"),
    "units.propagation_delay": ("time", "s"),
    "units.transmission_delay": ("time", "s"),
}

#: Parameter units of the conversion helpers (positional, by index).
CONVERSION_PARAMS: Dict[str, Tuple[Optional[Tuple[str, str]], ...]] = {
    "units.ms": ((("time", "ms")),),
    "units.us": ((("time", "us")),),
    "units.seconds_to_ms": ((("time", "s")),),
    "units.kbps": ((("rate", "kbps")),),
    "units.mbps": ((("rate", "mbps")),),
    "units.gbps": ((("rate", "gbps")),),
    "units.propagation_delay": (("distance", "miles"), None),
    "units.transmission_delay": (("size", "bytes"), ("rate", "bytes_per_s")),
}

#: Simulator scheduling entry points take seconds in their first slot.
SCHEDULE_PARAM_UNITS: Dict[str, Tuple[str, str]] = {
    "schedule": ("time", "s"),
    "call_at": ("time", "s"),
}

#: Tokens accepted inside ``# simlint: unit[TOKEN]`` annotations (the
#: suffix vocabulary without the leading underscore, plus explicit
#: dimensionless).  Consumed by :mod:`repro.lint.simtype` as inference
#: seeds.
ANNOTATION_UNITS: Dict[str, Tuple[str, str]] = dict(
    [(suffix.lstrip("_"), unit) for suffix, unit in SUFFIX_UNITS]
    + [("dimensionless", ("dimensionless", "1")),
       ("1", ("dimensionless", "1"))])


def unit_of_name(name: str) -> Optional[Tuple[str, str]]:
    """Map an identifier to its (dimension, unit), or None if unsuffixed.

    Case-insensitive, so literal-carrying module constants
    (``SPEED_OF_LIGHT_MILES_PER_S``) seed the same units as locals.
    """
    lowered = name.lower()
    for suffix, unit in SUFFIX_UNITS:
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return unit
    return None


def describe(unit: Tuple[str, str]) -> str:
    return "%s [%s]" % (unit[1], unit[0])


def mismatch_kind(left: Tuple[str, str], right: Tuple[str, str]) -> str:
    if left[0] == right[0]:
        return "same dimension, different scale"
    return "different dimensions"


class _UnitRule(Rule):
    """Shared expression-unit inference for the UNIT rules."""

    def expr_unit(self, node: ast.expr) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Name):
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Call):
            return self.conversion_return(node)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            left = self.expr_unit(node.left)
            if left is not None and left == self.expr_unit(node.right):
                return left
        return None

    def conversion_qual(self, node: ast.Call) -> Optional[str]:
        # `from repro.sim import units; units.ms(...)` and
        # `from repro.sim.units import ms; ms(...)` both resolve (through
        # the import table) to repro.sim.units.ms — match on the tail.
        qual = self.ctx.qualname(node.func)
        if not qual:
            return None
        tail = ".".join(qual.split(".")[-2:])
        return tail if tail in CONVERSION_RETURNS else None

    def conversion_return(self, node: ast.Call
                          ) -> Optional[Tuple[str, str]]:
        tail = self.conversion_qual(node)
        return CONVERSION_RETURNS[tail] if tail else None


@register
class ArgumentUnitRule(_UnitRule):
    id = "UNIT001"
    name = "argument-unit"
    severity = "error"
    description = ("A suffixed value is passed where a parameter with an "
                   "incompatible unit suffix is expected.")

    def begin_file(self) -> None:
        # Positional checking needs callee signatures; collect every
        # function/method defined in this file, keyed by bare name.
        self._signatures: Dict[str, Tuple[str, ...]] = {}
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = tuple(arg.arg for arg in node.args.args)
                if params and params[0] in ("self", "cls"):
                    params = params[1:]
                if node.name in self._signatures and \
                        self._signatures[node.name] != params:
                    self._signatures[node.name] = ()  # ambiguous overloads
                else:
                    self._signatures[node.name] = params

    def visit_Call(self, node: ast.Call) -> None:
        self._check_keywords(node)
        self._check_positionals(node)

    def _check_keywords(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            expected = unit_of_name(keyword.arg)
            actual = self.expr_unit(keyword.value)
            if expected and actual and expected != actual:
                self.report(keyword.value,
                            "argument %r expects %s but receives %s (%s); "
                            "convert via repro.sim.units first"
                            % (keyword.arg, describe(expected),
                               describe(actual),
                               mismatch_kind(expected, actual)))

    def _check_positionals(self, node: ast.Call) -> None:
        expected_units = self._positional_units(node)
        if not expected_units:
            return
        for index, arg in enumerate(node.args):
            if index >= len(expected_units):
                break
            expected = expected_units[index]
            actual = self.expr_unit(arg)
            if expected and actual and expected != actual:
                self.report(arg,
                            "positional argument %d of %s expects %s but "
                            "receives %s (%s); convert via repro.sim.units "
                            "first" % (index + 1, self._callee_label(node),
                                       describe(expected), describe(actual),
                                       mismatch_kind(expected, actual)))

    def _positional_units(self, node: ast.Call):
        func = node.func
        # Simulator scheduling: first slot is seconds, whatever the receiver.
        if isinstance(func, ast.Attribute) and func.attr in \
                SCHEDULE_PARAM_UNITS:
            return (SCHEDULE_PARAM_UNITS[func.attr],)
        # Known units.* conversion helpers.
        tail = self.conversion_qual(node)
        if tail:
            return CONVERSION_PARAMS[tail]
        # Functions defined in this file: derive units from parameter names.
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name) and func.value.id in ("self", "cls"):
            name = func.attr
        if name and name in self._signatures:
            return tuple(unit_of_name(param)
                         for param in self._signatures[name])
        return None

    def _callee_label(self, node: ast.Call) -> str:
        return self.ctx.qualname(node.func) or "<call>"


@register
class ArithmeticUnitRule(_UnitRule):
    id = "UNIT002"
    name = "arithmetic-unit"
    severity = "error"
    description = ("Addition, subtraction, or comparison mixes values with "
                   "incompatible unit suffixes.")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left = self.expr_unit(node.left)
        right = self.expr_unit(node.right)
        if left and right and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self.report(node, "%s mixes %s with %s (%s); convert via "
                              "repro.sim.units before combining"
                        % (op, describe(left), describe(right),
                           mismatch_kind(left, right)))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for first, op, second in zip(operands, node.ops, operands[1:]):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left = self.expr_unit(first)
            right = self.expr_unit(second)
            if left and right and left != right:
                self.report(node, "comparison mixes %s with %s (%s); "
                                  "convert via repro.sim.units first"
                            % (describe(left), describe(right),
                               mismatch_kind(left, right)))


@register
class AssignmentUnitRule(_UnitRule):
    id = "UNIT003"
    name = "assignment-unit"
    severity = "error"
    description = ("A value with one unit suffix is stored under a name "
                   "with an incompatible suffix.")

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            return  # conversion results are UNIT004's business
        value_unit = self.expr_unit(node.value)
        if not value_unit:
            return
        for target in node.targets:
            self._check_target(target, value_unit)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        value_unit = self.expr_unit(node.value)
        if value_unit:
            self._check_target(node.target, value_unit)

    def _check_target(self, target: ast.expr,
                      value_unit: Tuple[str, str]) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if not name:
            return
        target_unit = unit_of_name(name)
        if target_unit and target_unit != value_unit:
            self.report(target, "%r is declared %s but receives %s (%s); "
                                "rename it or convert via repro.sim.units"
                        % (name, describe(target_unit), describe(value_unit),
                           mismatch_kind(target_unit, value_unit)))


@register
class ConversionResultRule(_UnitRule):
    id = "UNIT004"
    name = "conversion-result"
    severity = "error"
    description = ("The result of a units conversion helper is stored under "
                   "a suffix contradicting its return unit (e.g. "
                   "``x_ms = units.ms(...)``, which returns seconds).")

    def visit_Assign(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        tail = self.conversion_qual(node.value)
        if not tail:
            return
        returned = CONVERSION_RETURNS[tail]
        for target in node.targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if not name:
                continue
            target_unit = unit_of_name(name)
            if target_unit and target_unit != returned:
                self.report(target, "%s(...) returns %s but the result is "
                                    "stored in %r, suffixed %s; pick the "
                                    "name to match the returned unit"
                            % (tail, describe(returned), name,
                               describe(target_unit)))
