"""SARIF 2.1.0 output for simlint.

SARIF (Static Analysis Results Interchange Format) is what code
hosting UIs ingest to annotate diffs with findings.  One lint run maps
to one ``run`` object: the tool section carries the full rule
catalogue (index-linked from each result), every finding becomes a
``result`` with a physical location, and suppressed or baselined
findings are emitted with a ``suppressions`` entry rather than dropped
— SARIF consumers hide them by default but keep the audit trail.

Only constructs from the 2.1.0 schema are used; columns are converted
from simlint's 0-based to SARIF's 1-based convention.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.lint.framework import Finding

__all__ = ["sarif_report"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def sarif_report(findings: List[Finding], rules: Dict[str, type],
                 tool_version: str) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 log dict for one lint run."""
    rule_ids = sorted(rules)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    descriptors = []
    for rule_id in rule_ids:
        rule = rules[rule_id]
        descriptors.append({
            "id": rule_id,
            "name": getattr(rule, "name", rule_id),
            "shortDescription": {
                "text": getattr(rule, "description", "") or rule_id,
            },
            "defaultConfiguration": {
                "level": _LEVELS.get(getattr(rule, "severity", "error"),
                                     "error"),
            },
        })
    results = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        "endLine": finding.end_line,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        suppressions = []
        if finding.suppressed:
            suppressions.append({
                "kind": "inSource",
                "justification": "simlint: ignore comment",
            })
        if getattr(finding, "baselined", False):
            suppressions.append({
                "kind": "external",
                "justification": "accepted in baseline file",
            })
        if suppressions:
            result["suppressions"] = suppressions
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "version": tool_version,
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }
