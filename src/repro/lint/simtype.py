"""simtype — interprocedural (dimension, unit) inference for simlint.

The suffix rules (UNIT001-UNIT004) only see values whose *names* carry
a unit.  An unsuffixed local, a helper return value, or a dict field
laundered through one function call drops out of checking entirely —
exactly where a silent ms<->s or bytes<->bps slip corrupts every
landmark (tb, t1-t5, Tfetch, Tproc) downstream.  This module closes
that gap with a small abstract interpretation over the unit-expression
summaries that :mod:`repro.lint.project` extracts per module:

* **Lattice.**  An abstract value is ``None`` (unknown, the bottom), a
  concrete ``(dimension, unit)`` pair (``("time", "ms")``), a parameter
  placeholder (inside the symbolic pass), or :data:`CONFLICT` (the
  top).  :func:`join` merges branch values: any two *distinct* known
  values join to CONFLICT, which downstream checks treat as "no
  information" — the analysis never reports a mix it merely suspects.
* **Seeds.**  Suffixed identifiers (``rtt_ms``), the
  :mod:`repro.sim.units` conversion helpers (whose argument and return
  units are tabulated in :mod:`repro.lint.unit_safety`), and explicit
  ``# simlint: unit[TOKEN]`` annotations on assignments (the annotated
  line's targets take the declared unit, trusted over inference — the
  escape hatch) or on ``def`` lines (declares the return unit).
* **Algebra.**  ``ms + ms = ms``; ``ms + s`` is a *mix* diagnostic;
  ``bytes / s = bytes_per_s``; ``bytes / bytes_per_s = s``;
  ``x * dimensionless = x``; ``x / x = dimensionless``; anything the
  tables don't cover evaluates to unknown rather than guessing.
* **Interprocedural propagation.**  A bottom-up fixpoint computes each
  function's return unit (parameter-polymorphic: ``return x`` yields a
  placeholder instantiated per call site) and its *demands* — units a
  parameter must have for the body to type (``delay + grace_s`` demands
  seconds of ``delay``).  A top-down fixpoint then pushes concrete
  argument units into callee parameters, so a mix inside a helper whose
  arguments are only ever milliseconds is caught with no suffix in
  sight.  The resulting per-function signature table is persisted in
  the incremental cache (see :mod:`repro.lint.cache`) and used to seed
  the fixpoint on warm runs.

The rule pack consuming this engine lives in
:mod:`repro.lint.unit_flow` (UNIT005-UNIT009).  Everything here is
pure computation over facts — no ASTs are re-walked, so the analysis
composes with the incremental facts cache exactly like the taint
engine in :mod:`repro.lint.dataflow`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.project import (
    CallFacts,
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
    SCHEDULE_ATTRS,
)
from repro.lint.unit_safety import (
    ANNOTATION_UNITS,
    CONVERSION_PARAMS,
    CONVERSION_RETURNS,
    unit_of_name,
)

__all__ = [
    "CONFLICT",
    "DIMENSIONLESS",
    "SCALE_CONVERSIONS",
    "UnitAnalysis",
    "add_units",
    "describe_unit",
    "div_units",
    "is_concrete",
    "join",
    "mul_units",
    "syntactic_unit",
]

#: Explicitly unit-free (a ratio, a count scaled by a count).
DIMENSIONLESS = ("dimensionless", "1")

#: Top of the lattice: two distinct known units met on a join point.
CONFLICT = ("<conflict>", "<conflict>")

#: Tag for parameter placeholders used during the symbolic pass.
_PARAM = "<param>"

#: Conversion helpers that are *pure scale changes* (ms<->s, kbps->Bps
#: ...); feeding one's result straight into another is the
#: double-conversion pattern UNIT009 flags.  ``propagation_delay`` and
#: ``transmission_delay`` compute, rather than rescale, so composing
#: them with a scale conversion is legitimate.
SCALE_CONVERSIONS = frozenset((
    "units.ms", "units.us", "units.seconds_to_ms",
    "units.kbps", "units.mbps", "units.gbps",
))

#: ``min(a, b)`` and friends return one of their arguments unchanged.
_PASSTHROUGH_BUILTINS = frozenset(("min", "max", "abs", "round",
                                   "float", "sorted"))


def _param(name: str) -> tuple:
    return (_PARAM, name)


def _is_param(value: Optional[tuple]) -> bool:
    return value is not None and value[0] == _PARAM


def is_concrete(value: Optional[tuple]) -> bool:
    """True for a usable (dimension, unit) pair — not unknown, not a
    placeholder, not CONFLICT."""
    return (value is not None and value != CONFLICT
            and value[0] != _PARAM)


def describe_unit(value: Optional[tuple]) -> str:
    if value is None:
        return "unknown"
    if value == CONFLICT:
        return "conflicting units"
    if _is_param(value):
        return "unit of parameter %r" % value[1]
    return "%s [%s]" % (value[1], value[0])


# ---------------------------------------------------------------------------
# lattice + algebra
# ---------------------------------------------------------------------------
def join(a: Optional[tuple], b: Optional[tuple]) -> Optional[tuple]:
    """Least upper bound: unknown below everything, CONFLICT on top,
    all known values (concrete units and placeholders) incomparable.

    Commutative, associative, idempotent — property-tested in
    tests/test_lint_units.py; the fixpoints rely on monotonicity.
    """
    if a is None:
        return b
    if b is None or a == b:
        return a
    return CONFLICT


def add_units(a: Optional[tuple], b: Optional[tuple]
              ) -> Tuple[Optional[tuple], bool]:
    """Abstract ``+``/``-``: ``(result, mixed)``.

    ``mixed`` is True only when both operands are concrete and
    disagree — the UNIT005 condition.  With one side unknown the
    result optimistically takes the known side, which is what lets a
    unit propagate through ``total = total + step``.
    """
    if is_concrete(a) and is_concrete(b):
        return (a, False) if a == b else (CONFLICT, True)
    if is_concrete(a):
        return a, False
    if is_concrete(b):
        return b, False
    return None, False


#: (dimension, unit) x (dimension, unit) -> product unit.
_MUL_TABLE = {
    (("rate", "bytes_per_s"), ("time", "s")): ("size", "bytes"),
    (("speed", "miles_per_s"), ("time", "s")): ("distance", "miles"),
    (("rate", "per_s"), ("time", "s")): DIMENSIONLESS,
}

#: numerator x denominator -> quotient unit.
_DIV_TABLE = {
    (("size", "bytes"), ("time", "s")): ("rate", "bytes_per_s"),
    (("distance", "miles"), ("time", "s")): ("speed", "miles_per_s"),
    (("size", "bytes"), ("rate", "bytes_per_s")): ("time", "s"),
    (("distance", "miles"), ("speed", "miles_per_s")): ("time", "s"),
    (DIMENSIONLESS, ("time", "s")): ("rate", "per_s"),
}


def mul_units(a: Optional[tuple], b: Optional[tuple]) -> Optional[tuple]:
    """Abstract ``*``: dimensionless is the identity, the product table
    covers the simulator's rate/time/size triangle, everything else is
    unknown (never a guess)."""
    if not is_concrete(a) or not is_concrete(b):
        return None
    if a == DIMENSIONLESS:
        return b
    if b == DIMENSIONLESS:
        return a
    return _MUL_TABLE.get((a, b)) or _MUL_TABLE.get((b, a))


def div_units(a: Optional[tuple], b: Optional[tuple]) -> Optional[tuple]:
    """Abstract ``/``: ``x / x`` is dimensionless, ``x / 1`` is ``x``,
    plus the quotient table."""
    if not is_concrete(a) or not is_concrete(b):
        return None
    if a == b:
        return DIMENSIONLESS
    if b == DIMENSIONLESS:
        return a
    return _DIV_TABLE.get((a, b))


# ---------------------------------------------------------------------------
# syntactic visibility (overlap guard against UNIT001-UNIT004)
# ---------------------------------------------------------------------------
def conversion_tail(call: CallFacts) -> Optional[str]:
    """``units.ms``-style tail when the call resolves to a conversion
    helper (mirrors ``_UnitRule.conversion_qual``)."""
    if not call.target:
        return None
    tail = ".".join(call.target.split(".")[-2:])
    return tail if tail in CONVERSION_RETURNS else None


def syntactic_unit(uexpr: Sequence, fn: FunctionFacts) -> Optional[tuple]:
    """The unit the *per-file* suffix rules already see for this
    expression, or None.

    Mirrors ``_UnitRule.expr_unit``: suffixed names/attributes,
    conversion-helper results, and +/- trees of equal such units.  The
    flow rules skip any mix that is syntactically visible on both
    sides — those are UNIT001-UNIT004's findings, not duplicates.
    """
    kind = uexpr[0]
    if kind in ("n", "a"):
        return unit_of_name(uexpr[1])
    if kind == "c":
        call = fn.calls[uexpr[1]]
        tail = conversion_tail(call)
        return CONVERSION_RETURNS[tail] if tail else None
    if kind in ("+", "-"):
        left = syntactic_unit(uexpr[1], fn)
        if left is not None and left == syntactic_unit(uexpr[2], fn):
            return left
    return None


# ---------------------------------------------------------------------------
# per-function result detail
# ---------------------------------------------------------------------------
class FunctionUnits:
    """Concrete unit facts for one function, index-aligned with its
    :class:`~repro.lint.project.FunctionFacts` lists."""

    __slots__ = ("call_args", "call_out", "mixes", "returns",
                 "conv_origin")

    def __init__(self, n_calls: int):
        #: per call: {arg slot -> unit} (slot is int or kwarg name)
        self.call_args: List[Dict[object, Optional[tuple]]] = [
            {} for _ in range(n_calls)]
        #: per call: inferred unit of the call's result
        self.call_out: List[Optional[tuple]] = [None] * n_calls
        #: (line, col, op, left unit, right unit, both_syntactic)
        self.mixes: List[tuple] = []
        #: (line, unit) per return statement
        self.returns: List[Tuple[int, Optional[tuple]]] = []
        #: local/attr name -> conversion tail it was assigned from
        #: (drives UNIT009's one-hop double-conversion detection)
        self.conv_origin: Dict[str, str] = {}


class UnitAnalysis:
    """Project-wide unit inference (see module docstring).

    ``seed`` optionally restores a previously persisted signature
    table (:meth:`signature_table`); the fixpoints then start from the
    recorded solution and converge in one verification round.
    ``seeded`` records whether that happened.
    """

    #: Fixpoint iteration caps; the lattice has height 2 so both loops
    #: converge long before these on any real project.
    MAX_SUMMARY_ROUNDS = 10
    MAX_PARAM_ROUNDS = 10

    def __init__(self, project: ProjectContext,
                 seed: Optional[dict] = None):
        self.project = project
        #: fq -> return-unit summary (may be a parameter placeholder)
        self.summaries: Dict[str, Optional[tuple]] = {}
        #: fq -> {param -> demanded unit or CONFLICT} from body usage
        self.demands: Dict[str, Dict[str, tuple]] = {}
        #: fq -> {param -> join of concrete argument units at call sites}
        self.param_in: Dict[str, Dict[str, tuple]] = {}
        #: fq -> per-return (line, unit) from the symbolic pass — drives
        #: UNIT007 without call-site noise
        self.intrinsic_returns: Dict[str, List[tuple]] = {}
        self.seeded = False
        self._detail: Dict[str, FunctionUnits] = {}
        self._demands_on = False
        self._current_fq: Optional[str] = None
        if seed:
            self._apply_seed(seed)

    # -- public API ----------------------------------------------------
    def run(self) -> None:
        order = sorted(self.project.functions)
        self._fixpoint_summaries(order)
        self._fixpoint_params(order)

    def function_units(self, fq: str) -> FunctionUnits:
        """Final per-function detail (lazily computed, memoized)."""
        detail = self._detail.get(fq)
        if detail is None:
            _, detail = self._evaluate(fq, self._concrete_env(fq),
                                       record=True)
            self._detail[fq] = detail
        return detail

    def signature_unit(self, fq: str, param: str) -> Optional[tuple]:
        """The unit the inferred signature assigns to one parameter:
        the name suffix if present, else a consistent body demand."""
        suffixed = unit_of_name(param)
        if suffixed is not None:
            return suffixed
        demanded = self.demands.get(fq, {}).get(param)
        return demanded if is_concrete(demanded) else None

    def signature_table(self) -> dict:
        """JSON-serializable {fq: {"ret": unit?, "params": {...}}} —
        what the incremental cache persists and restores."""
        table: Dict[str, dict] = {}
        for fq in sorted(self.project.functions):
            _, fn = self.project.functions[fq]
            ret = self.summaries.get(fq)
            params = {}
            for param in fn.params:
                unit = self.signature_unit(fq, param)
                if unit is not None:
                    params[param] = list(unit)
            if params or is_concrete(ret) or _is_param(ret):
                table[fq] = {
                    "ret": list(ret) if ret is not None else None,
                    "params": params,
                }
        return table

    def _apply_seed(self, table: dict) -> None:
        for fq, entry in table.items():
            if fq not in self.project.functions:
                continue
            ret = entry.get("ret")
            if ret is not None:
                self.summaries[fq] = tuple(ret)
            demands = self.demands.setdefault(fq, {})
            for param, unit in entry.get("params", {}).items():
                if unit_of_name(param) is None:
                    demands[param] = tuple(unit)
        self.seeded = bool(table)

    # -- fixpoints -----------------------------------------------------
    def _fixpoint_summaries(self, order: List[str]) -> None:
        for fq in order:
            self.summaries.setdefault(fq, None)
            self.demands.setdefault(fq, {})
        self._demands_on = True
        try:
            for _ in range(self.MAX_SUMMARY_ROUNDS):
                changed = False
                for fq in order:
                    facts, fn = self.project.functions[fq]
                    env = self._symbolic_env(facts, fn)
                    ret, detail = self._evaluate(fq, env, record=True)
                    self.intrinsic_returns[fq] = [
                        (line, unit) for line, unit in detail.returns]
                    merged = join(self.summaries[fq], ret)
                    if merged != self.summaries[fq]:
                        self.summaries[fq] = merged
                        changed = True
                if not changed:
                    break
        finally:
            self._demands_on = False

    def _fixpoint_params(self, order: List[str]) -> None:
        for fq in order:
            self.param_in.setdefault(fq, {})
        for _ in range(self.MAX_PARAM_ROUNDS):
            changed = False
            for fq in order:
                facts, fn = self.project.functions[fq]
                _, detail = self._evaluate(fq, self._concrete_env(fq),
                                           record=True)
                for index, call in enumerate(fn.calls):
                    callees = self.project.resolve_call(facts, fn, call)
                    for callee in callees:
                        if self._push_args(callee,
                                           detail.call_args[index],
                                           call):
                            changed = True
            if not changed:
                break

    def _push_args(self, callee: str,
                   arg_units: Dict[object, Optional[tuple]],
                   call: CallFacts) -> bool:
        _, cfn = self.project.functions[callee]
        sink = self.param_in[callee]
        changed = False
        for pname in cfn.params:
            incoming = self._bind_param(cfn, pname, arg_units, call)
            if not is_concrete(incoming):
                continue
            merged = join(sink.get(pname), incoming)
            if merged != sink.get(pname):
                sink[pname] = merged
                changed = True
        return changed

    @staticmethod
    def _bind_param(cfn: FunctionFacts, pname: str,
                    arg_units: Dict[object, Optional[tuple]],
                    call: CallFacts) -> Optional[tuple]:
        """Unit of the argument(s) that may bind ``pname`` at one call
        site.  Positional mapping accepts both slot *j* and *j-1*
        (implicit ``self``), same over-approximation as the taint
        engine."""
        out = arg_units.get(pname)
        if pname in cfn.params:
            j = cfn.params.index(pname)
            out = join(out, arg_units.get(j))
            if j > 0 and cfn.params[0] in ("self", "cls") \
                    and call.attr is not None:
                out = join(out, arg_units.get(j - 1))
        return out

    # -- environments --------------------------------------------------
    def _symbolic_env(self, facts: ModuleFacts, fn: FunctionFacts
                      ) -> Dict[str, Optional[tuple]]:
        env: Dict[str, Optional[tuple]] = {}
        for param in fn.params:
            env[param] = unit_of_name(param) or _param(param)
        return env

    def _concrete_env(self, fq: str) -> Dict[str, Optional[tuple]]:
        _, fn = self.project.functions[fq]
        incoming = self.param_in.get(fq, {})
        env: Dict[str, Optional[tuple]] = {}
        for param in fn.params:
            unit = unit_of_name(param)
            if unit is None:
                pushed = incoming.get(param)
                unit = pushed if is_concrete(pushed) else None
            env[param] = unit
        return env

    # -- one-function evaluation ---------------------------------------
    def _evaluate(self, fq: str, env: Dict[str, Optional[tuple]],
                  record: bool = False
                  ) -> Tuple[Optional[tuple], FunctionUnits]:
        facts, fn = self.project.functions[fq]
        previous_fq = self._current_fq
        self._current_fq = fq
        detail = FunctionUnits(len(fn.calls))
        annotations = facts.unit_annotations
        ret: Optional[tuple] = None
        try:
            # Two passes so loop-carried names converge (same shape as
            # the taint engine's evaluation).
            for _ in range(2):
                memo: Dict[int, Optional[tuple]] = {}
                detail.returns = []
                for targets, uexpr, line in fn.unit_assigns:
                    value = self._expr(uexpr, facts, fn, env, memo,
                                       detail)
                    annotated = annotations.get(line)
                    if annotated is not None:
                        # The annotation is an assertion: it seeds the
                        # environment and overrides inference.
                        value = ANNOTATION_UNITS[annotated]
                    if uexpr[0] == "c":
                        tail = conversion_tail(fn.calls[uexpr[1]])
                    else:
                        tail = None
                    for target in targets:
                        env[target] = value
                        if tail is not None and tail in SCALE_CONVERSIONS:
                            detail.conv_origin[target] = tail
                        else:
                            detail.conv_origin.pop(target, None)
                for uexpr, line in fn.unit_returns:
                    value = self._expr(uexpr, facts, fn, env, memo,
                                       detail)
                    annotated = annotations.get(fn.line)
                    if annotated is not None:
                        value = ANNOTATION_UNITS[annotated]
                    detail.returns.append((line, value))
                for uexpr in fn.unit_exprs:
                    self._expr(uexpr, facts, fn, env, memo, detail)
                # Calls reached outside any recorded unit expression
                # (statement calls in with/for headers, ...) still get
                # their argument units computed for the sink rules.
                for index in range(len(fn.calls)):
                    self._call_unit(facts, fn, index, env, memo, detail)
            for _line, value in detail.returns:
                ret = join(ret, value)
        finally:
            self._current_fq = previous_fq
        if record:
            # Deduplicate the two evaluation passes' diagnostics.
            seen = set()
            unique = []
            for mix in detail.mixes:
                if mix not in seen:
                    seen.add(mix)
                    unique.append(mix)
            detail.mixes = unique
        return ret, detail

    def _expr(self, uexpr: Sequence, facts: ModuleFacts,
              fn: FunctionFacts, env: Dict[str, Optional[tuple]],
              memo: Dict[int, Optional[tuple]],
              detail: FunctionUnits) -> Optional[tuple]:
        kind = uexpr[0]
        if kind in ("n", "a"):
            # A suffix is authoritative (UNIT003 guards assignments
            # *into* suffixed names); fall back to the environment.
            return unit_of_name(uexpr[1]) or env.get(uexpr[1])
        if kind == "c":
            return self._call_unit(facts, fn, uexpr[1], env, memo,
                                   detail)
        if kind in ("+", "-"):
            left = self._expr(uexpr[1], facts, fn, env, memo, detail)
            right = self._expr(uexpr[2], facts, fn, env, memo, detail)
            self._demand_pair(left, right)
            result, mixed = add_units(left, right)
            if mixed:
                both = (syntactic_unit(uexpr[1], fn) is not None
                        and syntactic_unit(uexpr[2], fn) is not None)
                detail.mixes.append((uexpr[3], uexpr[4], kind,
                                     left, right, both))
            return result if not mixed else None
        if kind == "*":
            return mul_units(
                self._expr(uexpr[1], facts, fn, env, memo, detail),
                self._expr(uexpr[2], facts, fn, env, memo, detail))
        if kind == "/":
            return div_units(
                self._expr(uexpr[1], facts, fn, env, memo, detail),
                self._expr(uexpr[2], facts, fn, env, memo, detail))
        if kind == "j":
            return join(
                self._expr(uexpr[1], facts, fn, env, memo, detail),
                self._expr(uexpr[2], facts, fn, env, memo, detail))
        if kind == "cmp":
            exprs = uexpr[1]
            operands = [self._expr(item, facts, fn, env, memo, detail)
                        for item in exprs]
            for index in range(len(operands) - 1):
                first, second = operands[index], operands[index + 1]
                self._demand_pair(first, second)
                if is_concrete(first) and is_concrete(second) \
                        and first != second:
                    both = all(
                        syntactic_unit(e, fn) is not None
                        for e in (exprs[index], exprs[index + 1]))
                    detail.mixes.append((uexpr[2], uexpr[3], "cmp",
                                         first, second, both))
            return None
        return None

    def _call_unit(self, facts: ModuleFacts, fn: FunctionFacts,
                   index: int, env: Dict[str, Optional[tuple]],
                   memo: Dict[int, Optional[tuple]],
                   detail: FunctionUnits) -> Optional[tuple]:
        if index in memo:
            return memo[index]
        memo[index] = None  # cycle guard; nested args only look back
        call = fn.calls[index]
        arg_units: Dict[object, Optional[tuple]] = {}
        for arg in call.args:
            arg_units[arg.slot] = self._expr(arg.expr, facts, fn, env,
                                             memo, detail)
        out: Optional[tuple] = None
        tail = conversion_tail(call)
        if tail is not None:
            out = CONVERSION_RETURNS[tail]
            expected = CONVERSION_PARAMS[tail]
            for slot, want in enumerate(expected):
                if want is not None:
                    self._demand_value(arg_units.get(slot), want)
        elif call.attr in SCHEDULE_ATTRS:
            for slot in (0, "delay", "time"):
                self._demand_value(arg_units.get(slot), ("time", "s"))
        elif call.bare in _PASSTHROUGH_BUILTINS:
            for arg in call.args:
                if isinstance(arg.slot, int):
                    out = join(out, arg_units[arg.slot])
            if not is_concrete(out):
                out = None
        else:
            callees = self.project.resolve_call(facts, fn, call)
            for callee in callees:
                out = join(out, self._instantiate(callee, arg_units,
                                                  call))
                cfacts_fn = self.project.functions[callee][1]
                for pname in cfacts_fn.params:
                    want = self.signature_unit(callee, pname)
                    if want is not None:
                        bound = self._bind_param(cfacts_fn, pname,
                                                 arg_units, call)
                        self._demand_value(bound, want)
            if not is_concrete(out):
                out = None
        detail.call_args[index] = arg_units
        detail.call_out[index] = out
        memo[index] = out
        return out

    def _instantiate(self, callee: str,
                     arg_units: Dict[object, Optional[tuple]],
                     call: CallFacts) -> Optional[tuple]:
        summary = self.summaries.get(callee)
        if summary is None or summary == CONFLICT:
            return None
        if _is_param(summary):
            _, cfn = self.project.functions[callee]
            bound = self._bind_param(cfn, summary[1], arg_units, call)
            return bound if is_concrete(bound) else None
        return summary

    # -- demands -------------------------------------------------------
    def _demand_pair(self, left: Optional[tuple],
                     right: Optional[tuple]) -> None:
        """Record a demand when a parameter placeholder meets a
        concrete unit in +/-/compare."""
        if _is_param(left) and is_concrete(right):
            self._demand(left[1], right)
        elif _is_param(right) and is_concrete(left):
            self._demand(right[1], left)

    def _demand_value(self, value: Optional[tuple],
                      want: tuple) -> None:
        if _is_param(value):
            self._demand(value[1], want)

    def _demand(self, param: str, unit: tuple) -> None:
        if not self._demands_on or self._current_fq is None:
            return
        sink = self.demands.setdefault(self._current_fq, {})
        sink[param] = join(sink.get(param), unit)


def shared_units(project: ProjectContext) -> UnitAnalysis:
    """One unit analysis per lint invocation, shared by the UNIT flow
    rules (mirrors ``determinism_flow.shared_taint``).

    The runner may attach a persisted signature table as
    ``project.unit_signature_seed``; the engine records whether it was
    used on ``project`` so the cache layer can report it.
    """
    analysis = getattr(project, "_simtype_units", None)
    if analysis is None:
        seed = getattr(project, "unit_signature_seed", None)
        analysis = UnitAnalysis(project, seed=seed)
        analysis.run()
        project._simtype_units = analysis  # type: ignore[attr-defined]
    return analysis
