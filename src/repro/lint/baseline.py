"""Baseline files: adopt a new rule without fixing the world first.

Turning on a new rule pack over an existing tree can surface dozens of
pre-existing findings.  A baseline file records them so the run stays
green while *new* findings (and regressions beyond the recorded count)
still fail:

    repro-lint src --write-baseline .simlint-baseline.json
    repro-lint src --baseline .simlint-baseline.json

Findings are fingerprinted as ``(rule, path, message)`` with a *count*
per fingerprint — deliberately no line numbers, so unrelated edits
that shift a finding up or down the file do not churn the baseline.
The cost of that choice: a finding whose message embeds provenance
line numbers (the flow rules do) re-fingerprints when its *source*
site moves.  Baselines are a migration tool, not a permanent
suppression mechanism — burn entries down to zero and delete the file.

Matching is per fingerprint, first-come within a run: with a count of
2 and three identical findings, the first two are marked
``baselined`` and the third blocks.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.framework import Finding, LintConfigError

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_SCHEMA_VERSION = 1

_SEP = "\x1f"  # fingerprint field separator; cannot appear in paths


def _fingerprint(finding: Finding) -> str:
    return _SEP.join((finding.rule, finding.path.replace("\\", "/"),
                      finding.message))


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file into ``{fingerprint: count}``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LintConfigError("cannot read baseline file %r: %s"
                              % (path, exc))
    except ValueError as exc:
        raise LintConfigError("baseline file %r is not valid JSON: %s"
                              % (path, exc))
    if not isinstance(data, dict) \
            or data.get("version") != BASELINE_SCHEMA_VERSION \
            or not isinstance(data.get("entries"), list):
        raise LintConfigError("baseline file %r has an unexpected shape "
                              "(expected version %d with an entries "
                              "list)" % (path, BASELINE_SCHEMA_VERSION))
    entries: Dict[str, int] = {}
    for entry in data["entries"]:
        fingerprint = _SEP.join((entry["rule"], entry["path"],
                                 entry["message"]))
        entries[fingerprint] = entries.get(fingerprint, 0) \
            + int(entry.get("count", 1))
    return entries


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Record every blocking finding; returns the entry count."""
    counts: Dict[tuple, int] = {}
    for finding in findings:
        if not finding.blocking:
            continue
        key = (finding.rule, finding.path.replace("\\", "/"),
               finding.message)
        counts[key] = counts.get(key, 0) + 1
    entries = [{"rule": rule, "path": posix, "message": message,
                "count": count}
               for (rule, posix, message), count in sorted(counts.items())]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": BASELINE_SCHEMA_VERSION,
                   "entries": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(findings: List[Finding],
                   entries: Dict[str, int]) -> int:
    """Mark accepted findings ``baselined``; returns how many matched."""
    remaining = dict(entries)
    matched = 0
    for finding in findings:
        if finding.suppressed:
            continue
        fingerprint = _fingerprint(finding)
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            finding.baselined = True
            matched += 1
    return matched
