"""Shard-safety rule pack (SHARD001-SHARD003).

:func:`repro.parallel.pool.map_shards` runs shard workers in separate
processes and merges their results order-independently; three classes
of bugs silently break the serial-equals-sharded guarantee that
``tests/test_parallel.py`` fingerprints:

* worker code mutating module-level state — each process mutates its
  *own* copy, the parent never sees it, and any code that later reads
  the module state gets an answer that depends on how work was
  sharded (SHARD001);
* merge/absorb accumulators fed by set/dict iteration — hash order is
  arbitrary across processes, so the merged result is not a function
  of the inputs (SHARD002);
* ``fork_mark()`` without a reachable ``rollback()`` — the
  observability merge protocol double-counts whatever was recorded
  before the fork (SHARD003).

All three need the cross-module call graph: the shard entry point
lives in ``parallel/``, the state it reaches lives anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lint.framework import register
from repro.lint.project import (
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
    ProjectRule,
)

#: Callables that dispatch a worker function across shard processes;
#: the call's first argument is the shard entry point.
SHARD_DISPATCHERS = ("map_shards",)


def shard_entry_points(project: ProjectContext
                       ) -> List[Tuple[str, str, int]]:
    """(entry qualname, dispatch path, dispatch line) per dispatch."""
    entries: List[Tuple[str, str, int]] = []
    for fq in sorted(project.functions):
        facts, fn = project.functions[fq]
        for call in fn.calls:
            name = call.attr or call.bare
            if name not in SHARD_DISPATCHERS:
                continue
            worker = call.first_arg_name
            if not worker:
                continue
            local = facts.module + "." + worker
            resolved = local if local in project.functions else \
                project.resolve_function(
                    facts.imports.get(worker, worker),
                    from_module=facts.module)
            if resolved is not None:
                entries.append((resolved, facts.path, call.line))
    return entries


def _locals_of(fn: FunctionFacts) -> Set[str]:
    names = set(fn.params)
    for targets, _names, _calls, _line in fn.assigns:
        names.update(targets)
    return names


@register
class ShardSharedStateRule(ProjectRule):
    id = "SHARD001"
    name = "shard-shared-state"
    severity = "error"
    description = ("Module-level state is written in code reachable "
                   "from a shard entry point; each worker process "
                   "mutates its own copy, so results depend on the "
                   "sharding.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        entries = shard_entry_points(project)
        if not entries:
            return
        parents = project.reachable_from(e[0] for e in entries)
        seen: Set[Tuple[str, int, str]] = set()
        for fq in sorted(parents):
            facts, fn = project.functions[fq]
            chain = project.witness_chain(parents, fq)
            for name, line in fn.global_writes:
                key = (facts.path, line, name)
                if key not in seen:
                    seen.add(key)
                    self.report(
                        facts.path, line,
                        "module-level name %r is written here, and this "
                        "code is reachable from shard entry point(s) "
                        "(%s); worker processes each write their own "
                        "copy" % (name, chain))
            module_state = set(project.modules[facts.module]
                               .module_mutables)
            local_names = _locals_of(fn)
            for receiver, method, line in fn.mutations:
                if receiver not in module_state \
                        or receiver in local_names:
                    continue
                key = (facts.path, line, receiver)
                if key not in seen:
                    seen.add(key)
                    self.report(
                        facts.path, line,
                        "module-level mutable %r is mutated via .%s() "
                        "in code reachable from shard entry point(s) "
                        "(%s); worker processes each mutate their own "
                        "copy" % (receiver, method, chain))


@register
class ShardSetMergeRule(ProjectRule):
    id = "SHARD002"
    name = "shard-set-merge"
    severity = "error"
    description = ("A merge/absorb accumulator is fed by iterating a "
                   "set; set order is arbitrary, so the merged result "
                   "is not a pure function of the shard outputs.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        entries = shard_entry_points(project)
        parents = project.reachable_from(e[0] for e in entries) \
            if entries else {}
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            merge_like = ("merge" in fn.name or "absorb" in fn.name)
            if fq not in parents and not merge_like:
                continue
            for line, accumulates in fn.set_loops:
                if not accumulates:
                    continue
                self.report(
                    facts.path, line,
                    "iteration over a set feeds an accumulator in %s "
                    "code; set order differs across processes — sort "
                    "the elements first"
                    % ("merge" if merge_like else "shard-reachable"))


@register
class ForkMarkPairingRule(ProjectRule):
    id = "SHARD003"
    name = "fork-mark-pairing"
    severity = "error"
    description = ("obs.fork_mark() has no reachable rollback(); the "
                   "observability merge protocol double-counts "
                   "pre-fork records unless every mark is rolled "
                   "back.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            marks = [call for call in fn.calls
                     if (call.attr or call.bare) == "fork_mark"]
            if not marks:
                continue
            closure = project.reachable_from([fq])
            if self._rollback_reachable(project, closure):
                continue
            for call in marks:
                self.report(
                    facts.path, call.line,
                    "fork_mark() here, but no rollback() is reachable "
                    "from %s(); the pre-fork snapshot is never "
                    "subtracted and merged metrics double-count "
                    "(suppress when the parent rolls back its own "
                    "mark)" % fn.name, col=call.col)

    @staticmethod
    def _rollback_reachable(project: ProjectContext,
                            closure: Dict[str, object]) -> bool:
        for fq in closure:
            _facts, fn = project.functions[fq]
            for call in fn.calls:
                if (call.attr or call.bare) == "rollback":
                    return True
        return False
