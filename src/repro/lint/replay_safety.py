"""Replay-safety rule pack (RPLY001-RPLY002).

A session-replay cache hit (:mod:`repro.sim.replay`) never drives the
TCP stack, so every side effect a simulated session leaves on the
session path — ``tcp/``, ``services/``, ``measure/`` — must be
replicated explicitly by the replay manager.  The contract is recorded
in ``sim/replay/effects.py`` as the ``REPLICATED_EFFECTS`` allowlist;
these rules keep code and contract in sync *in both directions*:

* RPLY001 — an effect-shaped site in session-path code whose signature
  is not allowlisted (a new ground-truth log or registry write that
  replay would silently drop);
* RPLY002 — an allowlist entry matching no session-path code (a stale
  contract that would mask a future RPLY001).

Effect shapes are syntactic: subscript stores into ``*_log``
attributes, and calls to ``record_*`` / ``register*`` / ``log_*`` /
``inject`` / ``reserve_port`` methods.  Constructor bodies
(``__init__``) are exempt — effects there are topology setup that
happens before any session exists, not per-session state.

Both rules stand down when the linted file set contains no module
defining ``REPLICATED_EFFECTS`` under a ``replay`` path (linting
``tests/`` alone must not light up) or no session-path modules at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.framework import register
from repro.lint.project import ModuleFacts, ProjectContext, ProjectRule

#: Path segments that mark a module as session-path code.
SESSION_SEGMENTS = ("tcp", "services", "measure")

#: Method-name shapes treated as session side effects.
EFFECT_PREFIXES = ("record_", "register", "log_")
EFFECT_METHODS = ("inject", "reserve_port")

#: Module-level constant the replay cache declares its contract in.
ALLOWLIST_NAME = "REPLICATED_EFFECTS"


def _is_session_module(facts: ModuleFacts) -> bool:
    parts = facts.path.replace("\\", "/").split("/")
    return any(segment in parts for segment in SESSION_SEGMENTS)


def _find_allowlist(project: ProjectContext
                    ) -> Optional[Tuple[str, int, List[str]]]:
    for module in sorted(project.modules):
        facts = project.modules[module]
        if "replay" not in facts.path.replace("\\", "/"):
            continue
        if ALLOWLIST_NAME in facts.module_constants:
            line, strings = facts.module_constants[ALLOWLIST_NAME]
            return facts.path, line, list(strings)
    return None


def _effect_sites(facts: ModuleFacts) -> List[Tuple[str, int]]:
    """(signature, line) for every effect-shaped site in one module."""
    sites: List[Tuple[str, int]] = []
    for fn in facts.functions.values():
        if fn.name == "__init__":
            continue  # constructor-time topology setup, not a session
        for attr, line in fn.attr_subscript_writes:
            if attr.endswith("_log"):
                sites.append((attr + "[]", line))
        for call in fn.calls:
            attr = call.attr
            if attr is None:
                continue
            if attr in EFFECT_METHODS \
                    or attr.startswith(EFFECT_PREFIXES):
                sites.append((attr, call.line))
    return sites


@register
class UnreplicatedEffectRule(ProjectRule):
    id = "RPLY001"
    name = "unreplicated-effect"
    severity = "error"
    description = ("Session-path side effect not in the replay cache's "
                   "replicated-effects allowlist; a replay hit would "
                   "silently drop it.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        allowlist = _find_allowlist(project)
        if allowlist is None:
            return
        _path, _line, allowed = allowlist
        for module in sorted(project.modules):
            facts = project.modules[module]
            if not _is_session_module(facts):
                continue
            for signature, line in sorted(_effect_sites(facts),
                                          key=lambda s: (s[1], s[0])):
                if signature in allowed:
                    continue
                self.report(
                    facts.path, line,
                    "session-path side effect %r is not in "
                    "REPLICATED_EFFECTS; a replay hit will not "
                    "reproduce it — replicate it in the replay manager "
                    "and add the signature to sim/replay/effects.py"
                    % signature)


@register
class StaleAllowlistRule(ProjectRule):
    id = "RPLY002"
    name = "stale-allowlist"
    severity = "error"
    description = ("REPLICATED_EFFECTS entry matches no session-path "
                   "code; stale entries mask future unreplicated "
                   "effects.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        allowlist = _find_allowlist(project)
        if allowlist is None:
            return
        path, line, allowed = allowlist
        observed: Dict[str, int] = {}
        session_modules = 0
        for facts in project.modules.values():
            if not _is_session_module(facts):
                continue
            session_modules += 1
            for signature, _line in _effect_sites(facts):
                observed[signature] = observed.get(signature, 0) + 1
        if session_modules == 0:
            return  # partial lint: nothing to compare against
        for entry in allowed:
            if entry not in observed:
                self.report(
                    path, line,
                    "REPLICATED_EFFECTS entry %r matches no effect "
                    "site in the linted session-path modules; remove "
                    "the stale entry (or restore the effect it "
                    "documented)" % entry)
