"""AST-visitor framework for ``simlint``.

The simulator's headline numbers are only citable because two invariants
hold everywhere in the tree:

* **Determinism** — for a fixed seed the packet-level simulation is
  bit-for-bit reproducible.  No wall clocks, no OS entropy, no salted
  ``hash()``, no iteration-order leaks into the event queue.
* **Unit discipline** — simulator time is seconds; milliseconds, miles
  and byte rates appear only at the analysis/reporting boundary and only
  through :mod:`repro.sim.units`.

This module provides the machinery that rule packs plug into: a rule
registry, per-file visitor dispatch over a single AST walk, suppression
comments (``# simlint: ignore[RULE]``), severity levels, and
``[tool.simlint]`` configuration loaded from ``pyproject.toml``.

A rule is a subclass of :class:`Rule` decorated with :func:`register`.
It declares ``visit_<NodeType>`` methods exactly like
:class:`ast.NodeVisitor`, plus optional :meth:`Rule.begin_file` /
:meth:`Rule.end_file` hooks for whole-file analyses (call graphs,
symbol tables).  All enabled rules share one walk per file, so adding a
rule never re-parses or re-traverses anything.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "LintConfig",
    "LintConfigError",
    "LintRunner",
    "register",
    "all_rules",
    "get_rule",
    "load_config",
    "find_pyproject",
]

SEVERITIES = ("error", "warning")

#: Rule id reserved for the framework itself (bad suppression comments).
META_RULE_ID = "META001"


class LintConfigError(Exception):
    """Raised for malformed ``[tool.simlint]`` tables or CLI selections."""


@dataclasses.dataclass
class Finding:
    """A single diagnostic produced by a rule."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    end_line: int = 0
    suppressed: bool = False
    #: accepted by the baseline file (counts as non-blocking, like
    #: suppressed, but lives outside the source tree)
    baselined: bool = False

    def __post_init__(self) -> None:
        if not self.end_line:
            self.end_line = self.line

    @property
    def blocking(self) -> bool:
        """True when this finding should fail the run."""
        return not self.suppressed and not self.baselined

    def as_dict(self) -> Dict[str, Any]:
        """Stable JSON shape — see docs/LINTING.md before changing."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    def render(self) -> str:
        state = ""
        if self.suppressed:
            state = " (suppressed)"
        elif self.baselined:
            state = " (baselined)"
        return "%s:%d:%d: %s [%s]%s %s" % (
            self.path, self.line, self.col, self.severity, self.rule,
            state, self.message)


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, type] = {}

_RULE_ID_RE = re.compile(r"^[A-Z]{2,5}\d{3}$")


def register(rule_cls: type) -> type:
    """Class decorator adding a rule class to the registry.

    Accepts both per-file :class:`Rule` subclasses and project-scope
    :class:`repro.lint.project.ProjectRule` subclasses; the runner
    dispatches on their ``scope`` attribute.
    """
    rule_id = getattr(rule_cls, "id", None)
    if not rule_id or not _RULE_ID_RE.match(rule_id):
        raise ValueError("rule id %r does not match PACKNNN" % (rule_id,))
    if rule_cls.severity not in SEVERITIES:
        raise ValueError("rule %s has unknown severity %r"
                         % (rule_id, rule_cls.severity))
    if getattr(rule_cls, "scope", "file") not in ("file", "project"):
        raise ValueError("rule %s has unknown scope %r"
                         % (rule_id, rule_cls.scope))
    if rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %s" % rule_id)
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, type]:
    """Return the registry (id -> rule class), importing the rule packs."""
    _load_rule_packs()
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> type:
    _load_rule_packs()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintConfigError("unknown rule id %r; known rules: %s"
                              % (rule_id, ", ".join(sorted(_REGISTRY))))


def _load_rule_packs() -> None:
    # Imported lazily so framework.py itself has no circular imports.
    from repro.lint import (  # noqa: F401
        determinism,
        determinism_flow,
        effects_pack,
        event_safety,
        rng_lineage,
        shard_safety,
        unit_flow,
        unit_safety,
    )


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class LintConfig:
    """Effective configuration for one lint run.

    ``enable`` non-empty means *only* those rules run; ``disable`` is
    subtracted afterwards.  ``exclude`` holds path fragments (POSIX
    style) — any file whose normalized path contains one is skipped.
    ``baseline`` names a baseline file of adopted findings (see
    :mod:`repro.lint.baseline`), ``cache`` an incremental-cache file
    (see :mod:`repro.lint.cache`); both are optional.
    """

    enable: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = None
    cache: Optional[str] = None

    def validate(self) -> None:
        known = set(all_rules())
        for rule_id in tuple(self.enable) + tuple(self.disable):
            if rule_id not in known:
                raise LintConfigError(
                    "unknown rule id %r in simlint configuration; "
                    "known rules: %s" % (rule_id, ", ".join(sorted(known))))

    def selected_rules(self) -> List[type]:
        self.validate()
        rules = all_rules()
        ids = sorted(self.enable) if self.enable else sorted(rules)
        return [rules[i] for i in ids if i not in set(self.disable)]

    def excludes_path(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(fragment and fragment in normalized
                   for fragment in self.exclude)


def find_pyproject(start: str) -> Optional[str]:
    """Walk up from ``start`` looking for a ``pyproject.toml``."""
    directory = os.path.abspath(start)
    if os.path.isfile(directory):
        directory = os.path.dirname(directory)
    while True:
        candidate = os.path.join(directory, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_config(pyproject_path: Optional[str]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml`` (or defaults)."""
    if pyproject_path is None:
        return LintConfig()
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        tomllib = None
    if tomllib is not None:
        with open(pyproject_path, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("simlint", {})
    else:  # pragma: no cover - Python < 3.11
        table = _parse_simlint_table(pyproject_path)
    if not isinstance(table, dict):
        raise LintConfigError("[tool.simlint] must be a table")
    unknown_keys = set(table) - {"enable", "disable", "exclude",
                                 "baseline", "cache"}
    if unknown_keys:
        raise LintConfigError("unknown [tool.simlint] keys: %s"
                              % ", ".join(sorted(unknown_keys)))
    config = LintConfig(
        enable=_string_tuple(table, "enable"),
        disable=_string_tuple(table, "disable"),
        exclude=_string_tuple(table, "exclude"),
        baseline=_string_value(table, "baseline"),
        cache=_string_value(table, "cache"),
    )
    config.validate()
    return config


def _string_tuple(table: Dict[str, Any], key: str) -> Tuple[str, ...]:
    value = table.get(key, ())
    if isinstance(value, str):
        raise LintConfigError("[tool.simlint] %s must be a list of strings"
                              % key)
    values = tuple(value)
    if not all(isinstance(item, str) for item in values):
        raise LintConfigError("[tool.simlint] %s must be a list of strings"
                              % key)
    return values


def _string_value(table: Dict[str, Any], key: str) -> Optional[str]:
    value = table.get(key)
    if value is None:
        return None
    # The py<3.11 fallback parser returns every value as a string list.
    if isinstance(value, (list, tuple)):
        if len(value) != 1:
            raise LintConfigError("[tool.simlint] %s must be one string"
                                  % key)
        value = value[0]
    if not isinstance(value, str):
        raise LintConfigError("[tool.simlint] %s must be a string" % key)
    return value


def _parse_simlint_table(pyproject_path: str) -> Dict[str, Any]:
    """Minimal fallback TOML reader for ``[tool.simlint]`` (py<3.11)."""
    table: Dict[str, Any] = {}
    in_table = False
    with open(pyproject_path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line.startswith("["):
                in_table = line == "[tool.simlint]"
                continue
            if not in_table or "=" not in line or line.startswith("#"):
                continue
            key, _, rest = line.partition("=")
            items = re.findall(r'"([^"]*)"', rest)
            table[key.strip()] = items
    return table


# ---------------------------------------------------------------------------
# suppression comments
# ---------------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(ignore-file|ignore)\s*(?:\[\s*([A-Za-z0-9_,\s]*?)\s*\])?")


class _Suppressions:
    """Parsed suppression state for one file.

    ``line_rules`` maps line number -> set of rule ids (empty set means
    "all rules").  ``file_rules`` is the same for file-level pragmas.
    """

    def __init__(self) -> None:
        self.line_rules: Dict[int, Optional[set]] = {}
        self.file_all = False
        self.file_rules: set = set()
        self.bad_comments: List[Tuple[int, str]] = []

    @classmethod
    def parse(cls, source: str, known_rules: Iterable[str]
              ) -> "_Suppressions":
        known = set(known_rules)
        state = cls()
        for lineno, text in _comments(source):
            if "simlint" not in text:
                continue
            for match in _SUPPRESS_RE.finditer(text):
                kind, raw_ids = match.group(1), match.group(2)
                ids = set()
                if raw_ids:
                    for rule_id in raw_ids.split(","):
                        rule_id = rule_id.strip()
                        if not rule_id:
                            continue
                        if rule_id not in known:
                            state.bad_comments.append((lineno, rule_id))
                            continue
                        ids.add(rule_id)
                if kind == "ignore-file":
                    if raw_ids is None:
                        state.file_all = True
                    state.file_rules |= ids
                elif raw_ids is None:
                    state.line_rules[lineno] = None  # all rules
                elif state.line_rules.get(lineno, set()) is not None:
                    state.line_rules.setdefault(lineno, set()).update(ids)
        return state

    def covers(self, rule_id: str, line: int) -> bool:
        if self.file_all or rule_id in self.file_rules:
            return True
        if line in self.line_rules:
            rules = self.line_rules[line]
            return rules is None or rule_id in rules
        return False

    def to_json(self) -> Dict[str, Any]:
        """Serialize for the incremental cache (bad comments included,
        so cached files still re-report them)."""
        return {
            "all_lines": sorted(line for line, rules
                                in self.line_rules.items()
                                if rules is None),
            "lines": {str(line): sorted(rules)
                      for line, rules in self.line_rules.items()
                      if rules is not None},
            "file_all": self.file_all,
            "file_rules": sorted(self.file_rules),
            "bad": [[line, rule_id]
                    for line, rule_id in self.bad_comments],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "_Suppressions":
        state = cls()
        for line in data["all_lines"]:
            state.line_rules[int(line)] = None
        for line, rules in data["lines"].items():
            state.line_rules[int(line)] = set(rules)
        state.file_all = bool(data["file_all"])
        state.file_rules = set(data["file_rules"])
        state.bad_comments = [(int(line), rule_id)
                              for line, rule_id in data["bad"]]
        return state


def _comments(source: str) -> List[Tuple[int, str]]:
    """(lineno, text) for every comment token — docstrings mentioning the
    suppression syntax must not act as suppressions."""
    import io
    import tokenize
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # Fall back to a raw line scan on partially tokenizable input.
        return [(i, line) for i, line in enumerate(source.splitlines(), 1)
                if "#" in line]
    return comments


# ---------------------------------------------------------------------------
# per-file context
# ---------------------------------------------------------------------------
class FileContext:
    """Everything rules may want to know about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports: Dict[str, str] = {}
        self._findings: List[Finding] = []
        self._collect_imports(tree)

    # -- imports / name resolution ------------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = node.module + "." + alias.name

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted name.

        Import aliases are expanded, so ``from datetime import datetime``
        followed by ``datetime.now()`` resolves to
        ``datetime.datetime.now``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # -- reporting ----------------------------------------------------
    def report(self, rule: "Rule", node: ast.AST, message: str,
               line: Optional[int] = None) -> None:
        start = line if line is not None else getattr(node, "lineno", 1)
        self._findings.append(Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=start,
            col=getattr(node, "col_offset", 0),
            message=message,
            end_line=max(start, getattr(node, "end_lineno", None) or start),
        ))


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
class Rule:
    """Base class for simlint rules.

    Subclasses set ``id``/``name``/``severity``/``description`` and
    implement ``visit_<NodeType>`` methods.  One instance is created per
    file, so per-file state can simply live on ``self`` (initialise it
    in :meth:`begin_file`).
    """

    id = "XXX000"
    name = "unnamed"
    severity = "error"
    description = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx

    def begin_file(self) -> None:
        """Hook called before the walk starts."""

    def end_file(self) -> None:
        """Hook called after the walk completes."""

    def report(self, node: ast.AST, message: str,
               line: Optional[int] = None) -> None:
        self.ctx.report(self, node, message, line=line)


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------
class LintRunner:
    """Runs the enabled rules over files, sources, or directory trees.

    Per-file rules run in one AST walk per file.  Project-scope rules
    (``scope == "project"``) run once per invocation, over the
    :class:`~repro.lint.project.ModuleFacts` collected from every file,
    after the per-file pass — :meth:`run_paths` does this automatically;
    callers driving :meth:`run_source` directly finish with
    :meth:`run_project`.

    ``errors`` counts conditions that must fail CI hard (exit 2): files
    that do not parse or cannot be read, and rules that crash.  Each
    also produces a ``META001`` finding, so a broken tree degrades into
    diagnostics instead of a traceback.
    """

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        selected = self.config.selected_rules()
        self.rule_classes = [cls for cls in selected
                             if getattr(cls, "scope", "file") == "file"]
        self.project_rule_classes = [
            cls for cls in selected
            if getattr(cls, "scope", "file") == "project"]
        self.files_scanned = 0
        #: files parsed and walked this run (cache misses + direct runs)
        self.files_analyzed = 0
        #: files whose findings were restored from the incremental cache
        self.files_from_cache = 0
        #: inferred function signatures restored from the cache and used
        #: to seed the simtype fixpoints (0 on cold or changed trees)
        self.signatures_from_cache = 0
        #: hard failures: unreadable/unparseable files, crashed rules
        self.errors = 0
        #: ``--stats``: accumulate per-rule wall time into rule_times
        self.collect_stats = False
        #: rule id (or "simtype-engine") -> seconds spent this run
        self.rule_times: Dict[str, float] = {}
        self._facts_by_path: Dict[str, Any] = {}
        self._suppressions: Dict[str, _Suppressions] = {}
        self._unit_signature_seed: Optional[Dict[str, Any]] = None
        self._unit_signature_table: Optional[Dict[str, Any]] = None

    # -- discovery ----------------------------------------------------
    def iter_python_files(self, paths: Sequence[str]) -> List[str]:
        found: List[str] = []
        for path in paths:
            if not os.path.exists(path):
                # A typo'd path must not let CI pass green on 0 files.
                raise LintConfigError("path does not exist: %r" % path)
            if os.path.isfile(path):
                if not self.config.excludes_path(path):
                    found.append(path)
                continue
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".")
                                 and d != "__pycache__")
                for name in sorted(names):
                    if not name.endswith(".py"):
                        continue
                    full = os.path.join(root, name)
                    if not self.config.excludes_path(full):
                        found.append(full)
        return found

    # -- execution ----------------------------------------------------
    def run_paths(self, paths: Sequence[str]) -> List[Finding]:
        store = None
        if self.config.cache:
            from repro.lint.cache import CacheStore
            store = CacheStore.open(self.config.cache, self)
        findings: List[Finding] = []
        for path in self.iter_python_files(paths):
            findings.extend(self._run_file_cached(path, store))
        if store is not None:
            self._unit_signature_seed = store.restore_signatures()
        findings.extend(self.run_project())
        if store is not None:
            store.record_signatures(self._unit_signature_table)
            store.save()
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def run_file(self, path: str) -> List[Finding]:
        return self._run_file_cached(path, None)

    def _run_file_cached(self, path: str, store) -> List[Finding]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            self.errors += 1
            return [Finding(rule=META_RULE_ID, severity="error", path=path,
                            line=1, col=0,
                            message="file could not be read: %s" % exc)]
        if store is not None:
            restored = store.restore(self, path, source)
            if restored is not None:
                return restored
        errors_before = self.errors
        findings = self.run_source(source, path)
        if store is not None and self.errors == errors_before:
            store.record(self, path, source, findings)
        return findings

    def run_source(self, source: str, path: str = "<string>"
                   ) -> List[Finding]:
        self.files_scanned += 1
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            # A finding (so the file shows up in reports) *and* a hard
            # error (so CI exits 2 rather than "1 finding, fine").
            self.errors += 1
            return [Finding(rule=META_RULE_ID, severity="error", path=path,
                            line=exc.lineno or 1, col=exc.offset or 0,
                            message="file does not parse: %s" % exc.msg)]
        self.files_analyzed += 1
        ctx = FileContext(path, source, tree)
        rules = [cls(ctx) for cls in self.rule_classes]
        dispatch: Dict[str, List[Any]] = {}
        for rule in rules:
            rule.begin_file()
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_type = attr[len("visit_"):]
                    dispatch.setdefault(node_type, []).append(
                        (rule.id, getattr(rule, attr)))
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child._simlint_parent = parent  # type: ignore[attr-defined]
        try:
            if self.collect_stats:
                self._walk_timed(tree, dispatch)
            else:
                for node in ast.walk(tree):
                    for _rule_id, method in dispatch.get(
                            type(node).__name__, ()):
                        method(node)
            for rule in rules:
                rule.end_file()
        except Exception as exc:  # crashed rule: diagnose, keep going
            self.errors += 1
            ctx.report(_MetaRule(ctx), None,
                       "internal error while linting (results for this "
                       "file may be partial): %s: %s"
                       % (type(exc).__name__, exc), line=1)
        if self.project_rule_classes:
            try:
                from repro.lint.project import extract_module_facts
                facts = extract_module_facts(path, tree, source=source)
                self._facts_by_path[path] = facts
                for lineno, token in facts.bad_unit_annotations:
                    ctx.report(_MetaRule(ctx), None,
                               "unit annotation names unknown unit %r"
                               % token, line=lineno)
            except Exception as exc:  # pragma: no cover - defensive
                self.errors += 1
                ctx.report(_MetaRule(ctx), None,
                           "internal error extracting project facts: "
                           "%s: %s" % (type(exc).__name__, exc), line=1)

        suppressions = _Suppressions.parse(source, all_rules())
        self._suppressions[path] = suppressions
        for lineno, rule_id in suppressions.bad_comments:
            ctx.report(_MetaRule(ctx), None,
                       "suppression names unknown rule %r" % rule_id,
                       line=lineno)
        findings = ctx._findings
        for finding in findings:
            # A comment anywhere on the reported statement's lines counts,
            # so multi-line calls can carry the ignore on any line.
            if any(suppressions.covers(finding.rule, lineno)
                   for lineno in range(finding.line, finding.end_line + 1)):
                finding.suppressed = True
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- stats ---------------------------------------------------------
    def _walk_timed(self, tree: ast.Module, dispatch) -> None:
        """The ``--stats`` variant of the dispatch walk: identical
        visit order, with per-rule wall time accumulated."""
        clock = time.perf_counter  # simlint: ignore[DET001] timing the tool itself
        times = self.rule_times
        for node in ast.walk(tree):
            for rule_id, method in dispatch.get(type(node).__name__, ()):
                start = clock()
                method(node)
                times[rule_id] = times.get(rule_id, 0.0) \
                    + clock() - start

    def _run_timed(self, key: str, fn, *args):
        if not self.collect_stats:
            return fn(*args)
        start = time.perf_counter()  # simlint: ignore[DET001] timing the tool itself
        try:
            return fn(*args)
        finally:
            self.rule_times[key] = self.rule_times.get(key, 0.0) \
                + time.perf_counter() - start  # simlint: ignore[DET001] timing the tool itself

    # -- project pass --------------------------------------------------
    def _build_unit_engine(self, project) -> None:
        """Run simtype inference once (shared by the UNIT flow rules),
        collect its signature table for the cache, and count restored
        signatures when the cached table seeded the fixpoints."""
        try:
            from repro.lint.simtype import shared_units
            analysis = shared_units(project)
        except Exception:  # pragma: no cover - surfaced by the rules
            return
        self._unit_signature_table = analysis.signature_table()
        if analysis.seeded:
            self.signatures_from_cache = len(
                self._unit_signature_seed or {})

    def _build_effect_engine(self, project) -> None:
        """Run simflow effect inference once; the EFF/RPLY/RNG rules
        all consume the memoized analysis."""
        try:
            from repro.lint.effectflow import shared_effects
            shared_effects(project)
        except Exception:  # pragma: no cover - surfaced by the rules
            return

    def run_project(self) -> List[Finding]:
        """Run project-scope rules over every file linted so far."""
        if not self.project_rule_classes or not self._facts_by_path:
            return []
        from repro.lint.project import ProjectContext
        project = ProjectContext(list(self._facts_by_path.values()))
        if self._unit_signature_seed:
            project.unit_signature_seed = self._unit_signature_seed
        if any(cls.id.startswith("UNIT")
               for cls in self.project_rule_classes):
            # Build the inference engine under its own stats entry, so
            # pack timings compare rule cost rather than who ran first.
            self._run_timed("simtype-engine", self._build_unit_engine,
                            project)
        if any(cls.id.startswith(("EFF", "RPLY", "RNG"))
               for cls in self.project_rule_classes):
            self._run_timed("simflow-engine", self._build_effect_engine,
                            project)
        findings: List[Finding] = []
        for cls in self.project_rule_classes:
            rule = cls()
            try:
                self._run_timed(cls.id, rule.check, project)
            except Exception as exc:
                self.errors += 1
                findings.append(Finding(
                    rule=META_RULE_ID, severity="error", path="<project>",
                    line=1, col=0,
                    message="internal error in project rule %s: %s: %s"
                            % (cls.id, type(exc).__name__, exc)))
                continue
            findings.extend(rule.findings)
        for finding in findings:
            suppressions = self._suppressions.get(finding.path)
            if suppressions is not None and any(
                    suppressions.covers(finding.rule, lineno)
                    for lineno in range(finding.line,
                                        finding.end_line + 1)):
                finding.suppressed = True
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


class _MetaRule(Rule):
    """Pseudo-rule carrying framework diagnostics (not registered)."""

    id = META_RULE_ID
    name = "framework"
    severity = "error"
    description = "simlint's own diagnostics (bad suppression comments)."


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """Parent link annotated by the runner (None at module level)."""
    return getattr(node, "_simlint_parent", None)


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)
