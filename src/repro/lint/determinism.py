"""Determinism rule pack (DET001-DET005).

The simulator must be bit-for-bit reproducible for a fixed seed: every
stochastic decision goes through :class:`repro.sim.randomness.RandomStreams`
named streams, and simulated time comes from ``Simulator.now`` — never
from the host.  These rules catch the host leaking in.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.lint.framework import Rule, ancestors, register

#: Host-clock callables (resolved through import aliases).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: OS-entropy callables — nondeterministic by design.
OS_ENTROPY_CALLS = {
    "os.urandom",
    "random.SystemRandom",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.randbits", "secrets.choice",
    "uuid.uuid1", "uuid.uuid4",
}

#: Draw/seed functions on the *shared module-level* random generator.
MODULE_RANDOM_ATTRS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "seed",
}

_SCHEDULE_ATTRS = {"schedule", "call_at"}


def _is_schedule_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCHEDULE_ATTRS)


@register
class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock"
    severity = "error"
    description = ("Host wall-clock call (time.time(), datetime.now(), ...); "
                   "simulated time must come from Simulator.now.")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.qualname(node.func)
        if qual in WALL_CLOCK_CALLS:
            self.report(node, "%s() reads the host clock; use Simulator.now "
                              "for simulated time (suppress with "
                              "ignore[DET001] when timing the tool itself)"
                        % qual)


@register
class OsEntropyRule(Rule):
    id = "DET002"
    name = "os-entropy"
    severity = "error"
    description = ("OS entropy source (os.urandom, secrets.*, uuid.uuid4, "
                   "random.SystemRandom) — irreproducible by design.")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.qualname(node.func)
        if qual in OS_ENTROPY_CALLS:
            self.report(node, "%s draws OS entropy and can never be "
                              "reproduced from a seed; derive randomness "
                              "from RandomStreams instead" % qual)


@register
class ModuleRandomRule(Rule):
    id = "DET003"
    name = "module-random"
    severity = "error"
    description = ("Call on the shared module-level random generator; any "
                   "new consumer perturbs every existing draw sequence.")

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.qualname(node.func)
        if not qual or "." not in qual:
            return
        module, _, attr = qual.rpartition(".")
        if module == "random" and attr in MODULE_RANDOM_ATTRS:
            self.report(node, "random.%s() uses the shared global generator; "
                              "draw from a named stream "
                              "(RandomStreams.get(...)) so adding consumers "
                              "never perturbs existing ones" % attr)


@register
class SaltedHashRule(Rule):
    id = "DET004"
    name = "salted-hash"
    severity = "error"
    description = ("Builtin hash() feeding a seed or an ordering; hash() is "
                   "salted per process (PYTHONHASHSEED) so results differ "
                   "between runs.")

    _SORT_CALLS = {"sorted", "min", "max"}

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # hash() used as a sort key: sorted(x, key=hash) / xs.sort(key=hash)
        if (isinstance(func, ast.Name) and func.id in self._SORT_CALLS) or (
                isinstance(func, ast.Attribute) and func.attr == "sort"):
            for keyword in node.keywords:
                if (keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "hash"):
                    self.report(keyword.value,
                                "hash() as a sort key gives a different "
                                "order every process; sort on a stable key "
                                "or use randomness.derive_seed")
            return
        if not (isinstance(func, ast.Name) and func.id == "hash"):
            return
        context = self._seeding_context(node)
        if context:
            self.report(node, "hash() is salted per process and must not "
                              "%s; use randomness.derive_seed(root_seed, "
                              "name) for a stable mapping" % context)

    def _seeding_context(self, node: ast.Call) -> Optional[str]:
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.Call):
                qual = self.ctx.qualname(ancestor.func) or ""
                last = qual.rpartition(".")[2]
                if "seed" in last.lower() or last == "Random":
                    return "feed %s()" % qual
                for keyword in ancestor.keywords:
                    if (keyword.arg and "seed" in keyword.arg.lower()
                            and _contains(keyword.value, node)):
                        return "feed the %r argument" % keyword.arg
            elif isinstance(ancestor, (ast.Assign, ast.AnnAssign,
                                       ast.AugAssign)):
                for name in _target_names(ancestor):
                    if "seed" in name.lower():
                        return "be stored in %r" % name
            if isinstance(ancestor, ast.stmt):
                break
        return None


@register
class SetOrderRule(Rule):
    id = "DET005"
    name = "set-order-schedule"
    severity = "error"
    description = ("Iteration over a set whose body schedules events; set "
                   "order is insertion/hash dependent and leaks into the "
                   "event queue tie-break order.")

    def begin_file(self) -> None:
        self._set_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track obvious set-valued locals so `for x in s:` can be checked.
        is_set = isinstance(node.value, (ast.Set, ast.SetComp)) or (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in ("set", "frozenset"))
        for name in _target_names(node):
            if is_set:
                self._set_names.add(name)
            else:
                self._set_names.discard(name)

    def visit_For(self, node: ast.For) -> None:
        if not self._iterates_set(node.iter):
            return
        for child in ast.walk(node):
            if _is_schedule_call(child):
                self.report(node, "iterating a set and scheduling events "
                                  "leaks hash order into the event queue; "
                                  "iterate sorted(...) instead")
                return

    def _iterates_set(self, iterand: ast.expr) -> bool:
        if isinstance(iterand, (ast.Set, ast.SetComp)):
            return True
        if isinstance(iterand, ast.Call) and isinstance(iterand.func,
                                                        ast.Name):
            return iterand.func.id in ("set", "frozenset")
        if isinstance(iterand, ast.Name):
            return iterand.id in self._set_names
        return False


def _target_names(node: ast.stmt):
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, ast.Attribute):
            yield target.attr


def _contains(tree: ast.AST, node: ast.AST) -> bool:
    return any(child is node for child in ast.walk(tree))
