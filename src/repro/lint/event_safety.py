"""Event-safety rule pack (EVT001-EVT003).

:class:`repro.sim.engine.Simulator` has three sharp edges these rules
guard: ``run()`` is not re-entrant (calling it from a scheduled callback
raises at runtime — deep in a campaign, hours in), ``schedule()``
rejects negative delays, and cancellation requires keeping the
:class:`EventHandle` that ``schedule()`` returns.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.lint.framework import Rule, ancestors, register
from repro.lint.project import (
    ProjectContext,
    ProjectRule,
    SCHEDULE_ATTRS,
    SIM_RECEIVERS,  # noqa: F401  (re-exported; pre-v2 public name)
)


def _schedule_call(node: ast.AST) -> Optional[ast.Call]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SCHEDULE_ATTRS):
        return node
    return None


@register
class ReentrantRunRule(ProjectRule):
    """EVT001, rebuilt on the cross-module call graph.

    The old rule closed over same-file calls only, so a scheduled
    callback that reached ``Simulator.run()`` through a helper in
    another module passed silently.  This version walks the
    project-wide call graph (``tests/data/lint/proj_evt`` holds the
    exact cross-file case the old rule missed); same-file resolution is
    a subset of the new graph, so findings are a superset of before.
    """

    id = "EVT001"
    name = "reentrant-run"
    severity = "error"
    description = ("Simulator.run() reachable from a scheduled callback "
                   "(through any cross-module call chain); the engine "
                   "is not re-entrant and raises SimulationError at "
                   "runtime.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        roots: List[str] = []
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            for call in fn.calls:
                # Lambda callbacks carry their sim-run sites directly.
                for line, col in call.lambda_runs:
                    self.report(facts.path, line,
                                "scheduled lambda calls Simulator.run(); "
                                "the engine is not re-entrant", col=col)
                if call.callback:
                    roots.extend(project.resolve_callback(
                        facts, call.callback))
        parents = project.reachable_from(roots)
        reported: Set[Tuple[str, int]] = set()
        for fq in sorted(parents):
            facts, fn = project.functions[fq]
            for call in fn.calls:
                if not call.is_sim_run:
                    continue
                key = (facts.path, call.line)
                if key in reported:
                    continue
                reported.add(key)
                self.report(
                    facts.path, call.line,
                    "Simulator.run() is reachable from a scheduled "
                    "callback (%s); the engine is not re-entrant — "
                    "restructure as scheduled events"
                    % project.witness_chain(parents, fq),
                    col=call.col)


@register
class NegativeDelayRule(Rule):
    id = "EVT002"
    name = "negative-delay"
    severity = "error"
    description = ("A constant negative delay is passed to "
                   "Simulator.schedule(); the engine raises "
                   "SchedulingError for delays in the past.")

    def visit_Call(self, node: ast.Call) -> None:
        call = _schedule_call(node)
        if call is None or call.func.attr != "schedule":  # type: ignore
            return
        delay: Optional[ast.expr] = call.args[0] if call.args else None
        for keyword in call.keywords:
            if keyword.arg == "delay":
                delay = keyword.value
        value = _constant_value(delay)
        if value is not None and value < 0:
            self.report(delay or call,
                        "schedule() is given the constant negative delay "
                        "%r; the engine refuses to schedule in the past — "
                        "use 0.0 for \"now\"" % value)


@register
class DroppedHandleRule(Rule):
    id = "EVT003"
    name = "dropped-handle"
    severity = "warning"
    description = ("schedule()/call_at() result discarded in a scope that "
                   "cancels timers elsewhere; without the EventHandle the "
                   "event can never be cancelled.")

    def begin_file(self) -> None:
        self._dropped: List[Tuple[ast.Call, Optional[ast.ClassDef]]] = []

    def visit_Expr(self, node: ast.Expr) -> None:
        call = _schedule_call(node.value)
        if call is None:
            return
        enclosing = None
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                enclosing = ancestor
                break
        self._dropped.append((call, enclosing))

    def end_file(self) -> None:
        if not self._dropped:
            return
        cancelling_classes, module_cancels = self._cancel_sites()
        for call, enclosing in self._dropped:
            cancels_nearby = (enclosing in cancelling_classes
                              if enclosing is not None else module_cancels)
            if cancels_nearby:
                self.report(call, "EventHandle from %s() is discarded, but "
                                  "this %s cancels timers elsewhere; keep "
                                  "the handle if this event may ever need "
                                  "cancelling"
                            % (call.func.attr,  # type: ignore[union-attr]
                               "class" if enclosing is not None
                               else "module"))

    def _cancel_sites(self) -> Tuple[Set[ast.ClassDef], bool]:
        classes: Set[ast.ClassDef] = set()
        module_level = False
        for node in ast.walk(self.ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "cancel"):
                owner = None
                for ancestor in ancestors(node):
                    if isinstance(ancestor, ast.ClassDef):
                        owner = ancestor
                        break
                if owner is not None:
                    classes.add(owner)
                else:
                    module_level = True
        return classes, module_level


def _constant_value(node: Optional[ast.expr]) -> Optional[float]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _constant_value(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                     (int, float)):
        return float(node.value)
    return None
