"""Event-safety rule pack (EVT001-EVT003).

:class:`repro.sim.engine.Simulator` has three sharp edges these rules
guard: ``run()`` is not re-entrant (calling it from a scheduled callback
raises at runtime — deep in a campaign, hours in), ``schedule()``
rejects negative delays, and cancellation requires keeping the
:class:`EventHandle` that ``schedule()`` returns.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.framework import Rule, ancestors, register

SCHEDULE_ATTRS = ("schedule", "call_at")

#: Receiver names treated as "the simulator" for `.run()` detection.
SIM_RECEIVERS = ("sim", "simulator", "engine")


def _is_sim_receiver(node: ast.expr, sim_locals: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in SIM_RECEIVERS or node.id in sim_locals
    if isinstance(node, ast.Attribute):
        return node.attr in SIM_RECEIVERS
    return False


def _callback_name(node: ast.Call) -> Optional[str]:
    """Bare name of the callback scheduled by a schedule()/call_at() call."""
    callback: Optional[ast.expr] = None
    if len(node.args) >= 2:
        callback = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "callback":
            callback = keyword.value
    if isinstance(callback, ast.Name):
        return callback.id
    if isinstance(callback, ast.Attribute):
        return callback.attr
    return None


def _schedule_call(node: ast.AST) -> Optional[ast.Call]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SCHEDULE_ATTRS):
        return node
    return None


@register
class ReentrantRunRule(Rule):
    id = "EVT001"
    name = "reentrant-run"
    severity = "error"
    description = ("Simulator.run() reachable from a scheduled callback; "
                   "the engine is not re-entrant and raises "
                   "SimulationError at runtime.")

    def begin_file(self) -> None:
        self._scheduled: Set[str] = set()
        self._lambda_runs: List[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        call = _schedule_call(node)
        if call is None:
            return
        name = _callback_name(call)
        if name:
            self._scheduled.add(name)
        # A lambda callback can be checked right here.
        callback = call.args[1] if len(call.args) >= 2 else None
        if isinstance(callback, ast.Lambda):
            for child in ast.walk(callback):
                run = self._run_call(child, set())
                if run is not None:
                    self.report(run, "scheduled lambda calls Simulator.run()"
                                     "; the engine is not re-entrant")

    def end_file(self) -> None:
        functions = self._collect_functions()
        # Transitive closure: which function names are reachable from a
        # scheduled callback through same-file calls?
        reachable = set(self._scheduled)
        frontier = list(reachable)
        while frontier:
            name = frontier.pop()
            for callee in functions.get(name, (set(), []))[0]:
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        for name in sorted(reachable):
            _, run_calls = functions.get(name, (set(), []))
            for run in run_calls:
                self.report(run, "Simulator.run() is reachable from "
                                 "scheduled callback %r; the engine is not "
                                 "re-entrant — restructure as scheduled "
                                 "events" % name)

    def _collect_functions(self
                           ) -> Dict[str, Tuple[Set[str], List[ast.Call]]]:
        """Map function name -> (called names, sim .run() call nodes)."""
        functions: Dict[str, Tuple[Set[str], List[ast.Call]]] = {}
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            sim_locals = {
                target.id
                for stmt in ast.walk(node)
                if isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and (self.ctx.qualname(stmt.value.func) or ""
                     ).endswith("Simulator")
                for target in stmt.targets if isinstance(target, ast.Name)}
            calls: Set[str] = set()
            runs: List[ast.Call] = []
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                run = self._run_call(child, sim_locals)
                if run is not None:
                    runs.append(run)
                elif isinstance(child.func, ast.Name):
                    calls.add(child.func.id)
                elif isinstance(child.func, ast.Attribute):
                    calls.add(child.func.attr)
            functions[node.name] = (calls, runs)
        return functions

    @staticmethod
    def _run_call(node: ast.AST, sim_locals: Set[str]
                  ) -> Optional[ast.Call]:
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("run", "run_until_idle")
                and _is_sim_receiver(node.func.value, sim_locals)):
            return node
        return None


@register
class NegativeDelayRule(Rule):
    id = "EVT002"
    name = "negative-delay"
    severity = "error"
    description = ("A constant negative delay is passed to "
                   "Simulator.schedule(); the engine raises "
                   "SchedulingError for delays in the past.")

    def visit_Call(self, node: ast.Call) -> None:
        call = _schedule_call(node)
        if call is None or call.func.attr != "schedule":  # type: ignore
            return
        delay: Optional[ast.expr] = call.args[0] if call.args else None
        for keyword in call.keywords:
            if keyword.arg == "delay":
                delay = keyword.value
        value = _constant_value(delay)
        if value is not None and value < 0:
            self.report(delay or call,
                        "schedule() is given the constant negative delay "
                        "%r; the engine refuses to schedule in the past — "
                        "use 0.0 for \"now\"" % value)


@register
class DroppedHandleRule(Rule):
    id = "EVT003"
    name = "dropped-handle"
    severity = "warning"
    description = ("schedule()/call_at() result discarded in a scope that "
                   "cancels timers elsewhere; without the EventHandle the "
                   "event can never be cancelled.")

    def begin_file(self) -> None:
        self._dropped: List[Tuple[ast.Call, Optional[ast.ClassDef]]] = []

    def visit_Expr(self, node: ast.Expr) -> None:
        call = _schedule_call(node.value)
        if call is None:
            return
        enclosing = None
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                enclosing = ancestor
                break
        self._dropped.append((call, enclosing))

    def end_file(self) -> None:
        if not self._dropped:
            return
        cancelling_classes, module_cancels = self._cancel_sites()
        for call, enclosing in self._dropped:
            cancels_nearby = (enclosing in cancelling_classes
                              if enclosing is not None else module_cancels)
            if cancels_nearby:
                self.report(call, "EventHandle from %s() is discarded, but "
                                  "this %s cancels timers elsewhere; keep "
                                  "the handle if this event may ever need "
                                  "cancelling"
                            % (call.func.attr,  # type: ignore[union-attr]
                               "class" if enclosing is not None
                               else "module"))

    def _cancel_sites(self) -> Tuple[Set[ast.ClassDef], bool]:
        classes: Set[ast.ClassDef] = set()
        module_level = False
        for node in ast.walk(self.ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "cancel"):
                owner = None
                for ancestor in ancestors(node):
                    if isinstance(ancestor, ast.ClassDef):
                        owner = ancestor
                        break
                if owner is not None:
                    classes.add(owner)
                else:
                    module_level = True
        return classes, module_level


def _constant_value(node: Optional[ast.expr]) -> Optional[float]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _constant_value(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                     (int, float)):
        return float(node.value)
    return None
