"""Determinism-flow rule pack (DET006-DET008).

The per-file determinism rules (DET001-DET005) flag nondeterministic
*call sites*; these project-scope rules flag nondeterministic *flows*:
a wall-clock or entropy value that travels through assignments, helper
returns, and cross-module calls before it lands somewhere that breaks
bit-reproducibility — the event queue, a seed, or an exported trace
field.  The heavy lifting lives in :mod:`repro.lint.dataflow`; each
rule here is a sink query over the shared taint result, and every
finding prints the source site plus the call chain it crossed
(``time.time (host.py:42) via jitter -> backoff``).
"""

from __future__ import annotations

from typing import Optional

from repro.lint.dataflow import TaintAnalysis, format_token
from repro.lint.determinism import (
    MODULE_RANDOM_ATTRS,
    OS_ENTROPY_CALLS,
    WALL_CLOCK_CALLS,
)
from repro.lint.framework import register
from repro.lint.project import (
    CallFacts,
    ModuleFacts,
    ProjectContext,
    ProjectRule,
    SCHEDULE_ATTRS,
)

#: random.* draws that *return* a nondeterministic value (``seed`` and
#: ``shuffle`` mutate in place and are DET003's business, not a flow
#: source).
_RANDOM_DRAWS = MODULE_RANDOM_ATTRS - {"seed", "shuffle"}

#: Sinks for DET008: writes an exporter performs on its output.
_EXPORT_WRITE_ATTRS = ("write", "writelines", "writerow", "dump",
                       "dumps")


def taint_source(call: CallFacts, facts: ModuleFacts) -> Optional[str]:
    """Classify one call site as a nondeterminism source (or not)."""
    target = call.target
    if target in WALL_CLOCK_CALLS or target in OS_ENTROPY_CALLS:
        return target
    if target and target.startswith("random.") \
            and target.split(".", 1)[1] in _RANDOM_DRAWS:
        return target
    return None


def shared_taint(project: ProjectContext) -> TaintAnalysis:
    """One taint analysis per lint invocation, shared by the pack."""
    analysis = getattr(project, "_det_flow_taint", None)
    if analysis is None:
        analysis = TaintAnalysis(project, taint_source)
        analysis.run()
        project._det_flow_taint = analysis  # type: ignore[attr-defined]
    return analysis


def _provenance(tokens) -> str:
    rendered = sorted(format_token(key, via)
                      for key, via in tokens.items())
    head = rendered[0]
    if len(rendered) > 1:
        head += " (+%d more source(s))" % (len(rendered) - 1)
    return head


@register
class ScheduleTaintRule(ProjectRule):
    id = "DET006"
    name = "schedule-taint"
    severity = "error"
    description = ("A nondeterministic value (wall clock, OS entropy, "
                   "module-level random) reaches a schedule()/call_at() "
                   "timing argument through some call chain.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_taint(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            taint = analysis.function_taint(fq)
            for index, call in enumerate(fn.calls):
                if call.attr not in SCHEDULE_ATTRS:
                    continue
                tokens = {}
                for slot in (0, "delay", "time"):
                    tokens.update(taint.call_args[index].get(slot, {}))
                if tokens:
                    self.report(
                        facts.path, call.line,
                        "nondeterministic value reaches the %s() timing "
                        "argument: %s; event times must be derived from "
                        "Simulator.now and seeded streams"
                        % (call.attr, _provenance(tokens)), col=call.col)


@register
class SeedTaintRule(ProjectRule):
    id = "DET007"
    name = "seed-taint"
    severity = "error"
    description = ("A nondeterministic value flows into a seed — a "
                   ".seed() call, a seed= keyword, or a parameter named "
                   "seed/*_seed — making every downstream draw "
                   "irreproducible.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_taint(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            taint = analysis.function_taint(fq)
            for index, call in enumerate(fn.calls):
                tokens = {}
                if call.attr == "seed" or call.bare == "seed":
                    for slot_tokens in taint.call_args[index].values():
                        tokens.update(slot_tokens)
                else:
                    tokens.update(taint.call_args[index].get("seed", {}))
                if tokens:
                    self.report(
                        facts.path, call.line,
                        "nondeterministic value reaches a seed: %s; "
                        "seeds must come from the experiment "
                        "configuration" % _provenance(tokens),
                        col=call.col)
            # Parameters that *are* seeds, fed a tainted argument at
            # some (possibly distant) call site.
            for param in fn.params:
                if param != "seed" and not param.endswith("_seed"):
                    continue
                tokens = analysis.param_in.get(fq, {}).get(param, {})
                if tokens:
                    self.report(
                        facts.path, fn.line,
                        "seed parameter %r of %s() receives a "
                        "nondeterministic value: %s"
                        % (param, fn.name, _provenance(tokens)))


@register
class ExportTaintRule(ProjectRule):
    id = "DET008"
    name = "export-taint"
    severity = "error"
    description = ("A nondeterministic value reaches an exported trace "
                   "field (a write/dump call in exporter code); "
                   "identical runs would produce different artifacts.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_taint(project)
        reported = set()
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            if not self._exporter_scope(facts, fn):
                continue
            taint = analysis.function_taint(fq)
            for index, call in enumerate(fn.calls):
                if call.attr not in _EXPORT_WRITE_ATTRS:
                    continue
                tokens = {}
                for slot_tokens in taint.call_args[index].values():
                    tokens.update(slot_tokens)
                # handle.write(json.dumps(record)) is one sink, not two.
                if tokens and (facts.path, call.line) not in reported:
                    reported.add((facts.path, call.line))
                    self.report(
                        facts.path, call.line,
                        "nondeterministic value reaches exported output "
                        "via .%s(): %s; exported traces must be "
                        "identical across runs of one seed"
                        % (call.attr, _provenance(tokens)),
                        col=call.col)

    @staticmethod
    def _exporter_scope(facts: ModuleFacts, fn) -> bool:
        posix = facts.path.replace("\\", "/")
        return ("export" in facts.module.rsplit(".", 1)[-1]
                or "/obs/" in posix
                or "Exporter" in (fn.cls or ""))
