"""Command-line interface for simlint.

Usage::

    python -m repro.lint [paths...] [--format text|json]
    python -m repro lint [paths...]          # same, via the main CLI
    repro-lint [paths...]                    # console-script entry point

Exit codes: 0 — clean (suppressed findings do not count); 1 — at least
one unsuppressed finding; 2 — configuration error (unknown rule id,
malformed ``[tool.simlint]`` table).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.framework import (
    Finding,
    LintConfig,
    LintConfigError,
    LintRunner,
    all_rules,
    find_pyproject,
    load_config,
)

#: Version of the JSON report schema; bump when the shape changes and
#: update docs/LINTING.md plus tests/test_lint_config.py.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism / unit-safety / event-safety "
                    "checks for the simulation universe.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--config", metavar="PYPROJECT",
                        help="pyproject.toml to read [tool.simlint] from "
                             "(default: nearest to the first path)")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore [tool.simlint] configuration entirely")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list suppressed findings in text output")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_ids(values: Sequence[str]) -> List[str]:
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        pyproject = args.config or find_pyproject(args.paths[0])
        config = load_config(pyproject)
    select = _split_ids(args.select)
    disable = _split_ids(args.disable)
    if select:
        config = LintConfig(enable=tuple(select), disable=config.disable,
                            exclude=config.exclude)
    if disable:
        config = LintConfig(enable=config.enable,
                            disable=config.disable + tuple(disable),
                            exclude=config.exclude)
    config.validate()
    return config


def _render_text(findings: List[Finding], runner: LintRunner,
                 show_suppressed: bool, out) -> None:
    active = [f for f in findings if not f.suppressed]
    shown = findings if show_suppressed else active
    for finding in shown:
        print(finding.render(), file=out)
    suppressed = len(findings) - len(active)
    print("%d file(s) scanned: %d finding(s), %d suppressed"
          % (runner.files_scanned, len(active), suppressed), file=out)


def _render_json(findings: List[Finding], runner: LintRunner, out) -> None:
    active = [f for f in findings if not f.suppressed]
    counts = {severity: 0 for severity in ("error", "warning")}
    for finding in active:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    report = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": runner.files_scanned,
        "counts": counts,
        "suppressed": len(findings) - len(active),
        "findings": [f.as_dict() for f in findings],
    }
    json.dump(report, out, indent=2, sort_keys=True)
    out.write("\n")


def _list_rules(out) -> None:
    for rule_id, rule in sorted(all_rules().items()):
        print("%s %-22s [%s] %s"
              % (rule_id, rule.name, rule.severity, rule.description),
              file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    try:
        config = _resolve_config(args)
        runner = LintRunner(config)
        findings = runner.run_paths(args.paths)
    except LintConfigError as exc:
        print("simlint: configuration error: %s" % exc, file=sys.stderr)
        return 2
    if args.output_format == "json":
        _render_json(findings, runner, sys.stdout)
    else:
        _render_text(findings, runner, args.show_suppressed, sys.stdout)
    return 1 if any(not f.suppressed for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
