"""Command-line interface for simlint.

Usage::

    python -m repro.lint [paths...] [--format text|json|sarif]
    python -m repro lint [paths...]          # same, via the main CLI
    repro-lint [paths...]                    # console-script entry point

Exit codes: 0 — clean (suppressed and baselined findings do not
count); 1 — at least one blocking finding; 2 — configuration error,
unreadable/unparseable file, or an internal rule crash.  Syntax-error
files are reported as ``META001`` findings (the rest of the tree is
still linted) but force exit 2, so CI cannot mistake "could not
analyze" for "analyzed clean".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.framework import (
    Finding,
    LintConfig,
    LintConfigError,
    LintRunner,
    all_rules,
    find_pyproject,
    load_config,
)

#: Version of the JSON report schema; bump when the shape changes and
#: update docs/LINTING.md plus tests/test_lint_config.py.
#: v2: added per-finding "baselined" plus top-level "baselined",
#: "errors", "files_analyzed" and "files_from_cache".
#: v3: added "signatures_from_cache" (inferred unit signatures restored
#: from a warm cache) and, under ``--stats``, a "stats" section with
#: per-rule-pack timing.
#: v4: rule set gained the effect-parity (EFF001-EFF004, RPLY rebuilt
#: on derived summaries) and RNG-lineage (RNG001-RNG003) packs; the
#: "stats" section gained the "simflow-engine" row.
JSON_SCHEMA_VERSION = 4


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Whole-project determinism / unit-safety / "
                    "event-safety / shard-safety / replay-safety "
                    "checks for the simulation universe.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        metavar="PATH",
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (default: text)")
    parser.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--config", metavar="PYPROJECT",
                        help="pyproject.toml to read [tool.simlint] from "
                             "(default: nearest to the first path)")
    parser.add_argument("--no-config", action="store_true",
                        help="ignore [tool.simlint] configuration entirely")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accept findings recorded in this baseline "
                             "file (see --write-baseline)")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record the run's blocking findings to FILE "
                             "and exit 0")
    parser.add_argument("--emit-effects", action="store_true",
                        help="regenerate the REPLICATED_EFFECTS artifact "
                             "(sim/replay/effects.py) from the derived "
                             "effect closures and exit 0")
    parser.add_argument("--cache", metavar="FILE",
                        help="incremental cache file: unchanged files "
                             "are restored instead of re-analyzed")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore any cache configured in pyproject")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list suppressed findings in text output")
    parser.add_argument("--stats", action="store_true",
                        help="measure per-rule-pack analyzer time and "
                             "report it (text: a table on stderr; json: "
                             "a \"stats\" section)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split_ids(values: Sequence[str]) -> List[str]:
    ids: List[str] = []
    for value in values:
        ids.extend(part.strip() for part in value.split(",") if part.strip())
    return ids


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        pyproject = args.config or find_pyproject(args.paths[0])
        config = load_config(pyproject)
    select = _split_ids(args.select)
    disable = _split_ids(args.disable)
    if select:
        config = LintConfig(enable=tuple(select), disable=config.disable,
                            exclude=config.exclude,
                            baseline=config.baseline, cache=config.cache)
    if disable:
        config = LintConfig(enable=config.enable,
                            disable=config.disable + tuple(disable),
                            exclude=config.exclude,
                            baseline=config.baseline, cache=config.cache)
    if args.baseline:
        config.baseline = args.baseline
    if args.cache:
        config.cache = args.cache
    if args.no_cache:
        config.cache = None
    config.validate()
    return config


def _pack_times(runner: LintRunner) -> dict:
    """Aggregate per-rule wall time to rule packs (rule-pack module
    name; the shared inference engine keeps its own row)."""
    rules = all_rules()
    packs: dict = {}
    for key, seconds in runner.rule_times.items():
        cls = rules.get(key)
        pack = (cls.__module__.rsplit(".", 1)[-1] if cls is not None
                else key)
        packs[pack] = packs.get(pack, 0.0) + seconds
    return packs


def _render_stats(runner: LintRunner, out) -> None:
    packs = _pack_times(runner)
    total = sum(packs.values())
    print("analyzer time by rule pack:", file=out)
    for pack in sorted(packs, key=lambda p: (-packs[p], p)):
        print("  %-20s %8.1f ms" % (pack, packs[pack] * 1000.0),
              file=out)
    print("  %-20s %8.1f ms" % ("total", total * 1000.0), file=out)


def _render_text(findings: List[Finding], runner: LintRunner,
                 show_suppressed: bool, out) -> None:
    blocking = [f for f in findings if f.blocking]
    shown = findings if show_suppressed \
        else [f for f in findings if not f.suppressed]
    for finding in shown:
        print(finding.render(), file=out)
    suppressed = sum(1 for f in findings if f.suppressed)
    baselined = sum(1 for f in findings if f.baselined)
    cached = (", %d from cache" % runner.files_from_cache
              if runner.files_from_cache else "")
    if runner.signatures_from_cache:
        cached += (", %d inferred signature(s) restored"
                   % runner.signatures_from_cache)
    print("%d file(s) scanned%s: %d finding(s), %d suppressed, "
          "%d baselined, %d error(s)"
          % (runner.files_scanned, cached, len(blocking), suppressed,
             baselined, runner.errors), file=out)


def _render_json(findings: List[Finding], runner: LintRunner, out) -> None:
    blocking = [f for f in findings if f.blocking]
    counts = {severity: 0 for severity in ("error", "warning")}
    for finding in blocking:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    report = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": runner.files_scanned,
        "files_analyzed": runner.files_analyzed,
        "files_from_cache": runner.files_from_cache,
        "signatures_from_cache": runner.signatures_from_cache,
        "errors": runner.errors,
        "counts": counts,
        "suppressed": sum(1 for f in findings if f.suppressed),
        "baselined": sum(1 for f in findings if f.baselined),
        "findings": [f.as_dict() for f in findings],
    }
    if runner.collect_stats:
        report["stats"] = {"rule_pack_seconds": _pack_times(runner)}
    json.dump(report, out, indent=2, sort_keys=True)
    out.write("\n")


def _render_sarif(findings: List[Finding], out) -> None:
    from repro import __version__
    from repro.lint.sarif import sarif_report
    report = sarif_report(findings, all_rules(), __version__)
    json.dump(report, out, indent=2, sort_keys=True)
    out.write("\n")


def _list_rules(out) -> None:
    for rule_id, rule in sorted(all_rules().items()):
        scope = getattr(rule, "scope", "file")
        print("%s %-22s [%s/%s] %s"
              % (rule_id, rule.name, rule.severity, scope,
                 rule.description), file=out)


def _emit_effects(runner: LintRunner) -> int:
    """Regenerate the REPLICATED_EFFECTS artifact from the derived
    effect closures (the ``--emit-effects`` flow)."""
    from repro.lint.effectflow import replication_roots, shared_effects
    from repro.lint.effects_pack import (
        _find_allowlist,
        allowlist_site_index,
        derive_allowlist,
        render_effects_module,
    )
    from repro.lint.project import ProjectContext
    project = ProjectContext(list(runner._facts_by_path.values()))
    allowlist = _find_allowlist(project)
    if allowlist is None:
        print("simlint: --emit-effects found no module defining "
              "REPLICATED_EFFECTS under a replay path in the linted "
              "file set", file=sys.stderr)
        return 2
    if not replication_roots(project):
        print("simlint: --emit-effects found no replication root "
              "(_replay/_materialize under a replay/analytic path) in "
              "the linted file set", file=sys.stderr)
        return 2
    analysis = shared_effects(project)
    derived = derive_allowlist(project, analysis)
    path = allowlist[0]
    text = render_effects_module(derived, allowlist_site_index(analysis))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print("simlint: wrote %d replicated-effect signature(s) to %s"
          % (len(derived), path), file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    try:
        config = _resolve_config(args)
        runner = LintRunner(config)
        runner.collect_stats = args.stats
        findings = runner.run_paths(args.paths)
        if args.emit_effects:
            return _emit_effects(runner)
        if args.write_baseline:
            from repro.lint.baseline import write_baseline
            entries = write_baseline(args.write_baseline, findings)
            print("simlint: wrote %d baseline entr%s to %s"
                  % (entries, "y" if entries == 1 else "ies",
                     args.write_baseline), file=sys.stderr)
            return 0
        if config.baseline:
            from repro.lint.baseline import apply_baseline, load_baseline
            apply_baseline(findings, load_baseline(config.baseline))
    except LintConfigError as exc:
        print("simlint: configuration error: %s" % exc, file=sys.stderr)
        return 2
    if args.output_format == "json":
        _render_json(findings, runner, sys.stdout)
    elif args.output_format == "sarif":
        _render_sarif(findings, sys.stdout)
    else:
        _render_text(findings, runner, args.show_suppressed, sys.stdout)
        if args.stats:
            _render_stats(runner, sys.stderr)
    if runner.errors:
        return 2
    return 1 if any(f.blocking for f in findings) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
