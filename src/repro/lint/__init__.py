"""simlint — static analysis for the simulation universe.

Seven rule packs guard the invariants the paper's numbers rest on:

* :mod:`repro.lint.determinism` (DET001-DET005) — no host clocks, OS
  entropy, shared global ``random``, salted ``hash()`` seeds, or
  set-iteration order leaking into the event queue.
* :mod:`repro.lint.determinism_flow` (DET006-DET008) — no
  nondeterministic value *flowing* into ``schedule()``, a seed, or an
  exported trace field through any cross-module call chain
  (interprocedural taint over :mod:`repro.lint.dataflow`).
* :mod:`repro.lint.unit_safety` (UNIT001-UNIT004) — suffix-checked unit
  discipline (``_ms``/``_s``/``_miles``/``_bytes``/``_bps``) with
  conversions through :mod:`repro.sim.units` only.
* :mod:`repro.lint.unit_flow` (UNIT005-UNIT009) — the same unit bugs
  on values with *no suffix anywhere on the path*: interprocedural
  unit/dimension inference (:mod:`repro.lint.simtype`) catches mixed
  arithmetic, wrong-unit ``schedule()``/histogram sinks, inconsistent
  return units, signature-disagreeing call sites, and double
  conversions; ``# simlint: unit[TOKEN]`` annotations assert units
  where no suffix fits.
* :mod:`repro.lint.event_safety` (EVT001-EVT003) — no re-entrant
  ``Simulator.run()`` (cross-module call graph), no negative constant
  delays, no discarded :class:`~repro.sim.engine.EventHandle` where
  cancellation matters.
* :mod:`repro.lint.shard_safety` (SHARD001-SHARD003) — no module-level
  state written in shard-reachable code, no set-order-dependent
  merges, no unpaired ``fork_mark()``.
* :mod:`repro.lint.replay_safety` (RPLY001-RPLY002) — session-path
  side effects stay in lock-step with the replay cache's
  replicated-effects allowlist, in both directions.

Run it with ``python -m repro.lint src/repro`` (or ``python -m repro
lint ...`` / the ``repro-lint`` console script), configure it under
``[tool.simlint]`` in ``pyproject.toml``, and silence intentional
deviations with ``# simlint: ignore[RULE]`` comments.  Production
machinery: ``--format sarif`` (SARIF 2.1.0), ``--baseline`` for
incremental adoption, ``--cache`` for content-hash incremental
re-runs.  See ``docs/LINTING.md`` for the full rule catalogue.
"""

from repro.lint.framework import (
    Finding,
    FileContext,
    LintConfig,
    LintConfigError,
    LintRunner,
    Rule,
    all_rules,
    find_pyproject,
    load_config,
    register,
)
from repro.lint.project import (
    ModuleFacts,
    ProjectContext,
    ProjectRule,
    extract_module_facts,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintConfigError",
    "LintRunner",
    "ModuleFacts",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "extract_module_facts",
    "find_pyproject",
    "load_config",
    "register",
]
