"""simlint — static analysis for the simulation universe.

Three rule packs guard the invariants the paper's numbers rest on:

* :mod:`repro.lint.determinism` (DET001-DET005) — no host clocks, OS
  entropy, shared global ``random``, salted ``hash()`` seeds, or
  set-iteration order leaking into the event queue.
* :mod:`repro.lint.unit_safety` (UNIT001-UNIT004) — suffix-checked unit
  discipline (``_ms``/``_s``/``_miles``/``_bytes``/``_bps``) with
  conversions through :mod:`repro.sim.units` only.
* :mod:`repro.lint.event_safety` (EVT001-EVT003) — no re-entrant
  ``Simulator.run()``, no negative constant delays, no discarded
  :class:`~repro.sim.engine.EventHandle` where cancellation matters.

Run it with ``python -m repro.lint src/repro`` (or ``python -m repro
lint ...`` / the ``repro-lint`` console script), configure it under
``[tool.simlint]`` in ``pyproject.toml``, and silence intentional
deviations with ``# simlint: ignore[RULE]`` comments.  See
``docs/LINTING.md`` for the full rule catalogue.
"""

from repro.lint.framework import (
    Finding,
    FileContext,
    LintConfig,
    LintConfigError,
    LintRunner,
    Rule,
    all_rules,
    find_pyproject,
    load_config,
    register,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintConfigError",
    "LintRunner",
    "Rule",
    "all_rules",
    "find_pyproject",
    "load_config",
    "register",
]
