"""RNG-lineage rule pack (RNG001-RNG003).

Sharded and streaming campaigns are bit-identical to their serial runs
only because every stochastic decision is drawn from a *keyed* stream:
``derive_seed(seed, "ns/...")`` and ``RandomStreams.keyed(name, key)``
give each (namespace, entity) pair its own deterministic generator, so
draw order — which differs across shard interleavings — cannot change
any value.  Shared sequential streams (``streams.get(name)`` and the
convenience draws layered on it) are only safe in strictly serial
code.  Three lineage bugs break the guarantee silently; all three need
the interprocedural effect summaries of :mod:`repro.lint.effectflow`,
because the draw usually hides several helper calls below the shard
entry point:

* RNG001 — a shared-stream draw in code reachable from a shard entry
  point (a :func:`repro.parallel.pool.map_shards` worker): each worker
  process advances its *own* copy of the sequence, so the values
  depend on how work was sharded.  Functions that draw from keyed
  streams alongside the shared fallback (the
  ``FrontEndLoadModel.draw`` pattern, where ``keyed_draws`` selects
  the lineage at runtime) are exempt — the keyed path is the one
  sharded campaigns configure.
* RNG002 — two keyed draw sites whose key-namespace format strings
  can collide: ``"cache-lab/%s"`` and ``"cache-lab/stream/%s"`` both
  match ``cache-lab/stream/x``, which silently correlates two streams
  that were meant to be independent.  Namespaces ending in a
  ``#<ordinal>`` hole collide only with matching prefixes, because
  ``#`` never appears inside a formatted hole by convention
  (``RandomStreams.keyed`` joins name and key with ``#``).
* RNG003 — a keyed draw whose ordinal counter (``self._seq``-style,
  fed into the key) is incremented by a *different* function of the
  same class: the counter's value then depends on which code path ran
  first, which is exactly the shard-variant state keying was supposed
  to remove.

All rules stand down when the linted file set has no shard dispatch
(RNG001) or no keyed draw sites (RNG002/RNG003).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple

from repro.lint.effectflow import EffectSite, shared_effects
from repro.lint.framework import register
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.shard_safety import shard_entry_points

#: Keyed signatures with no statically-resolvable literal content;
#: skipped by the collision check (a fully-dynamic key matches
#: everything and proves nothing).
DYNAMIC = "<dynamic>"


@functools.lru_cache(maxsize=4096)
def _patterns_collide(a: str, b: str) -> bool:
    """Can two key-namespace skeletons produce the same key?

    ``*`` stands for one-or-more characters excluding ``#`` (a
    formatted hole; ``#`` is the name/key separator
    ``RandomStreams.keyed`` appends, so a hole never contains it).
    Literal characters must match exactly.
    """
    @functools.lru_cache(maxsize=None)
    def walk(i: int, j: int) -> bool:
        if i == len(a) and j == len(b):
            return True
        if i == len(a) or j == len(b):
            return False
        ca, cb = a[i], b[j]
        if ca == "*" and cb == "*":
            return walk(i + 1, j + 1) or walk(i + 1, j) \
                or walk(i, j + 1)
        if ca == "*":
            return cb != "#" and (walk(i + 1, j + 1) or walk(i, j + 1))
        if cb == "*":
            return ca != "#" and (walk(i + 1, j + 1) or walk(i + 1, j))
        return ca == cb and walk(i + 1, j + 1)

    return walk(0, 0)


def _rng_sites(project: ProjectContext, lineage: str
               ) -> List[Tuple[str, EffectSite]]:
    """(owning qualname, site) for every RNG draw of one lineage.

    Sites inside a module that *defines* ``derive_seed`` are the keying
    mechanism itself (``RandomStreams.keyed`` joining name and key,
    ``spawn`` prefixing its namespace) — every keyed draw in the
    project flows through them, so they are not draw sites of their
    own.
    """
    analysis = shared_effects(project)
    out: List[Tuple[str, EffectSite]] = []
    for qualname in sorted(analysis.sites):
        facts, _fn = project.functions[qualname]
        if any(fn.name == "derive_seed"
               for fn in facts.functions.values()):
            continue
        for site in analysis.sites[qualname]:
            if site.effect[0] == "rng" and site.effect[2] == lineage:
                out.append((qualname, site))
    return out


@register
class SharedDrawInShardCodeRule(ProjectRule):
    id = "RNG001"
    name = "shared-draw-in-shard-code"
    severity = "error"
    description = ("Shared sequential stream drawn in code reachable "
                   "from a shard entry point; values depend on the "
                   "shard interleaving.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        entries = shard_entry_points(project)
        if not entries:
            return
        analysis = shared_effects(project)
        parents = analysis.reachable_from(
            entry for entry, _path, _line in entries)
        for qualname, site in _rng_sites(project, "shared"):
            if qualname not in parents:
                continue
            local = analysis.sites.get(qualname, ())
            if any(s.effect[0] == "rng" and s.effect[2] == "keyed"
                   for s in local):
                # The keyed-draw sibling path: sharded campaigns select
                # it at runtime (FrontEndLoadModel.draw).
                continue
            facts, _fn = project.functions[qualname]
            self.report(
                facts.path, site.line,
                "shared-stream draw %r is reachable from shard entry "
                "point(s) (%s); each worker advances its own copy of "
                "the sequence, so results depend on the sharding — "
                "draw from a keyed stream instead"
                % (site.effect[1],
                   analysis.project.witness_chain(parents, qualname)))


@register
class KeyNamespaceCollisionRule(ProjectRule):
    id = "RNG002"
    name = "key-namespace-collision"
    severity = "error"
    description = ("Two derive_seed/keyed call sites can emit the same "
                   "key namespace; the streams silently correlate.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        sites = [(qualname, site)
                 for qualname, site in _rng_sites(project, "keyed")
                 if site.effect[1] != DYNAMIC]
        for index, (qual_a, site_a) in enumerate(sites):
            for qual_b, site_b in sites[index + 1:]:
                skel_a, skel_b = site_a.effect[1], site_b.effect[1]
                mod_a = project.functions[qual_a][0].module
                mod_b = project.functions[qual_b][0].module
                if skel_a == skel_b and mod_a == mod_b:
                    # One subsystem reusing its own namespace across
                    # sites is the keyed idiom, not a collision.
                    continue
                if not _patterns_collide(skel_a, skel_b):
                    continue
                facts_b, _fn = project.functions[qual_b]
                facts_a, _fn = project.functions[qual_a]
                self.report(
                    facts_b.path, site_b.line,
                    "key namespace %r can collide with %r "
                    "(%s:%d); colliding derive_seed/keyed namespaces "
                    "silently correlate streams that must be "
                    "independent — disambiguate the format strings"
                    % (skel_b, skel_a, facts_a.path, site_a.line))


@register
class SharedOrdinalCounterRule(ProjectRule):
    id = "RNG003"
    name = "shared-ordinal-counter"
    severity = "error"
    description = ("Keyed draw's ordinal counter is incremented by a "
                   "different function; the key depends on which code "
                   "path ran first.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        # (module, class) -> counter name -> incrementing qualnames
        incs: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
        for qualname in sorted(project.functions):
            facts, fn = project.functions[qualname]
            for name, _line in fn.counter_incs:
                scope = (facts.module, fn.cls or "")
                incs.setdefault(scope, {}).setdefault(
                    name, []).append(qualname)
        for qualname, site in _rng_sites(project, "keyed"):
            facts, fn = project.functions[qualname]
            scope = (facts.module, fn.cls or "")
            local = set(fn.params)
            for targets, _names, _calls, _line in fn.assigns:
                local.update(targets)
            for token in site.tokens:
                if token in local:
                    # The counter value arrived as a parameter or was
                    # computed locally: plain data flow, not shared
                    # mutable ordinal state.
                    continue
                others = [who for who
                          in incs.get(scope, {}).get(token, [])
                          if who != qualname]
                if not others:
                    continue
                self.report(
                    facts.path, site.line,
                    "keyed draw's ordinal counter %r is incremented "
                    "by %s; the key then depends on which code path "
                    "ran first — give each draw site its own counter"
                    % (token, ", ".join(sorted(
                        _short(who) for who in others))))

    # one finding per (site, counter) pair, not per incrementer


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
