"""simflow — interprocedural side-effect inference for simlint.

The replay cache (:mod:`repro.sim.replay`) and the analytic tier
(:mod:`repro.sim.analytic`) skip the packet-level simulation of a
session but must leave the *identical* server-side footprint — the
ground-truth logs, the obs counters, the burned ephemeral port.  The
RPLY rules originally policed that contract with a hand-curated
allowlist compared against syntactic effect shapes, which is exactly
one helper-function hop away from being blind: an effect buried inside
``record_replayed_fetch`` is invisible to any per-site comparison.

This module closes the gap the same way :mod:`repro.lint.simtype`
closed the unit gap: a bottom-up fixpoint over the project call graph
computes, per function, the set of *effects* its transitive closure can
perform.  An effect is a plain ``(kind, signature, detail)`` tuple:

``("log", "fetch_log[]", "")``
    subscript store into a ``*_log`` attribute — ground-truth records;
``("call", "register_keywords", "")``
    call to an effect-shaped method (``record_*`` / ``register*`` /
    ``log_*`` / ``inject``) — registry writes and capture injection;
``("port", "reserve_port", "")``
    an ephemeral-port burn — ``reserve_port()`` or a ``.allocate()``
    on a port-pool receiver, canonicalized to one signature so the
    packet path's allocation and the manager's replication compare
    equal;
``("metric", "fe.requests", "host")``
    an obs metric write (``metrics.inc`` / ``metrics.observe``); the
    detail is the declared scope (``sim`` / ``host``, the runtime
    default) and the signature is the metric-name skeleton (``*`` when
    not statically resolvable);
``("cache", "insert", "")`` / ``("cache", "evict", "")``
    content-cache admissions and evictions;
``("rng", "cache/*/admit#*", "keyed")``
    an RNG draw, tagged with its stream lineage: ``keyed`` for
    ``derive_seed`` / ``RandomStreams.keyed`` / ``.spawn`` draws (the
    signature is the key-namespace skeleton when statically
    resolvable), ``shared`` for sequential named streams
    (``.get`` / ``.uniform`` / ``.lognormal`` / ``.bernoulli``).

The per-function *summary* is a frozen set of effects; :func:`join` is
set union, which makes the summary lattice a trivially associative,
commutative, idempotent join-semilattice (property-tested in
``tests/test_lint_effects.py``).  The fixpoint propagates summaries
bottom-up over an edge map richer than the plain call graph: scheduled
callbacks and bare ``self.method`` *references* (a timeline entry
passing ``self._server_effects`` uncalled) also contribute edges, so
deferred replication work is part of a manager's closure.

Rule packs consuming the summaries: :mod:`repro.lint.effects_pack`
(RPLY001/RPLY002 rebuilt, EFF001–EFF004 effect parity) and
:mod:`repro.lint.rng_lineage` (RNG001–RNG003 draw lineage).  Everything
here is pure computation over cached facts — no ASTs are re-walked.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.project import (
    ArgFacts,
    CallFacts,
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
)

__all__ = [
    "Effect",
    "EffectSite",
    "EffectAnalysis",
    "PARITY_KINDS",
    "SESSION_SEGMENTS",
    "is_session_module",
    "join",
    "replication_roots",
    "shared_effects",
]

#: An effect: (kind, signature, detail) — see the module docstring.
Effect = Tuple[str, str, str]

#: Path segments that mark a module as packet-session-path code.
SESSION_SEGMENTS = ("tcp", "services", "measure")

#: Effect kinds compared by the replay/analytic parity rules (metric
#: scopes get their own rule, cache/rng effects their own packs).
PARITY_KINDS = ("log", "call", "port")

#: Method-name shapes treated as session side effects.
EFFECT_PREFIXES = ("record_", "register", "log_")
EFFECT_METHODS = ("inject",)

#: Shared-sequential draw methods on a ``RandomStreams``-like receiver.
SHARED_DRAWS = ("get", "uniform", "lognormal", "bernoulli",
                "expovariate", "choice")

#: Function names that mark a fast-path replication root when defined
#: in a module under a ``replay``/``analytic`` path.
ROOT_NAMES = ("_replay", "_materialize")
ROOT_SEGMENTS = ("replay", "analytic")


@dataclasses.dataclass(frozen=True)
class EffectSite:
    """One effect occurrence: the effect plus where it happens."""

    effect: Effect
    line: int
    #: names/attributes feeding the key's dynamic holes (rng only) —
    #: the RNG003 ordinal-counter check reads these
    tokens: Tuple[str, ...] = ()


def join(*summaries: Iterable[Effect]) -> FrozenSet[Effect]:
    """Join of effect summaries: plain set union.

    The lattice laws (associativity, commutativity, idempotence) are
    what make the bottom-up fixpoint order-independent; they are
    property-tested rather than assumed.
    """
    merged: Set[Effect] = set()
    for summary in summaries:
        merged.update(summary)
    return frozenset(merged)


def _path_parts(facts: ModuleFacts) -> List[str]:
    return str(facts.path).replace("\\", "/").split("/")


def is_session_module(facts: ModuleFacts) -> bool:
    parts = _path_parts(facts)
    return any(segment in parts for segment in SESSION_SEGMENTS)


def replication_roots(project: ProjectContext) -> List[str]:
    """Qualnames of the fast-path replication entry points.

    A root is a function named ``_replay`` or ``_materialize`` defined
    in a module whose path crosses a ``replay`` or ``analytic``
    directory — :meth:`SessionReplayManager._replay
    <repro.sim.replay.manager.SessionReplayManager>` and
    :meth:`TieredSessionManager._materialize
    <repro.sim.analytic.manager.TieredSessionManager>` on the real
    tree.  Everything such a root can reach (its effect closure) is
    what the fast path replicates.
    """
    roots: List[str] = []
    for full in sorted(project.functions):
        facts, fn = project.functions[full]
        if fn.name not in ROOT_NAMES:
            continue
        parts = _path_parts(facts)
        if any(segment in parts for segment in ROOT_SEGMENTS):
            roots.append(full)
    return roots


# ---------------------------------------------------------------------------
# local effect extraction
# ---------------------------------------------------------------------------
def _arg(call: CallFacts, slot) -> Optional[ArgFacts]:
    for arg in call.args:
        if arg.slot == slot:
            return arg
    return None


def _skel_text(arg: Optional[ArgFacts]) -> Optional[str]:
    if arg is None or arg.fstr is None:
        return None
    return arg.fstr[0]


def _skel_tokens(arg: Optional[ArgFacts]) -> Tuple[str, ...]:
    if arg is None:
        return ()
    tokens = list(arg.fstr[1]) if arg.fstr is not None else []
    for name in arg.names:
        if name not in tokens:
            tokens.append(name)
    return tuple(tokens)


def _is_derive_seed(call: CallFacts) -> bool:
    if (call.bare or call.attr) == "derive_seed":
        return True
    return bool(call.target) and call.target.endswith(".derive_seed")


def _rng_site(call: CallFacts) -> Optional[EffectSite]:
    if _is_derive_seed(call):
        key = _arg(call, 1)
        signature = _skel_text(key) or "<dynamic>"
        return EffectSite(("rng", signature, "keyed"), call.line,
                          _skel_tokens(key))
    # Only RandomStreams-like receivers: a bare ``random.Random``
    # passed in by a caller (conventionally named ``rng``) is already
    # keyed-seeded at its creation site, which is where lineage is
    # decided and checked.
    receiver = (call.receiver or "").lower()
    if "stream" not in receiver:
        return None
    if call.attr == "keyed":
        name = _skel_text(_arg(call, 0))
        signature = (name + "#*") if name is not None else "<dynamic>"
        tokens = _skel_tokens(_arg(call, 0)) + _skel_tokens(_arg(call, 1))
        return EffectSite(("rng", signature, "keyed"), call.line, tokens)
    if call.attr == "spawn":
        name = _skel_text(_arg(call, 0)) or "*"
        return EffectSite(("rng", "spawn/" + name, "keyed"), call.line,
                          _skel_tokens(_arg(call, 0)))
    if call.attr in SHARED_DRAWS:
        signature = _skel_text(_arg(call, 0)) or "<dynamic>"
        return EffectSite(("rng", signature, "shared"), call.line)
    return None


def _metric_scope(call: CallFacts) -> str:
    scope = _arg(call, "scope")
    if scope is None:
        return "host"  # the runtime default (obs/metrics.py)
    if "SCOPE_SIM" in scope.names:
        return "sim"
    if "SCOPE_HOST" in scope.names:
        return "host"
    text = _skel_text(scope)
    if text in ("sim", "host"):
        return text
    return "?"  # dynamic scope: not comparable


def _cache_receiver(call: CallFacts, fn: FunctionFacts) -> bool:
    receiver = (call.receiver or "").lower()
    if "cache" in receiver or "tier" in receiver:
        return True
    return (call.receiver == "self" and fn.cls is not None
            and ("Cache" in fn.cls or "Tier" in fn.cls))


def _call_site(call: CallFacts, fn: FunctionFacts) -> Optional[EffectSite]:
    """Classify one call site into an effect, or None."""
    rng = _rng_site(call)
    if rng is not None:
        return rng
    attr = call.attr
    if attr is None:
        return None
    if attr == "reserve_port" or (
            attr == "allocate" and "port" in (call.receiver or "").lower()):
        return EffectSite(("port", "reserve_port", ""), call.line)
    if attr in ("inc", "observe") and call.receiver == "metrics":
        name = _skel_text(_arg(call, 0))
        if name is None or name.replace("*", "") == "":
            name = "*"
        return EffectSite(("metric", name, _metric_scope(call)), call.line)
    if _cache_receiver(call, fn):
        if attr == "insert":
            return EffectSite(("cache", "insert", ""), call.line)
        if attr in ("evict", "evict_until", "_evict_until"):
            return EffectSite(("cache", "evict", ""), call.line)
    if attr in EFFECT_METHODS or attr.startswith(EFFECT_PREFIXES):
        return EffectSite(("call", attr, ""), call.line)
    return None


def local_sites(fn: FunctionFacts) -> List[EffectSite]:
    """Every effect this function performs *directly* (no closure)."""
    sites: List[EffectSite] = []
    for attr, line in fn.attr_subscript_writes:
        if attr.endswith("_log"):
            sites.append(EffectSite(("log", attr + "[]", ""), line))
    for call in fn.calls:
        site = _call_site(call, fn)
        if site is not None:
            sites.append(site)
    return sites


# ---------------------------------------------------------------------------
# the analysis
# ---------------------------------------------------------------------------
class EffectAnalysis:
    """Per-function effect summaries over one :class:`ProjectContext`.

    ``sites[qualname]`` holds the function's *local* effect sites;
    ``summaries[qualname]`` the transitive closure (local effects
    joined with every reachable callee's summary).  ``edges`` is the
    enriched call graph the closure runs on: resolved calls, scheduled
    callbacks, and bare ``self.method`` references.
    """

    def __init__(self, project: ProjectContext):
        self.project = project
        self.sites: Dict[str, List[EffectSite]] = {}
        for full in sorted(project.functions):
            _facts, fn = project.functions[full]
            found = local_sites(fn)
            if found:
                self.sites[full] = found
        self.edges = self._build_edges()
        self.summaries = self._fixpoint()

    # -- edge map -------------------------------------------------------
    def _build_edges(self) -> Dict[str, Set[str]]:
        project = self.project
        edges: Dict[str, Set[str]] = {
            caller: set(callees)
            for caller, callees in project.call_edges().items()}
        for full, (facts, fn) in project.functions.items():
            out = edges.setdefault(full, set())
            if fn.cls is not None:
                for ref in fn.self_refs:
                    candidate = "%s.%s.%s" % (facts.module, fn.cls, ref)
                    if candidate in project.functions:
                        out.add(candidate)
            for call in fn.calls:
                if call.callback:
                    out.update(project.resolve_callback(facts,
                                                        call.callback))
        return edges

    # -- fixpoint -------------------------------------------------------
    def _fixpoint(self) -> Dict[str, FrozenSet[Effect]]:
        locals_: Dict[str, FrozenSet[Effect]] = {
            full: frozenset(site.effect for site in sites)
            for full, sites in self.sites.items()}
        callers: Dict[str, Set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)
        empty: FrozenSet[Effect] = frozenset()
        summaries: Dict[str, FrozenSet[Effect]] = {
            full: locals_.get(full, empty)
            for full in self.project.functions}
        work = sorted(summaries)
        queued = set(work)
        while work:
            current = work.pop()
            queued.discard(current)
            merged = join(locals_.get(current, empty),
                          *(summaries.get(callee, empty)
                            for callee in self.edges.get(current, ())))
            if merged != summaries[current]:
                summaries[current] = merged
                for caller in callers.get(current, ()):
                    if caller in summaries and caller not in queued:
                        queued.add(caller)
                        work.append(caller)
        return summaries

    # -- queries --------------------------------------------------------
    def closure(self, qualname: str) -> FrozenSet[Effect]:
        return self.summaries.get(qualname, frozenset())

    def reachable_from(self, roots: Iterable[str]
                       ) -> Dict[str, Optional[str]]:
        """BFS closure over the *enriched* edge map, witness-parented
        exactly like :meth:`ProjectContext.reachable_from`."""
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.project.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return parents


def shared_effects(project: ProjectContext) -> EffectAnalysis:
    """The one :class:`EffectAnalysis` shared by every consuming rule.

    Memoized on the project context, so the EFF, RPLY and RNG packs —
    and the ``--stats`` ``simflow-engine`` row — all account the same
    single fixpoint run.
    """
    analysis = getattr(project, "_simflow_effects", None)
    if analysis is None:
        analysis = EffectAnalysis(project)
        project._simflow_effects = analysis  # type: ignore[attr-defined]
    return analysis
