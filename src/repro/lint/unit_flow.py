"""Unit-flow rule pack (UNIT005-UNIT009).

The suffix rules (UNIT001-UNIT004) check names; these project-scope
rules check *values*, using the interprocedural inference engine in
:mod:`repro.lint.simtype`: a unit propagated through unsuffixed locals,
helper returns, container fields, and cross-module calls is held to the
same algebra as a suffixed one.  Every rule skips findings the suffix
rules already report (both operands syntactically visible), so one
defect maps to one diagnostic.

* **UNIT005** — ``+``/``-``/comparison mixing inferred units where at
  least one side carries no suffix.
* **UNIT006** — a value with a known wrong unit entering a sink with a
  fixed expected unit: ``schedule()``/``call_at()`` seconds slots, and
  the ``value`` argument of obs ``Histogram.observe`` /
  ``MetricsRegistry.observe`` (histogram bounds are in seconds).
* **UNIT007** — one function returning inconsistent inferred units on
  different branches (``return rtt_ms`` here, ``return rtt_ms / 1000``
  there); annotate the ``def`` line to declare the intended unit.
* **UNIT008** — a call site passing a unit that disagrees with the
  callee's inferred signature (parameter suffix, body demand, or
  conversion-helper table) when neither side is suffix-visible at the
  call.
* **UNIT009** — a scale-conversion result immediately fed into another
  scale conversion (``units.seconds_to_ms(units.ms(x))``), directly or
  through one local; double conversions are always a unit bookkeeping
  error or dead code.
"""

from __future__ import annotations

from typing import Optional

from repro.lint.framework import register
from repro.lint.project import (
    FunctionFacts,
    ProjectContext,
    ProjectRule,
    SCHEDULE_ATTRS,
)
from repro.lint.simtype import (
    SCALE_CONVERSIONS,
    UnitAnalysis,
    conversion_tail,
    describe_unit,
    is_concrete,
    shared_units,
    syntactic_unit,
)
from repro.lint.unit_safety import (
    CONVERSION_PARAMS,
    mismatch_kind,
    unit_of_name,
)

#: Classes whose ``observe(value)`` records into a seconds-bounded
#: histogram (see ``repro.obs.metrics.DEFAULT_BOUNDS``).
_OBSERVE_CLASSES = ("Histogram", "MetricsRegistry")

#: Schedule timing argument slots, positional and keyword.
_SCHEDULE_SLOTS = (0, "delay", "time")

_SECONDS = ("time", "s")


def _arg_expr(call, slot) -> Optional[list]:
    for arg in call.args:
        if arg.slot == slot:
            return arg.expr
    return None


def _slot_syntactic(call, slot, fn: FunctionFacts) -> bool:
    expr = _arg_expr(call, slot)
    return expr is not None and syntactic_unit(expr, fn) is not None


@register
class InferredArithmeticRule(ProjectRule):
    id = "UNIT005"
    name = "inferred-arithmetic-unit"
    severity = "error"
    description = ("Addition, subtraction, or comparison mixes values "
                   "whose *inferred* units disagree — at least one side "
                   "carries no suffix, so the per-file UNIT002 rule "
                   "cannot see the mix.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_units(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            detail = analysis.function_units(fq)
            for line, col, op, left, right, both in detail.mixes:
                if both:
                    continue  # suffix-visible on both sides: UNIT002
                verb = ("comparison mixes" if op == "cmp"
                        else "%s mixes" % op)
                self.report(
                    facts.path, line,
                    "%s inferred %s with %s (%s); convert via "
                    "repro.sim.units before combining"
                    % (verb, describe_unit(left), describe_unit(right),
                       mismatch_kind(left, right)), col=col)


@register
class SinkUnitRule(ProjectRule):
    id = "UNIT006"
    name = "sink-unit"
    severity = "error"
    description = ("A value whose inferred unit is wrong enters a "
                   "fixed-unit sink: the seconds slot of schedule()/"
                   "call_at(), or the value argument of an obs "
                   "histogram observe() (bounds are in seconds).")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_units(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            detail = analysis.function_units(fq)
            for index, call in enumerate(fn.calls):
                if call.attr in SCHEDULE_ATTRS:
                    self._check_schedule(facts, fn, call,
                                         detail.call_args[index])
                elif call.attr == "observe":
                    self._check_observe(project, analysis, facts, fn,
                                        call, detail.call_args[index])

    def _check_schedule(self, facts, fn, call, arg_units) -> None:
        for slot in _SCHEDULE_SLOTS:
            unit = arg_units.get(slot)
            if not is_concrete(unit) or unit == _SECONDS \
                    or unit[0] == "dimensionless":
                continue
            if slot == 0 and _slot_syntactic(call, slot, fn):
                continue  # suffix-visible: UNIT001's finding
            self.report(
                facts.path, call.line,
                "%s() timing argument expects seconds but the inferred "
                "unit is %s; convert via repro.sim.units first"
                % (call.attr, describe_unit(unit)), col=call.col)

    def _check_observe(self, project, analysis: UnitAnalysis, facts,
                       fn, call, arg_units) -> None:
        for callee in project.resolve_call(facts, fn, call):
            cfn = project.functions[callee][1]
            if cfn.cls not in _OBSERVE_CLASSES \
                    or "value" not in cfn.params:
                continue
            unit = analysis._bind_param(cfn, "value", arg_units, call)
            # Histograms legitimately hold sizes and counts; only a
            # time value on the wrong scale is unambiguously a bug.
            if is_concrete(unit) and unit[0] == "time" \
                    and unit != _SECONDS:
                self.report(
                    facts.path, call.line,
                    "observe() records into a seconds-bounded histogram "
                    "but the inferred unit is %s; convert via "
                    "repro.sim.units first" % describe_unit(unit),
                    col=call.col)
                return


@register
class ReturnConsistencyRule(ProjectRule):
    id = "UNIT007"
    name = "return-unit-consistency"
    severity = "error"
    description = ("A function's branches return values with different "
                   "inferred units; callers cannot use the result "
                   "safely.  Declare the intended unit with "
                   "`# simlint: unit[...]` on the def line, or convert "
                   "the stray branch.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_units(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            returns = analysis.intrinsic_returns.get(fq, ())
            concrete = [(line, unit) for line, unit in returns
                        if is_concrete(unit)]
            units = sorted(set(unit for _line, unit in concrete))
            if len(units) < 2:
                continue
            witness = ["%s (line %d)"
                       % (describe_unit(unit),
                          min(l for l, u in concrete if u == unit))
                       for unit in units]
            self.report(
                facts.path, fn.line,
                "%s() returns inconsistent units across branches: %s; "
                "convert the stray branch or declare the intent with "
                "`# simlint: unit[...]` on the def line"
                % (fn.name, ", ".join(witness)))


@register
class SignatureAgreementRule(ProjectRule):
    id = "UNIT008"
    name = "signature-agreement"
    severity = "error"
    description = ("A call site passes a value whose inferred unit "
                   "disagrees with the callee's inferred signature "
                   "(parameter suffix, consistent body usage, or the "
                   "repro.sim.units conversion tables).")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_units(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            detail = analysis.function_units(fq)
            for index, call in enumerate(fn.calls):
                if call.attr in SCHEDULE_ATTRS:
                    continue  # UNIT006's sink
                arg_units = detail.call_args[index]
                tail = conversion_tail(call)
                if tail is not None:
                    self._check_conversion(facts, fn, call, tail,
                                           arg_units)
                    continue
                for callee in project.resolve_call(facts, fn, call):
                    if self._check_callee(project, analysis, facts, fn,
                                          call, callee, arg_units):
                        break

    def _check_conversion(self, facts, fn, call, tail,
                          arg_units) -> None:
        for slot, want in enumerate(CONVERSION_PARAMS[tail]):
            if want is None:
                continue
            unit = arg_units.get(slot)
            if not is_concrete(unit) or unit == want:
                continue
            if _slot_syntactic(call, slot, fn):
                continue  # suffix-visible: UNIT001's finding
            self.report(
                facts.path, call.line,
                "%s(...) expects %s but the inferred unit of argument "
                "%d is %s (%s)"
                % (tail, describe_unit(want), slot + 1,
                   describe_unit(unit), mismatch_kind(want, unit)),
                col=call.col)

    def _check_callee(self, project, analysis: UnitAnalysis, facts,
                      fn, call, callee: str, arg_units) -> bool:
        cfacts, cfn = project.functions[callee]
        same_module = cfacts.module == facts.module
        reported = False
        for pname in cfn.params:
            want = analysis.signature_unit(callee, pname)
            if want is None:
                continue
            unit = analysis._bind_param(cfn, pname, arg_units, call)
            if not is_concrete(unit) or unit == want:
                continue
            if unit_of_name(pname) is not None and same_module \
                    and self._any_slot_syntactic(call, fn):
                continue  # same-file suffix pair: UNIT001's finding
            self.report(
                facts.path, call.line,
                "%s() parameter %r is inferred %s but this call passes "
                "%s (%s)" % (cfn.name, pname, describe_unit(want),
                             describe_unit(unit),
                             mismatch_kind(want, unit)),
                col=call.col)
            reported = True
        return reported

    @staticmethod
    def _any_slot_syntactic(call, fn) -> bool:
        return any(syntactic_unit(arg.expr, fn) is not None
                   for arg in call.args)


@register
class DoubleConversionRule(ProjectRule):
    id = "UNIT009"
    name = "double-conversion"
    severity = "warning"
    description = ("The result of a repro.sim.units scale conversion is "
                   "immediately converted again (directly nested or "
                   "through one local); the round trip is either dead "
                   "code or a units bookkeeping error.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        analysis = shared_units(project)
        for fq in sorted(project.functions):
            facts, fn = project.functions[fq]
            detail = analysis.function_units(fq)
            for call in fn.calls:
                outer = conversion_tail(call)
                if outer not in SCALE_CONVERSIONS:
                    continue
                expr = _arg_expr(call, 0)
                inner = self._origin(expr, fn, detail)
                if inner is None:
                    continue
                self.report(
                    facts.path, call.line,
                    "result of %s(...) is converted again by %s(...); "
                    "drop one conversion or keep the value in simulator "
                    "seconds between the two" % (inner, outer),
                    col=call.col)

    @staticmethod
    def _origin(expr, fn: FunctionFacts, detail) -> Optional[str]:
        """Scale-conversion tail the argument directly carries."""
        if expr is None:
            return None
        if expr[0] == "c":
            tail = conversion_tail(fn.calls[expr[1]])
            return tail if tail in SCALE_CONVERSIONS else None
        if expr[0] in ("n", "a"):
            return detail.conv_origin.get(expr[1])
        return None
