"""Effect-parity rule pack (RPLY001-RPLY002 rebuilt, EFF001-EFF004).

A session-replay cache hit (:mod:`repro.sim.replay`) or an analytic
injection (:mod:`repro.sim.analytic`) never drives the TCP stack, so
every side effect a simulated session leaves on the session path —
``tcp/``, ``services/``, ``measure/`` — must be replicated explicitly
by the fast-path managers.  The contract is recorded in
``sim/replay/effects.py`` as the ``REPLICATED_EFFECTS`` allowlist,
which is now a **generated artifact**: ``python -m repro.lint src
--emit-effects`` rewrites it from the derived effect closures, and CI
fails if the checked-in copy is stale.

The first two rules keep code and contract in sync syntactically, as
before, but their effect sites now come from the shared
:mod:`repro.lint.effectflow` extraction (so ``port.allocate()`` on a
port-pool receiver and ``reserve_port()`` compare equal):

* RPLY001 — a session-path effect site whose signature is not
  allowlisted (a new ground-truth log or registry write that a fast
  path would silently drop);
* RPLY002 — an allowlist entry matching no session-path site (a stale
  contract that would mask a future RPLY001).

The EFF rules close the interprocedural gap the syntactic pair cannot
see — an effect hidden one helper call away from the manager:

* EFF001 — a session-path effect signature missing from the effect
  *closure* of at least one replication root
  (``SessionReplayManager._replay`` /
  ``TieredSessionManager._materialize``): the fast path genuinely does
  not reproduce it, wherever the replication would have been buried;
* EFF002 — an effect performed by a replication root's module that is
  neither part of the derived session contract nor delegated to
  session-path code: over-replication that fabricates ground truth the
  packet path never wrote;
* EFF003 — one obs metric name written with conflicting ``sim``/
  ``host`` scopes across the session path and the replication
  closures, which silently splits one counter into two;
* EFF004 — the checked-in ``REPLICATED_EFFECTS`` differs from the
  derived allowlist: regenerate with ``--emit-effects``.

Constructor bodies (``__init__``) are exempt from *site* collection —
effects there are topology setup that happens before any session
exists — but still contribute to closures.  All rules stand down when
the linted file set has no allowlist module, and the EFF rules
additionally stand down when it has no replication roots or no
session-path modules (linting ``tests/`` alone must not light up).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.effectflow import (
    EffectAnalysis,
    EffectSite,
    PARITY_KINDS,
    is_session_module,
    replication_roots,
    shared_effects,
)
from repro.lint.framework import register
from repro.lint.project import (
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
    ProjectRule,
)

#: Module-level constant the fast paths declare their contract in.
ALLOWLIST_NAME = "REPLICATED_EFFECTS"

#: Command that regenerates the allowlist artifact.
EMIT_COMMAND = "python -m repro.lint src --emit-effects"


def _find_allowlist(project: ProjectContext
                    ) -> Optional[Tuple[str, int, List[str]]]:
    for module in sorted(project.modules):
        facts = project.modules[module]
        if "replay" not in str(facts.path).replace("\\", "/"):
            continue
        if ALLOWLIST_NAME in facts.module_constants:
            line, strings = facts.module_constants[ALLOWLIST_NAME]
            return str(facts.path), line, list(strings)
    return None


def _parity_sites(analysis: EffectAnalysis, qualname: str
                  ) -> List[EffectSite]:
    """Parity-kind effect sites of one function, [] for ``__init__``."""
    _facts, fn = analysis.project.functions[qualname]
    if fn.name == "__init__":
        return []
    return [site for site in analysis.sites.get(qualname, ())
            if site.effect[0] in PARITY_KINDS]


def _session_sites(analysis: EffectAnalysis
                   ) -> List[Tuple[ModuleFacts, FunctionFacts,
                                   EffectSite]]:
    """Every parity site in session-path modules, in stable order."""
    out = []
    for qualname in sorted(analysis.sites):
        facts, fn = analysis.project.functions[qualname]
        if not is_session_module(facts):
            continue
        for site in _parity_sites(analysis, qualname):
            out.append((facts, fn, site))
    out.sort(key=lambda item: (str(item[0].path), item[2].line,
                               item[2].effect[1]))
    return out


def derive_allowlist(project: ProjectContext,
                     analysis: Optional[EffectAnalysis] = None
                     ) -> List[str]:
    """The allowlist the checked-in artifact must equal.

    A signature belongs iff (a) every replication root's effect closure
    contains it — both fast paths replicate it — and (b) at least one
    session-path site performs it — it is real packet-path ground
    truth, not replication machinery.
    """
    if analysis is None:
        analysis = shared_effects(project)
    roots = replication_roots(project)
    if not roots:
        return []
    common: Optional[Set[str]] = None
    for root in roots:
        sigs = {effect[1] for effect in analysis.closure(root)
                if effect[0] in PARITY_KINDS}
        common = sigs if common is None else (common & sigs)
    session = {site.effect[1]
               for _facts, _fn, site in _session_sites(analysis)}
    return sorted((common or set()) & session)


def allowlist_site_index(analysis: EffectAnalysis
                         ) -> Dict[str, List[str]]:
    """signature -> sorted session-path module paths performing it."""
    index: Dict[str, Set[str]] = {}
    for facts, _fn, site in _session_sites(analysis):
        index.setdefault(site.effect[1], set()).add(str(facts.path))
    return {sig: sorted(paths) for sig, paths in index.items()}


def render_effects_module(derived: Iterable[str],
                          site_index: Dict[str, List[str]]) -> str:
    """Source text of the generated ``sim/replay/effects.py``."""
    lines = [
        '"""Replicated-effects contract for the session fast paths.',
        "",
        "GENERATED FILE - do not edit by hand.  Regenerate with::",
        "",
        "    %s" % EMIT_COMMAND,
        "",
        "A replay hit (:mod:`repro.sim.replay`) or analytic injection",
        "(:mod:`repro.sim.analytic`) never drives :mod:`repro.tcp`",
        "packet-by-packet, so every side effect a simulated session",
        "leaves behind must be replicated explicitly by the fast-path",
        "managers.  The signatures below are derived by",
        ":mod:`repro.lint.effectflow` as the intersection of both",
        "replication roots' effect closures, restricted to signatures",
        "with at least one session-path site; the EFF004 simlint rule",
        "fails when this file no longer matches the derivation, and",
        "EFF001 names any session-path effect the closures miss.",
        "",
        'Signature syntax: a bare name means "a call to a method of',
        'that name" (``register_keywords``); a trailing ``[]`` means "a',
        'subscript store into an attribute of that name"',
        "(``fetch_log[]``).",
        '"""',
        "",
        "from __future__ import annotations",
        "",
        "#: Session-path effect signatures replicated on a fast-path",
        "#: hit, with the module(s) performing each one.",
        "REPLICATED_EFFECTS = (",
    ]
    for signature in derived:
        for path in site_index.get(signature, []):
            lines.append("    # %s" % path)
        lines.append('    "%s",' % signature)
    lines.append(")")
    return "\n".join(lines) + "\n"


@register
class UnreplicatedEffectRule(ProjectRule):
    id = "RPLY001"
    name = "unreplicated-effect"
    severity = "error"
    description = ("Session-path side effect not in the replicated-"
                   "effects allowlist; a replay hit would silently "
                   "drop it.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        allowlist = _find_allowlist(project)
        if allowlist is None:
            return
        _path, _line, allowed = allowlist
        analysis = shared_effects(project)
        for facts, _fn, site in _session_sites(analysis):
            signature = site.effect[1]
            if signature in allowed:
                continue
            self.report(
                facts.path, site.line,
                "session-path side effect %r is not in "
                "REPLICATED_EFFECTS; a replay hit will not "
                "reproduce it — replicate it in the replay manager "
                "and regenerate sim/replay/effects.py (%s)"
                % (signature, EMIT_COMMAND))


@register
class StaleAllowlistRule(ProjectRule):
    id = "RPLY002"
    name = "stale-allowlist"
    severity = "error"
    description = ("REPLICATED_EFFECTS entry matches no session-path "
                   "code; stale entries mask future unreplicated "
                   "effects.")
    scope = "project"

    def check(self, project: ProjectContext) -> None:
        allowlist = _find_allowlist(project)
        if allowlist is None:
            return
        path, line, allowed = allowlist
        analysis = shared_effects(project)
        session_modules = sum(
            1 for facts in project.modules.values()
            if is_session_module(facts))
        if session_modules == 0:
            return  # partial lint: nothing to compare against
        observed = {site.effect[1]
                    for _facts, _fn, site in _session_sites(analysis)}
        for entry in allowed:
            if entry not in observed:
                self.report(
                    path, line,
                    "REPLICATED_EFFECTS entry %r matches no effect "
                    "site in the linted session-path modules; "
                    "regenerate the artifact (%s) or restore the "
                    "effect it documented" % (entry, EMIT_COMMAND))


class _EffRule(ProjectRule):
    """Shared stand-down logic for the closure-parity rules."""

    scope = "project"

    def check(self, project: ProjectContext) -> None:
        roots = replication_roots(project)
        if not roots:
            return
        analysis = shared_effects(project)
        if not any(is_session_module(facts)
                   for facts in project.modules.values()):
            return
        self.check_effects(project, analysis, roots)

    def check_effects(self, project: ProjectContext,
                      analysis: EffectAnalysis,
                      roots: List[str]) -> None:
        raise NotImplementedError


@register
class MissingReplicationRule(_EffRule):
    id = "EFF001"
    name = "missing-replication"
    severity = "error"
    description = ("Session-path effect signature absent from a "
                   "replication root's derived effect closure; the "
                   "fast path does not reproduce it.")

    def check_effects(self, project: ProjectContext,
                      analysis: EffectAnalysis,
                      roots: List[str]) -> None:
        closures = {
            root: {effect[1] for effect in analysis.closure(root)
                   if effect[0] in PARITY_KINDS}
            for root in roots}
        for facts, _fn, site in _session_sites(analysis):
            signature = site.effect[1]
            missing = [root for root in roots
                       if signature not in closures[root]]
            if not missing:
                continue
            self.report(
                facts.path, site.line,
                "session-path effect %r is missing from the derived "
                "effect closure of %s; a fast-path hit would not "
                "reproduce it — replicate it there and regenerate "
                "sim/replay/effects.py (%s)"
                % (signature,
                   " and ".join(_short(root) for root in missing),
                   EMIT_COMMAND))


@register
class OverReplicationRule(_EffRule):
    id = "EFF002"
    name = "over-replication"
    severity = "error"
    description = ("Replication-root module performs an effect outside "
                   "the derived session contract; a fast-path hit "
                   "fabricates ground truth the packet path never "
                   "wrote.")

    def check_effects(self, project: ProjectContext,
                      analysis: EffectAnalysis,
                      roots: List[str]) -> None:
        derived = set(derive_allowlist(project, analysis))
        root_modules = {analysis.project.functions[root][0].module
                        for root in roots}
        for qualname in sorted(analysis.sites):
            facts, fn = project.functions[qualname]
            if facts.module not in root_modules:
                continue
            for site in _parity_sites(analysis, qualname):
                signature = site.effect[1]
                if signature in derived:
                    continue
                if self._delegates_to_session(project, facts, fn, site):
                    continue
                self.report(
                    facts.path, site.line,
                    "replication-root effect %r is outside the derived "
                    "session-path contract; a fast-path hit would "
                    "fabricate ground truth the packet path never "
                    "wrote — remove it or add the session-path effect "
                    "it replicates" % signature)

    @staticmethod
    def _delegates_to_session(project: ProjectContext,
                              facts: ModuleFacts, fn: FunctionFacts,
                              site: EffectSite) -> bool:
        """True when the site is a call into session-path code — the
        *mechanism* of replication (``record_replayed_fetch``,
        ``capture.inject``), not an effect of its own."""
        for call in fn.calls:
            if call.line != site.line:
                continue
            for callee in project.resolve_call(facts, fn, call):
                callee_facts = project.functions[callee][0]
                if is_session_module(callee_facts):
                    return True
        return False


@register
class MetricScopeMismatchRule(_EffRule):
    id = "EFF003"
    name = "metric-scope-mismatch"
    severity = "error"
    description = ("One obs metric name written with conflicting "
                   "sim/host scopes across the session path and the "
                   "replication closures.")

    def check_effects(self, project: ProjectContext,
                      analysis: EffectAnalysis,
                      roots: List[str]) -> None:
        in_closure = set(analysis.reachable_from(roots))
        by_name: Dict[str, Dict[str, Tuple[str, int]]] = {}
        for qualname in sorted(analysis.sites):
            facts, fn = project.functions[qualname]
            relevant = (is_session_module(facts)
                        or qualname in in_closure)
            if not relevant or fn.name == "__init__":
                continue
            for site in analysis.sites[qualname]:
                kind, name, scope = site.effect
                if kind != "metric" or "*" in name \
                        or scope not in ("sim", "host"):
                    continue
                scopes = by_name.setdefault(name, {})
                where = (str(facts.path), site.line)
                if scope not in scopes or where < scopes[scope]:
                    scopes[scope] = where
        for name in sorted(by_name):
            scopes = by_name[name]
            if len(scopes) < 2:
                continue
            path, line = min(scopes.values())
            self.report(
                path, line,
                "obs metric %r is written with conflicting scopes "
                "(%s) across the session path and the replication "
                "closures; pick one scope or split the metric name"
                % (name, ", ".join("%s at %s:%d" % (s, p, l)
                                   for s, (p, l)
                                   in sorted(scopes.items()))))


@register
class StaleDerivedAllowlistRule(_EffRule):
    id = "EFF004"
    name = "stale-derived-allowlist"
    severity = "error"
    description = ("Checked-in REPLICATED_EFFECTS differs from the "
                   "derived allowlist; the generated artifact is "
                   "stale.")

    def check_effects(self, project: ProjectContext,
                      analysis: EffectAnalysis,
                      roots: List[str]) -> None:
        allowlist = _find_allowlist(project)
        if allowlist is None:
            return
        path, line, checked_in = allowlist
        derived = derive_allowlist(project, analysis)
        if sorted(checked_in) == derived:
            return
        missing = sorted(set(derived) - set(checked_in))
        extra = sorted(set(checked_in) - set(derived))
        detail = "; ".join(part for part in (
            ("missing %s" % ", ".join(repr(s) for s in missing))
            if missing else "",
            ("stale %s" % ", ".join(repr(s) for s in extra))
            if extra else "") if part)
        self.report(
            path, line,
            "REPLICATED_EFFECTS is stale against the derived "
            "session-path contract (%s); regenerate with `%s`"
            % (detail, EMIT_COMMAND))


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname
