"""Whole-project analysis for simlint: facts, import graph, call graph.

The per-file rule packs (:mod:`repro.lint.determinism`, ...) see one AST
at a time, which is exactly the wrong granularity for the invariants the
sharded/replayed runtime added: a nondeterministic value can flow
through two helper modules before it reaches ``schedule()``, and shard
code can mutate module state defined three imports away.  This module
gives project-scope rules the substrate they need:

* :class:`ModuleFacts` / :class:`FunctionFacts` / :class:`CallFacts` —
  a compact, JSON-serializable summary of one module, extracted in a
  single AST pass.  Facts (not ASTs) are what the incremental cache
  stores, so unchanged modules are never re-parsed on repeat runs.
* :class:`ProjectContext` — all modules of one lint invocation: dotted
  module naming, cross-module function resolution that follows import
  aliases and re-export chains, a call graph with the same-module
  bare-name fallback the old single-file EVT001 used (cross-module
  edges only ever come from *resolved* imports, so project-wide noise
  stays bounded), and reachability helpers with witness paths.
* :class:`ProjectRule` — the base class project-scope rules register
  with; they run once per lint invocation after the per-file walk.

Facts extraction is deliberately syntactic: no imports are executed and
no module code runs, so linting a broken tree can never crash the tool
(parse failures become ``META001`` findings upstream).
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ArgFacts",
    "CallFacts",
    "FunctionFacts",
    "ModuleFacts",
    "ProjectContext",
    "ProjectRule",
    "extract_module_facts",
    "module_name_for_path",
    "parse_unit_annotations",
]

#: Bump when the facts shape changes — part of the incremental-cache key.
#: v2: unit-expression summaries (``unit_assigns``/``unit_returns``/
#: ``unit_exprs``/``ArgFacts.expr``) and ``# simlint: unit[...]``
#: annotations, feeding :mod:`repro.lint.simtype`.
#: v3: string skeletons (``ArgFacts.fstr``), self-attribute references
#: (``FunctionFacts.self_refs``) and counter increments
#: (``FunctionFacts.counter_incs``), feeding
#: :mod:`repro.lint.effectflow` and :mod:`repro.lint.rng_lineage`.
FACTS_VERSION = 3

SCHEDULE_ATTRS = ("schedule", "call_at")

#: Receiver names treated as "the simulator" for ``.run()`` detection.
SIM_RECEIVERS = ("sim", "simulator", "engine")

#: Methods that mutate a list/set/dict receiver in place.
MUTATING_METHODS = (
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard",
)


@dataclasses.dataclass
class ArgFacts:
    """One argument of a call: its slot plus what the expression reads."""

    slot: object  # int position or keyword name (str)
    names: List[str]
    calls: List[int]  # indexes into the owning FunctionFacts.calls
    #: unit-expression summary of the argument (see module docstring of
    #: :mod:`repro.lint.simtype` for the encoding)
    expr: list = dataclasses.field(default_factory=lambda: ["?"])
    #: string skeleton ``[text, tokens]`` when the argument is (partly)
    #: a statically visible string: ``"cache/%s/admit#%d" % (name, n)``
    #: becomes ``["cache/*/admit#*", ["name", "n"]]`` — every dynamic
    #: hole is ``*`` and ``tokens`` lists the names/attrs feeding the
    #: holes.  ``None`` when the argument has no literal content at all
    #: (a bare name, a call result), so fully-dynamic keys never
    #: masquerade as resolvable namespaces.
    fstr: Optional[list] = None

    def to_json(self) -> list:
        data = [self.slot, self.names, self.calls, self.expr]
        if self.fstr is not None:
            data.append(self.fstr)
        return data

    @classmethod
    def from_json(cls, data: list) -> "ArgFacts":
        return cls(slot=data[0], names=list(data[1]), calls=list(data[2]),
                   expr=list(data[3]),
                   fstr=list(data[4]) if len(data) > 4 else None)


@dataclasses.dataclass
class CallFacts:
    """One call site, resolved as far as imports allow."""

    target: Optional[str]  # alias-expanded dotted name ("time.time")
    bare: Optional[str]    # function name for plain-name calls
    attr: Optional[str]    # final attribute for method calls
    receiver: Optional[str]  # "self", a bare name, or a receiver attr
    line: int
    col: int
    end_line: int
    args: List[ArgFacts]
    callback: Optional[str] = None  # scheduled callback name, if any
    lambda_runs: List[Tuple[int, int]] = dataclasses.field(
        default_factory=list)  # sim-run sites inside a lambda callback
    is_sim_run: bool = False
    first_arg_name: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "t": self.target, "b": self.bare, "a": self.attr,
            "r": self.receiver, "l": self.line, "c": self.col,
            "e": self.end_line, "args": [a.to_json() for a in self.args],
            "cb": self.callback,
            "lr": [list(pair) for pair in self.lambda_runs],
            "sr": self.is_sim_run, "f": self.first_arg_name,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CallFacts":
        return cls(
            target=data["t"], bare=data["b"], attr=data["a"],
            receiver=data["r"], line=data["l"], col=data["c"],
            end_line=data["e"],
            args=[ArgFacts.from_json(a) for a in data["args"]],
            callback=data["cb"],
            lambda_runs=[tuple(pair) for pair in data["lr"]],
            is_sim_run=data["sr"], first_arg_name=data["f"])


@dataclasses.dataclass
class FunctionFacts:
    """Everything project rules need to know about one function."""

    name: str
    qualname: str  # module-local: "f", "C.m", "outer.inner"
    cls: Optional[str]
    line: int
    params: List[str]
    calls: List[CallFacts] = dataclasses.field(default_factory=list)
    #: (target names, names read, call indexes, line)
    assigns: List[list] = dataclasses.field(default_factory=list)
    #: (names read, call indexes, line)
    returns: List[list] = dataclasses.field(default_factory=list)
    global_declares: List[str] = dataclasses.field(default_factory=list)
    #: (name, line) — assignment to a `global`-declared name
    global_writes: List[list] = dataclasses.field(default_factory=list)
    #: (receiver name, method, line) — in-place mutation of a bare name
    mutations: List[list] = dataclasses.field(default_factory=list)
    #: (attr, line) — `obj.attr[key] = ...` subscript-stores
    attr_subscript_writes: List[list] = dataclasses.field(
        default_factory=list)
    #: (line, accumulates) — `for` over a set-valued iterable
    set_loops: List[list] = dataclasses.field(default_factory=list)
    #: (target names, uexpr, line) — unit-expression view of each
    #: assignment, independent of ``assigns`` so the taint engine's
    #: 4-tuple unpacking stays untouched
    unit_assigns: List[list] = dataclasses.field(default_factory=list)
    #: (uexpr, line) per return statement
    unit_returns: List[list] = dataclasses.field(default_factory=list)
    #: uexprs of bare expression statements / branch conditions (unit
    #: mixes in comparisons live here)
    unit_exprs: List[list] = dataclasses.field(default_factory=list)
    #: attribute names read off ``self`` anywhere in the body —
    #: method *references* (``self._server_effects`` passed into a
    #: timeline) become call-graph edges in the effect engine
    self_refs: List[str] = dataclasses.field(default_factory=list)
    #: (name, line) for augmented-assignment targets (``self._seq += 1``
    #: records ``_seq``) — ordinal counters for the RNG-lineage rules
    counter_incs: List[list] = dataclasses.field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name, "qual": self.qualname, "cls": self.cls,
            "line": self.line, "params": self.params,
            "calls": [c.to_json() for c in self.calls],
            "assigns": self.assigns, "returns": self.returns,
            "gdecl": self.global_declares, "gw": self.global_writes,
            "mut": self.mutations, "asw": self.attr_subscript_writes,
            "setl": self.set_loops,
            "ua": self.unit_assigns, "ur": self.unit_returns,
            "ue": self.unit_exprs,
            "sref": self.self_refs, "cinc": self.counter_incs,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionFacts":
        return cls(
            name=data["name"], qualname=data["qual"], cls=data["cls"],
            line=data["line"], params=list(data["params"]),
            calls=[CallFacts.from_json(c) for c in data["calls"]],
            assigns=[list(a) for a in data["assigns"]],
            returns=[list(r) for r in data["returns"]],
            global_declares=list(data["gdecl"]),
            global_writes=[list(w) for w in data["gw"]],
            mutations=[list(m) for m in data["mut"]],
            attr_subscript_writes=[list(w) for w in data["asw"]],
            set_loops=[list(s) for s in data["setl"]],
            unit_assigns=[list(a) for a in data["ua"]],
            unit_returns=[list(r) for r in data["ur"]],
            unit_exprs=[list(e) for e in data["ue"]],
            self_refs=list(data["sref"]),
            counter_incs=[list(c) for c in data["cinc"]])


@dataclasses.dataclass
class ModuleFacts:
    """Per-module facts: the unit the incremental cache stores."""

    module: str
    path: str
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = dataclasses.field(
        default_factory=dict)
    #: module-level names bound to mutable containers -> line
    module_mutables: Dict[str, int] = dataclasses.field(
        default_factory=dict)
    #: module-level string-collection constants -> (line, strings)
    module_constants: Dict[str, list] = dataclasses.field(
        default_factory=dict)
    #: line -> unit token from ``# simlint: unit[...]`` annotations
    unit_annotations: Dict[int, str] = dataclasses.field(
        default_factory=dict)
    #: (line, token) for annotations naming an unknown unit token
    bad_unit_annotations: List[list] = dataclasses.field(
        default_factory=list)

    def to_json(self) -> dict:
        return {
            "module": self.module, "path": self.path,
            "imports": self.imports,
            "functions": {q: f.to_json()
                          for q, f in self.functions.items()},
            "mutables": self.module_mutables,
            "constants": self.module_constants,
            "units": {str(line): token
                      for line, token in self.unit_annotations.items()},
            "bad_units": self.bad_unit_annotations,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleFacts":
        return cls(
            module=data["module"], path=data["path"],
            imports=dict(data["imports"]),
            functions={q: FunctionFacts.from_json(f)
                       for q, f in data["functions"].items()},
            module_mutables=dict(data["mutables"]),
            module_constants={k: list(v)
                              for k, v in data["constants"].items()},
            unit_annotations={int(line): token
                              for line, token in data["units"].items()},
            bad_unit_annotations=[list(b) for b in data["bad_units"]])


# ---------------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------------
def module_name_for_path(path: str) -> str:
    """Dotted module name for a file, from its package ancestry.

    Walks up while ``__init__.py`` exists, so ``src/repro/tcp/host.py``
    becomes ``repro.tcp.host`` regardless of the lint invocation's CWD.
    Files outside any package (fixture directories) get their bare stem,
    which keeps sibling imports (``from helpers import drain``)
    resolvable inside fixture projects.
    """
    full = os.path.abspath(path)
    directory, filename = os.path.split(full)
    stem = os.path.splitext(filename)[0]
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.append(pkg)
    if not parts:  # a lone __init__.py outside any package
        parts = [os.path.basename(directory) or "module"]
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# unit annotations
# ---------------------------------------------------------------------------
#: Tokens are lowercase by construction (the suffix vocabulary), so an
#: uppercase placeholder in prose (``unit[TOKEN]``) is not an
#: annotation at all rather than a bad one.
_UNIT_ANNOTATION_RE = re.compile(
    r"#\s*simlint:\s*unit\[\s*([a-z0-9_]+)\s*\]")


def parse_unit_annotations(source: str
                           ) -> Tuple[Dict[int, str], List[list]]:
    """``# simlint: unit[TOKEN]`` comments, as {line: token} + bad list.

    Tokens are validated against the unit vocabulary in
    :data:`repro.lint.unit_safety.ANNOTATION_UNITS`; unknown tokens are
    returned separately so the framework can surface them as META001
    findings instead of silently ignoring a typo'd annotation.
    """
    from repro.lint.unit_safety import ANNOTATION_UNITS
    annotations: Dict[int, str] = {}
    bad: List[list] = []
    if "simlint" not in source:
        return annotations, bad
    for lineno, text in enumerate(source.splitlines(), 1):
        if "simlint" not in text:
            continue
        for match in _UNIT_ANNOTATION_RE.finditer(text):
            token = match.group(1)
            if token in ANNOTATION_UNITS:
                annotations[lineno] = token
            else:
                bad.append([lineno, token])
    return annotations, bad


# ---------------------------------------------------------------------------
# facts extraction
# ---------------------------------------------------------------------------
class _FactsExtractor:
    """One-pass extraction of :class:`ModuleFacts` from a module AST."""

    def __init__(self, module: str, path: str, tree: ast.Module):
        self.facts = ModuleFacts(module=module, path=path)
        #: id(ast.Call) -> index into the current function's call list,
        #: so unit expressions can reference the CallFacts produced by
        #: the same traversal
        self._call_ids: Dict[int, int] = {}
        self._collect_imports(tree)
        for stmt in tree.body:
            self._module_level(stmt)
        self._walk_body(tree.body, prefix="", cls=None)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.facts.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.facts.imports[local] = (node.module + "."
                                                 + alias.name)

    def _module_level(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        value = stmt.value
        if value is None:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        if _is_mutable_ctor(value):
            for name in names:
                self.facts.module_mutables[name] = stmt.lineno
        strings = _string_collection(value)
        if strings is not None:
            for name in names:
                self.facts.module_constants[name] = [stmt.lineno, strings]

    # -- scope walk ----------------------------------------------------
    def _walk_body(self, body: Sequence[ast.stmt], prefix: str,
                   cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._walk_body(stmt.body, prefix=prefix, cls=stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, prefix=prefix, cls=cls)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For,
                                   ast.While)):
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, (ast.FunctionDef, ast.ClassDef,
                                          ast.AsyncFunctionDef)):
                        self._walk_body([inner], prefix=prefix, cls=cls)

    def _function(self, node, prefix: str, cls: Optional[str]) -> None:
        qual = prefix + node.name if not cls \
            else prefix + cls + "." + node.name
        args = node.args
        params = [a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        fn = FunctionFacts(name=node.name, qualname=qual, cls=cls,
                           line=node.lineno, params=params)
        self.facts.functions[qual] = fn
        self._sim_locals = _collect_sim_locals(node, self.facts.imports)
        self._set_names: Set[str] = set()
        self._current = fn
        self._call_ids = {}
        for stmt in node.body:
            self._stmt(stmt)
        # Immediately-nested defs: extract as their own functions, plus
        # a pseudo call edge outer -> inner (defining implies "may call"
        # for reachability; the old single-file EVT001 attributed nested
        # calls to the outer function, so this stays a superset).
        for stmt in _immediate_defs(node):
            fn.calls.append(CallFacts(
                target=None, bare=stmt.name, attr=None, receiver=None,
                line=stmt.lineno, col=stmt.col_offset,
                end_line=stmt.lineno, args=[]))
            self._current = fn  # restored for each sibling
            self._function(stmt, prefix=qual + ".", cls=None)

    # -- statements ----------------------------------------------------
    def _stmt(self, stmt: ast.stmt) -> None:
        fn = self._current
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # handled by _function / ignored
        if isinstance(stmt, ast.Global):
            fn.global_declares.extend(stmt.names)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assignment(stmt)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            names, calls = self._summarize(stmt.value)
            fn.returns.append([names, calls, stmt.lineno])
            fn.unit_returns.append([self._uexpr(stmt.value), stmt.lineno])
        elif isinstance(stmt, ast.For):
            self._for_loop(stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)):
                    fn.mutations.append([target.value.id, "del",
                                         stmt.lineno])
            return
        else:
            for value in _stmt_exprs(stmt):
                self._summarize(value)
                uexpr = self._uexpr(value)
                if uexpr != ["?"]:
                    fn.unit_exprs.append(uexpr)
        # Recurse into compound statement bodies.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.excepthandler):
                for inner in child.body:
                    self._stmt(inner)
            elif isinstance(child, ast.withitem):
                self._summarize(child.context_expr)

    def _assignment(self, stmt: ast.stmt) -> None:
        fn = self._current
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:
            targets, value = [stmt.target], stmt.value
        target_names: List[str] = []
        for target in _flatten_targets(targets):
            if isinstance(target, ast.Name):
                target_names.append(target.id)
                if target.id in fn.global_declares:
                    fn.global_writes.append([target.id, stmt.lineno])
            elif isinstance(target, ast.Attribute):
                target_names.append(target.attr)
            elif isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Name):
                    fn.mutations.append([base.id, "[]=", stmt.lineno])
                elif isinstance(base, ast.Attribute):
                    fn.attr_subscript_writes.append([base.attr,
                                                     stmt.lineno])
        names: List[str] = []
        calls: List[int] = []
        if value is not None:
            names, calls = self._summarize(value)
        if isinstance(stmt, ast.AugAssign):
            names = names + [n for n in target_names]
            for name in target_names:
                fn.counter_incs.append([name, stmt.lineno])
        fn.assigns.append([target_names, names, calls, stmt.lineno])
        self._unit_assignment(stmt, targets, value)
        # DET005-style set tracking for SHARD002's loop check.
        if value is not None and _is_set_expr(value, self._set_names):
            self._set_names.update(n for n in target_names)
        else:
            self._set_names.difference_update(target_names)

    def _unit_assignment(self, stmt: ast.stmt, targets,
                         value: Optional[ast.expr]) -> None:
        """Unit-expression view of one assignment (see simtype)."""
        if value is None:
            return
        fn = self._current
        unit_targets: List[str] = []
        for target in _flatten_targets(targets):
            if isinstance(target, ast.Name):
                unit_targets.append(target.id)
            elif isinstance(target, ast.Attribute):
                unit_targets.append(target.attr)
            elif isinstance(target, ast.Subscript):
                key = _subscript_key(target)
                if key is not None:
                    unit_targets.append(key)
        if not unit_targets:
            return
        uexpr = self._uexpr(value)
        if isinstance(stmt, ast.AugAssign):
            op = _BINOP_TOKENS.get(type(stmt.op))
            if op is None:
                uexpr = ["?"]
            else:
                uexpr = [op, self._uexpr(stmt.target), uexpr,
                         stmt.lineno, stmt.col_offset]
        fn.unit_assigns.append([unit_targets, uexpr, stmt.lineno])

    def _for_loop(self, stmt: ast.For) -> None:
        fn = self._current
        self._summarize(stmt.iter)
        loop_targets: List[str] = []
        for target in _flatten_targets([stmt.target]):
            if isinstance(target, ast.Name):
                # loop variable: kill any set-ness
                self._set_names.discard(target.id)
                loop_targets.append(target.id)
        if loop_targets:
            # Loop variables get unknown units (kill stale bindings).
            fn.unit_assigns.append([loop_targets, ["?"], stmt.lineno])
        if _is_set_expr(stmt.iter, self._set_names):
            accumulates = _body_accumulates(stmt)
            fn.set_loops.append([stmt.lineno, accumulates])

    # -- expressions ---------------------------------------------------
    def _summarize(self, node: ast.expr) -> Tuple[List[str], List[int]]:
        """(names read, call indexes) for an expression subtree.

        Calls encountered are appended to the current function's call
        list (post-order), so nested calls get their own CallFacts.
        """
        names: List[str] = []
        calls: List[int] = []
        self._summarize_into(node, names, calls)
        return names, calls

    def _summarize_into(self, node: ast.AST, names: List[str],
                        calls: List[int]) -> None:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id not in names:
                names.append(node.id)
            return
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and isinstance(node.ctx, ast.Load):
            # A bare ``self.method`` reference (no call): the effect
            # engine turns these into call-graph edges, so scheduled
            # method references are not invisible to the closure.
            refs = self._current.self_refs
            if node.attr not in refs:
                refs.append(node.attr)
        if isinstance(node, ast.Call):
            index = self._call(node)
            self._call_ids[id(node)] = index
            calls.append(index)
            return
        if isinstance(node, ast.Lambda):
            return  # lambda bodies are summarized only when scheduled
        for child in ast.iter_child_nodes(node):
            self._summarize_into(child, names, calls)

    def _call(self, node: ast.Call) -> int:
        fn = self._current
        func = node.func
        target = _qualname(func, self.facts.imports)
        bare = func.id if isinstance(func, ast.Name) else None
        attr = func.attr if isinstance(func, ast.Attribute) else None
        receiver = None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                receiver = func.value.id
            elif isinstance(func.value, ast.Attribute):
                receiver = func.value.attr
        arg_facts: List[ArgFacts] = []
        first_arg_name = None
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                arg = arg.value
            a_names, a_calls = self._summarize(arg)
            arg_facts.append(ArgFacts(slot=index, names=a_names,
                                      calls=a_calls,
                                      expr=self._uexpr(arg),
                                      fstr=_str_skeleton(arg)))
            if index == 0 and isinstance(arg, ast.Name):
                first_arg_name = arg.id
        for keyword in node.keywords:
            a_names, a_calls = self._summarize(keyword.value)
            arg_facts.append(ArgFacts(slot=keyword.arg or "**",
                                      names=a_names, calls=a_calls,
                                      expr=self._uexpr(keyword.value),
                                      fstr=_str_skeleton(keyword.value)))
        call = CallFacts(
            target=target, bare=bare, attr=attr, receiver=receiver,
            line=node.lineno, col=node.col_offset,
            end_line=getattr(node, "end_lineno", None) or node.lineno,
            args=arg_facts, first_arg_name=first_arg_name)
        if attr in SCHEDULE_ATTRS:
            callback = _callback_expr(node)
            if isinstance(callback, ast.Name):
                call.callback = callback.id
            elif isinstance(callback, ast.Attribute):
                call.callback = callback.attr
            elif isinstance(callback, ast.Lambda):
                for child in ast.walk(callback.body):
                    if _is_sim_run(child, self._sim_locals):
                        call.lambda_runs.append(
                            (child.lineno, child.col_offset))
                self._summarize_into(callback.body, [], [])
        if _is_sim_run(node, self._sim_locals):
            call.is_sim_run = True
        fn.calls.append(call)
        # Also record in-place mutations expressed as method calls.
        if (attr in MUTATING_METHODS and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            fn.mutations.append([func.value.id, attr, node.lineno])
        return len(fn.calls) - 1

    # -- unit expressions ----------------------------------------------
    def _uexpr(self, node: ast.expr) -> list:
        """Compact, JSON-serializable unit-expression for simtype.

        Encoding (nested lists): ``["n", name]`` name read, ``["a",
        attr]`` attribute/constant-key field read, ``["c", i]`` result
        of call *i* of this function, ``["#"]`` numeric literal,
        ``["+"|"-"|"*"|"/", left, right, line, col]`` arithmetic,
        ``["cmp", [operands...], line, col]`` an order/equality
        comparison, ``["j", a, b]`` a branch join (conditional
        expression), ``["?"]`` anything the analysis cannot see
        through.
        """
        if isinstance(node, ast.Name):
            return ["n", node.id]
        if isinstance(node, ast.Attribute):
            return ["a", node.attr]
        if isinstance(node, ast.Subscript):
            key = _subscript_key(node)
            return ["a", key] if key is not None else ["?"]
        if isinstance(node, ast.Call):
            index = self._call_ids.get(id(node))
            return ["c", index] if index is not None else ["?"]
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) \
                    and not isinstance(node.value, bool):
                return ["#"]
            return ["?"]
        if isinstance(node, ast.BinOp):
            op = _BINOP_TOKENS.get(type(node.op))
            if op is None:
                return ["?"]
            return [op, self._uexpr(node.left), self._uexpr(node.right),
                    node.lineno, node.col_offset]
        if isinstance(node, ast.UnaryOp) \
                and isinstance(node.op, (ast.USub, ast.UAdd)):
            return self._uexpr(node.operand)
        if isinstance(node, ast.IfExp):
            return ["j", self._uexpr(node.body),
                    self._uexpr(node.orelse)]
        if isinstance(node, ast.Compare):
            if all(isinstance(op, _CMP_OPS) for op in node.ops):
                operands = [self._uexpr(x)
                            for x in [node.left] + node.comparators]
                return ["cmp", operands, node.lineno, node.col_offset]
            return ["?"]
        return ["?"]


#: AST operator -> uexpr token (operators outside the unit algebra,
#: e.g. ``%`` and ``**``, summarize to unknown).
_BINOP_TOKENS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "/",
}

_CMP_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _subscript_key(node: ast.Subscript) -> Optional[str]:
    """Constant-string subscript key (``d["rtt_ms"]`` -> ``rtt_ms``),
    so dict-field unit flows work like attribute flows."""
    index = node.slice
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None


# ---------------------------------------------------------------------------
# string skeletons
# ---------------------------------------------------------------------------
#: ``%%`` (a literal percent) or one %-conversion specifier.
_FORMAT_SPEC_RE = re.compile(r"%%|%[-+ #0]*\d*(?:\.\d+)?[srdifFeEgGxXoc]")


def _str_skeleton(node: ast.expr) -> Optional[list]:
    """``[skeleton, tokens]`` for a statically visible string expression.

    The skeleton is the expression's literal text with every dynamic
    hole (a %-specifier, an f-string field, a concatenated name)
    replaced by ``*``; ``tokens`` lists the names/attributes feeding the
    holes, in order of first appearance.  Returns ``None`` when the
    expression carries no literal string content at all — a fully
    dynamic value is not a resolvable namespace, and downstream rules
    must not compare it against anything.
    """
    text, tokens, literal = _skeleton_parts(node)
    if not literal:
        return None
    while "**" in text:
        text = text.replace("**", "*")
    return [text, tokens]


def _skeleton_parts(node: ast.expr) -> Tuple[str, List[str], bool]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.replace("%%", "%"), [], True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
            and isinstance(node.left, ast.Constant) \
            and isinstance(node.left.value, str):
        text = _FORMAT_SPEC_RE.sub(
            lambda m: "%" if m.group(0) == "%%" else "*",
            node.left.value)
        return text, _hole_tokens(node.right), True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left_text, left_tokens, left_lit = _skeleton_parts(node.left)
        right_text, right_tokens, right_lit = _skeleton_parts(node.right)
        return (left_text + right_text, left_tokens + right_tokens,
                left_lit or right_lit)
    if isinstance(node, ast.JoinedStr):
        text = ""
        tokens: List[str] = []
        literal = False
        for value in node.values:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                text += value.value
                literal = literal or bool(value.value)
            elif isinstance(value, ast.FormattedValue):
                text += "*"
                tokens.extend(_hole_tokens(value.value))
            else:  # pragma: no cover - future node kinds
                text += "*"
        return text, tokens, literal
    return "*", _hole_tokens(node), False


def _hole_tokens(node: ast.expr) -> List[str]:
    """Names and attribute fields read by a dynamic skeleton hole."""
    tokens: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            if child.attr not in tokens:
                tokens.append(child.attr)
        elif isinstance(child, ast.Name) and child.id != "self":
            if child.id not in tokens:
                tokens.append(child.id)
    return tokens


def _stmt_exprs(stmt: ast.stmt) -> Iterable[ast.expr]:
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


def _immediate_defs(node: ast.AST) -> Iterable[ast.AST]:
    """Function defs nested directly under ``node`` (not inside a
    deeper def, whose own extraction will pick them up)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
        elif not isinstance(child, ast.Lambda):
            for inner in _immediate_defs(child):
                yield inner


def _flatten_targets(targets) -> Iterable[ast.expr]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for inner in _flatten_targets(target.elts):
                yield inner
        else:
            yield target


def _qualname(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


def _is_mutable_ctor(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("dict", "list", "set", "defaultdict",
                                "OrderedDict", "Counter", "deque")
    return False


def _string_collection(node: ast.expr) -> Optional[List[str]]:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple", "list") \
            and len(node.args) == 1:
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    strings: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        strings.append(element.value)
    return strings


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _body_accumulates(loop: ast.For) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS):
            return True
    return False


def _collect_sim_locals(node: ast.AST,
                        imports: Dict[str, str]) -> Set[str]:
    locals_: Set[str] = set()
    for stmt in ast.walk(node):
        if (isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)
                and (_qualname(stmt.value.func, imports) or ""
                     ).endswith("Simulator")):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locals_.add(target.id)
    return locals_


def _is_sim_run(node: ast.AST, sim_locals: Set[str]) -> bool:
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("run", "run_until_idle")):
        return False
    value = node.func.value
    if isinstance(value, ast.Name):
        return value.id in SIM_RECEIVERS or value.id in sim_locals
    if isinstance(value, ast.Attribute):
        return value.attr in SIM_RECEIVERS
    return False


def _callback_expr(node: ast.Call) -> Optional[ast.expr]:
    callback: Optional[ast.expr] = None
    if len(node.args) >= 2:
        callback = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "callback":
            callback = keyword.value
    return callback


def extract_module_facts(path: str, tree: ast.Module,
                         module: Optional[str] = None,
                         source: Optional[str] = None) -> ModuleFacts:
    """Extract :class:`ModuleFacts` for one parsed module.

    ``source`` (when available) is scanned for ``# simlint: unit[...]``
    annotations; extraction itself is purely syntactic over the AST.
    """
    name = module or module_name_for_path(path)
    facts = _FactsExtractor(name, path, tree).facts
    if source is not None:
        annotations, bad = parse_unit_annotations(source)
        facts.unit_annotations = annotations
        facts.bad_unit_annotations = bad
    return facts


# ---------------------------------------------------------------------------
# project context
# ---------------------------------------------------------------------------
class ProjectContext:
    """All modules of one lint invocation, indexed for cross-module
    analysis."""

    def __init__(self, modules: Sequence[ModuleFacts]):
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in modules:
            name = facts.module
            # Duplicate stems (two fixture dirs both holding `a.py`)
            # get path-disambiguated names so neither is shadowed.
            while name in self.modules \
                    and self.modules[name].path != facts.path:
                name = name + "+"
            self.modules[name] = facts
            if name != facts.module:
                facts = dataclasses.replace(facts, module=name)
                self.modules[name] = facts
        #: "module.local_qualname" -> (ModuleFacts, FunctionFacts)
        self.functions: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        #: module -> bare name -> [qualnames in that module]
        self._bare: Dict[str, Dict[str, List[str]]] = {}
        #: bare name -> [qualnames project-wide], for CHA-lite edges
        self._by_name: Dict[str, List[str]] = {}
        for mod_name, facts in self.modules.items():
            bare = self._bare.setdefault(mod_name, {})
            for local_qual, fn in facts.functions.items():
                full = mod_name + "." + local_qual
                self.functions[full] = (facts, fn)
                bare.setdefault(fn.name, []).append(full)
                self._by_name.setdefault(fn.name, []).append(full)
        self._edges: Optional[Dict[str, Set[str]]] = None

    # -- resolution ----------------------------------------------------
    def resolve_function(self, dotted: Optional[str],
                         from_module: Optional[str] = None,
                         _depth: int = 0) -> Optional[str]:
        """Canonical function qualname for an alias-expanded dotted name.

        Follows re-export chains (``from repro.lint.framework import
        LintRunner`` in ``repro.lint`` makes ``repro.lint.LintRunner``
        resolve to ``repro.lint.framework.LintRunner``).
        """
        if dotted is None or _depth > 8:
            return None
        if dotted in self.functions:
            return dotted
        parts = dotted.split(".")
        if len(parts) == 1:
            # A bare name: only resolvable inside its own module.
            if from_module is not None:
                candidate = from_module + "." + dotted
                if candidate in self.functions:
                    return candidate
            return None
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module not in self.modules:
                continue
            rest = ".".join(parts[split:])
            candidate = module + "." + rest
            if candidate in self.functions:
                return candidate
            imports = self.modules[module].imports
            head = parts[split]
            if head in imports:
                tail = parts[split + 1:]
                chained = imports[head] + ("." + ".".join(tail)
                                           if tail else "")
                return self.resolve_function(chained, _depth=_depth + 1)
            return None
        return None

    # -- call graph ----------------------------------------------------
    #: Cap on project-wide candidates an unresolved attribute call may
    #: fan out to (CHA-lite).  Names defined in more places than this
    #: are too generic to produce useful edges.
    CHA_FANOUT = 3

    def resolve_call(self, facts: ModuleFacts, fn: FunctionFacts,
                     call: CallFacts) -> List[str]:
        """Candidate callee qualnames for one call site.

        Resolution order, in decreasing confidence: (1) import-resolved
        targets anywhere in the project (a resolvable *class* call is
        its constructor); (2) ``self.method()`` within the same class;
        (3) bare/attribute names within the *same module* — the old
        single-file heuristic; (4) an attribute call whose method name
        is defined at most :data:`CHA_FANOUT` times project-wide links
        to all of them (so ``emulator.submit(...)`` finds
        ``QueryEmulator.submit`` without type inference, while generic
        names like ``.get`` produce no edges at all).
        """
        if call.is_sim_run:
            # The engine sink itself: rules inspect these call sites
            # directly, and a bare ``.run`` must never fan out to
            # unrelated project methods named ``run``.
            return []
        resolved = self.resolve_function(call.target,
                                         from_module=facts.module)
        if resolved is None and call.target:
            resolved = self.resolve_function(call.target + ".__init__",
                                             from_module=facts.module)
        if resolved is not None:
            return [resolved]
        if call.receiver == "self" and fn.cls is not None:
            candidate = "%s.%s.%s" % (facts.module, fn.cls, call.attr)
            if candidate in self.functions:
                return [candidate]
        name = call.attr or call.bare
        if not name:
            return []
        local = self._bare.get(facts.module, {}).get(name)
        if local:
            return list(local)
        if call.attr is not None and not name.startswith("__") \
                and name not in MUTATING_METHODS:
            everywhere = self._by_name.get(name, ())
            if 0 < len(everywhere) <= self.CHA_FANOUT:
                return list(everywhere)
        return []

    def resolve_callback(self, facts: ModuleFacts,
                         name: str) -> List[str]:
        """Candidate functions a scheduled-callback *name* may refer to.

        Callbacks are stored as bare names (``tick``, ``self.on_timer``
        keeps only ``on_timer``), so resolution tries, in order: any
        same-module function of that name, an imported function, and
        finally the CHA-lite project-wide lookup.
        """
        local = self._bare.get(facts.module, {}).get(name)
        if local:
            return list(local)
        resolved = self.resolve_function(facts.imports.get(name, name),
                                         from_module=facts.module)
        if resolved is not None:
            return [resolved]
        everywhere = self._by_name.get(name, ())
        if 0 < len(everywhere) <= self.CHA_FANOUT:
            return list(everywhere)
        return []

    def call_edges(self) -> Dict[str, Set[str]]:
        """caller qualname -> callee qualnames (see
        :meth:`resolve_call`)."""
        if self._edges is not None:
            return self._edges
        edges: Dict[str, Set[str]] = {}
        for full, (facts, fn) in self.functions.items():
            out: Set[str] = set()
            for call in fn.calls:
                out.update(self.resolve_call(facts, fn, call))
            edges[full] = out
        self._edges = edges
        return edges

    def reachable_from(self, roots: Iterable[str]
                       ) -> Dict[str, Optional[str]]:
        """BFS closure over :meth:`call_edges`.

        Returns ``{qualname: predecessor}`` (roots map to ``None``), so
        rules can render a witness chain in their messages.
        """
        edges = self.call_edges()
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for callee in sorted(edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    frontier.append(callee)
        return parents

    def witness_chain(self, parents: Dict[str, Optional[str]],
                      qualname: str, limit: int = 4) -> str:
        """Human-readable ``a -> b -> c`` chain from a root to
        ``qualname``."""
        chain: List[str] = []
        current: Optional[str] = qualname
        while current is not None and len(chain) < 32:
            chain.append(current)
            current = parents.get(current)
        chain.reverse()
        if len(chain) > limit:
            chain = chain[:1] + ["..."] + chain[-(limit - 1):]
        return " -> ".join(_short_name(item) for item in chain)

    # -- convenience ---------------------------------------------------
    def functions_in_module(self, predicate) -> List[str]:
        return sorted(full for full, (facts, fn) in self.functions.items()
                      if predicate(facts, fn))

    def constant_strings(self, name: str
                         ) -> Optional[Tuple[str, int, List[str]]]:
        """Find a module-level string-collection constant by bare name.

        Returns ``(path, line, strings)`` for the first module defining
        it (module-name order), or None.
        """
        for mod_name in sorted(self.modules):
            facts = self.modules[mod_name]
            if name in facts.module_constants:
                line, strings = facts.module_constants[name]
                return facts.path, line, list(strings)
        return None


def _short_name(qualname: str) -> str:
    if qualname == "...":
        return qualname
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qualname


# ---------------------------------------------------------------------------
# project rules
# ---------------------------------------------------------------------------
class ProjectRule:
    """Base class for project-scope simlint rules.

    Unlike :class:`repro.lint.framework.Rule`, one instance runs once
    per lint invocation, after every file's per-file walk, and sees the
    whole :class:`ProjectContext`.  Report through :meth:`report`; the
    runner applies suppression comments by the finding's file and line
    exactly as for per-file rules.
    """

    id = "XXX000"
    name = "unnamed"
    severity = "error"
    description = ""
    scope = "project"

    def __init__(self) -> None:
        self.findings: List = []

    def check(self, project: ProjectContext) -> None:
        raise NotImplementedError

    def report(self, path: str, line: int, message: str,
               col: int = 0, end_line: int = 0) -> None:
        from repro.lint.framework import Finding
        self.findings.append(Finding(
            rule=self.id, severity=self.severity, path=path, line=line,
            col=col, message=message, end_line=end_line or line))
