"""On-disk incremental cache for simlint.

Repeated CI runs mostly re-lint unchanged files.  The cache stores, per
file, everything a run produces for it — findings, the
:class:`~repro.lint.project.ModuleFacts` the project pass needs, and
the parsed suppression state — keyed by the SHA-256 of the file
*content*, so renames and ``touch`` are free and any edit invalidates
exactly that file.  Project-scope rules always re-run (they are
cross-file by nature), but on a warm cache they run over restored
facts without a single re-parse.

The whole cache is invalidated when anything that shapes *analysis*
changes: the facts schema, the rule-pack version, the ``exclude``
configuration (it changes what the project pass sees), and the lint
package's own source (so a rule edit can never replay findings
computed by older logic, even without a manual ``RULEPACK_VERSION``
bump).  The store's *signature* covers them all, and a signature
mismatch simply starts an empty cache.  A corrupt or unreadable cache
file is likewise treated as empty — the cache can slow a run down,
never break it.

The *rule selection* (``enable``/``disable`` edits in
``[tool.simlint]``, ``--select``/``--disable``) is deliberately **not**
part of the store signature: per-file facts and the inferred-signature
table do not depend on which rules consume them, so toggling a pack
must not nuke them.  Instead each per-file entry records the rule ids
active when it was written; a file replays from cache when the current
selection is a subset of the recorded one (cached findings of now-
disabled rules are filtered out on restore), and re-analyzes only when
the selection grew a rule the entry never ran.

Besides per-file entries the store carries one store-wide section: the
inferred unit *signature table* from :mod:`repro.lint.simtype`, keyed
by a digest of every seen file's content hash.  On a warm run whose
file set is byte-identical, the table seeds the inference fixpoints —
the engine starts at the previous solution and converges in one
verification round, and the runner reports it via
``signatures_from_cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional

from repro.lint.framework import Finding, _Suppressions
from repro.lint.project import FACTS_VERSION, ModuleFacts

__all__ = ["CacheStore", "RULEPACK_VERSION"]

#: Bump when any rule's behavior changes without its id changing, so
#: warm caches cannot serve findings computed by older logic.
#: v3: effect-parity (EFF/RPLY) and RNG-lineage packs on simflow.
RULEPACK_VERSION = 3

#: Shape of the cache file itself.
#: v2: store-wide inferred-signature section ("signatures").
#: v3: per-entry "rules" (active rule ids at record time); the rule
#: selection left the store signature.
_CACHE_SCHEMA = 3


def _content_key(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_source_digest_cache: Optional[str] = None


def _lint_source_digest() -> str:
    """Digest of the lint package's own ``.py`` sources.

    Any edit to a rule or the engine changes the digest and therefore
    the store signature — warm caches can never serve findings a
    different implementation computed.
    """
    global _source_digest_cache
    if _source_digest_cache is None:
        digest = hashlib.sha256()
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8"))
            try:
                with open(os.path.join(package_dir, name), "rb") as fh:
                    digest.update(fh.read())
            except OSError:  # pragma: no cover - unreadable install
                pass
        _source_digest_cache = digest.hexdigest()[:16]
    return _source_digest_cache


class CacheStore:
    """One cache file, loaded at open and written back at save."""

    def __init__(self, path: str, signature: str):
        self.path = path
        self.signature = signature
        self.entries: Dict[str, Dict[str, Any]] = {}
        self._seen: List[str] = []
        #: {"key": files digest, "table": simtype signature table}
        self._signatures: Optional[Dict[str, Any]] = None

    @classmethod
    def open(cls, path: str, runner) -> "CacheStore":
        signature = cls.signature_for(runner)
        store = cls(path, signature)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if (data.get("schema") == _CACHE_SCHEMA
                    and data.get("signature") == signature):
                store.entries = data.get("files", {})
                store._signatures = data.get("signatures")
        except (OSError, ValueError):
            pass  # absent or corrupt: start cold
        return store

    @staticmethod
    def signature_for(runner) -> str:
        # Deliberately selection-free: see the module docstring.  Only
        # ``exclude`` stays — it shapes the file set the project pass
        # (and therefore the signature table) was computed over.
        config_fp = hashlib.sha256(json.dumps(
            sorted(runner.config.exclude),
        ).encode("utf-8")).hexdigest()[:16]
        return "v%d/facts%d/src:%s/excl:%s" % (
            RULEPACK_VERSION, FACTS_VERSION, _lint_source_digest(),
            config_fp)

    @staticmethod
    def _active_rule_ids(runner) -> List[str]:
        return sorted(cls.id for cls in (runner.rule_classes
                                         + runner.project_rule_classes))

    # -- per-file protocol ---------------------------------------------
    def restore(self, runner, path: str,
                source: str) -> Optional[List[Finding]]:
        """Replay a cached result for ``path``, or None on a miss.

        A hit additionally requires every currently-active rule to
        have been active when the entry was recorded; findings of
        rules since disabled are filtered out (``META001`` diagnostics
        always survive — they describe the file, not a rule).
        """
        entry = self.entries.get(path)
        if entry is None or entry.get("key") != _content_key(source):
            return None
        active = self._active_rule_ids(runner)
        recorded = set(entry.get("rules", ()))
        if any(rule_id not in recorded for rule_id in active):
            return None  # selection grew: this rule never ran here
        keep = set(active)
        keep.add("META001")
        self._seen.append(path)
        runner.files_scanned += 1
        runner.files_from_cache += 1
        if entry.get("facts") is not None and runner.project_rule_classes:
            runner._facts_by_path[path] = ModuleFacts.from_json(
                entry["facts"])
        runner._suppressions[path] = _Suppressions.from_json(
            entry["suppressions"])
        return [Finding(rule=f["rule"], severity=f["severity"],
                        path=f["path"], line=f["line"], col=f["col"],
                        message=f["message"], end_line=f["end_line"],
                        suppressed=f["suppressed"])
                for f in entry["findings"] if f["rule"] in keep]

    def record(self, runner, path: str, source: str,
               findings: List[Finding]) -> None:
        facts = runner._facts_by_path.get(path)
        suppressions = runner._suppressions.get(path)
        if suppressions is None:  # syntax error: nothing worth caching
            return
        self._seen.append(path)
        self.entries[path] = {
            "key": _content_key(source),
            "rules": self._active_rule_ids(runner),
            "findings": [{
                "rule": f.rule, "severity": f.severity, "path": f.path,
                "line": f.line, "col": f.col, "end_line": f.end_line,
                "message": f.message, "suppressed": f.suppressed,
            } for f in findings],
            "facts": facts.to_json() if facts is not None else None,
            "suppressions": suppressions.to_json(),
        }

    # -- store-wide inferred signatures --------------------------------
    def files_key(self) -> str:
        """Digest of every seen file's (path, content hash) pair — the
        validity condition for the persisted signature table."""
        digest = hashlib.sha256()
        for path in sorted(set(self._seen)):
            entry = self.entries.get(path)
            if entry is not None:
                digest.update(path.encode("utf-8"))
                digest.update(entry["key"].encode("utf-8"))
        return digest.hexdigest()

    def restore_signatures(self) -> Optional[Dict[str, Any]]:
        """The cached simtype signature table, if it was computed from
        exactly the file contents this run saw (call after the per-file
        pass)."""
        if (self._signatures is not None
                and self._signatures.get("key") == self.files_key()):
            return self._signatures.get("table")
        return None

    def record_signatures(self, table: Optional[Dict[str, Any]]) -> None:
        if table is not None:
            self._signatures = {"key": self.files_key(), "table": table}

    def save(self) -> None:
        # Keep only files this run actually visited, so deleted or
        # newly-excluded files do not accumulate forever.
        seen = set(self._seen)
        files = {path: entry for path, entry in self.entries.items()
                 if path in seen}
        payload = {"schema": _CACHE_SCHEMA, "signature": self.signature,
                   "files": files, "signatures": self._signatures}
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - read-only checkout etc.
            try:
                os.unlink(tmp)
            except OSError:
                pass
