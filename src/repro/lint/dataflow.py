"""Interprocedural taint propagation over :mod:`repro.lint.project`.

The determinism-flow pack needs to answer questions like "can a value
produced by ``time.time()`` reach the delay argument of ``schedule()``
through any chain of assignments and calls, possibly crossing module
boundaries?".  This module implements the smallest analysis that
answers them soundly enough for a linter:

* **intraprocedural def-use** — each function is evaluated over the
  name-level :class:`~repro.lint.project.FunctionFacts` summaries
  (assignments, returns, call arguments), with two passes so flows
  through loop-carried names converge;
* **bottom-up return summaries** — a fixpoint computes, per function,
  which taint its return value may carry, expressed over *placeholder*
  tokens for its parameters so callers can substitute their own
  arguments (context-insensitive but parameter-sensitive);
* **top-down parameter taint** — a second fixpoint pushes concrete
  source tokens into callee parameters at every resolved call site.

Taint is a set of *tokens*: ``(source description, path, line)`` for a
concrete nondeterministic source, plus a ``via`` chain of the functions
it crossed, so findings can print ``time.time (host.py:42) via jitter
-> backoff``.  Unresolved calls (stdlib, externals) conservatively pass
argument taint through to their result — ``max(time.time(), floor)``
stays tainted — while *resolved* calls use the callee's summary, which
keeps false positives down inside the project itself.

Everything here is pure computation over facts: no ASTs are re-walked,
so the analysis composes with the incremental facts cache.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.project import (
    CallFacts,
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
)

__all__ = ["TaintAnalysis", "FunctionTaint", "format_token"]

#: Tag for placeholder tokens standing in for a callee parameter.
_PARAM = "<param>"

#: Cap on the recorded ``via`` chain (findings stay readable; taint
#: still propagates past the cap, only the provenance is truncated).
_VIA_LIMIT = 4

# A token key is ("<param>", name, 0) or (source desc, path, line);
# a token set maps key -> via tuple (first discovery wins, which keeps
# the fixpoints monotone: sets only ever gain keys).
TokenSet = Dict[tuple, tuple]


def _param_token(name: str) -> tuple:
    return (_PARAM, name, 0)


def _is_param(key: tuple) -> bool:
    return key[0] == _PARAM


def _merge(dst: TokenSet, src: TokenSet) -> bool:
    changed = False
    for key, via in src.items():
        if key not in dst:
            dst[key] = via
            changed = True
    return changed


def format_token(key: tuple, via: tuple) -> str:
    """Render one taint token for a finding message."""
    desc, path, line = key
    origin = "%s (%s:%d)" % (desc, path, line)
    if via:
        return origin + " via " + " -> ".join(via)
    return origin


class FunctionTaint:
    """Final (concrete) taint facts for one function.

    All lists are index-aligned with the corresponding
    :class:`~repro.lint.project.FunctionFacts` lists, so rules can zip
    them against the syntactic facts they already iterate.
    """

    __slots__ = ("call_args", "call_out", "assigns", "returns")

    def __init__(self, n_calls: int, n_assigns: int, n_returns: int):
        #: per call: {arg slot -> TokenSet} (slot is int or kwarg name)
        self.call_args: List[Dict[object, TokenSet]] = [
            {} for _ in range(n_calls)]
        #: per call: taint of the call's result
        self.call_out: List[TokenSet] = [{} for _ in range(n_calls)]
        #: per assignment: taint of the right-hand side
        self.assigns: List[TokenSet] = [{} for _ in range(n_assigns)]
        #: per return statement: taint of the returned value
        self.returns: List[TokenSet] = [{} for _ in range(n_returns)]


class TaintAnalysis:
    """Project-wide taint propagation from caller-supplied sources.

    ``is_source(call, facts)`` classifies one call site: return a short
    description ("time.time") when the call *produces* nondeterminism,
    else None.  After :meth:`run`, :meth:`function_taint` yields
    concrete per-function taint with full provenance.
    """

    #: Fixpoint iteration caps.  Both loops are monotone over finite
    #: token universes so they terminate on their own; the caps only
    #: bound pathological projects.
    MAX_SUMMARY_ROUNDS = 10
    MAX_PARAM_ROUNDS = 20

    def __init__(self, project: ProjectContext,
                 is_source: Callable[[CallFacts, ModuleFacts],
                                     Optional[str]]):
        self.project = project
        self.is_source = is_source
        #: fq -> TokenSet a call of the function may return (may
        #: contain parameter placeholders).
        self.summaries: Dict[str, TokenSet] = {}
        #: fq -> {param name -> concrete TokenSet}
        self.param_in: Dict[str, Dict[str, TokenSet]] = {}
        self._final: Dict[str, FunctionTaint] = {}

    # -- public API ----------------------------------------------------
    def run(self) -> None:
        order = sorted(self.project.functions)
        self._fixpoint_summaries(order)
        self._fixpoint_params(order)

    def function_taint(self, fq: str) -> FunctionTaint:
        """Concrete taint for one function (lazily computed)."""
        taint = self._final.get(fq)
        if taint is None:
            taint = self._evaluate(fq, self._concrete_env(fq),
                                   record=True)[1]
            self._final[fq] = taint
        return taint

    # -- fixpoints -----------------------------------------------------
    def _fixpoint_summaries(self, order: List[str]) -> None:
        for fq in order:
            self.summaries[fq] = {}
        for _ in range(self.MAX_SUMMARY_ROUNDS):
            changed = False
            for fq in order:
                _, fn = self.project.functions[fq]
                env = {p: {_param_token(p): ()} for p in fn.params}
                ret = self._evaluate(fq, env)[0]
                if _merge(self.summaries[fq], ret):
                    changed = True
            if not changed:
                break

    def _fixpoint_params(self, order: List[str]) -> None:
        for fq in order:
            self.param_in[fq] = {}
        for _ in range(self.MAX_PARAM_ROUNDS):
            changed = False
            for fq in order:
                facts, fn = self.project.functions[fq]
                taint = self._evaluate(fq, self._concrete_env(fq),
                                       record=True)[1]
                for index, call in enumerate(fn.calls):
                    callees = self.project.resolve_call(facts, fn, call)
                    if not callees:
                        continue
                    arg_toks = taint.call_args[index]
                    for callee in callees:
                        if self._push_args(callee, arg_toks, call):
                            changed = True
            if not changed:
                break

    def _push_args(self, callee: str,
                   arg_toks: Dict[object, TokenSet],
                   call: CallFacts) -> bool:
        _, cfn = self.project.functions[callee]
        sink = self.param_in[callee]
        changed = False
        for pname in cfn.params:
            incoming = self._tokens_for_param(cfn, pname, arg_toks, call)
            if not incoming:
                continue
            concrete = {k: v for k, v in incoming.items()
                        if not _is_param(k)}
            if concrete and _merge(sink.setdefault(pname, {}), concrete):
                changed = True
        return changed

    def _tokens_for_param(self, cfn: FunctionFacts, pname: str,
                          arg_toks: Dict[object, TokenSet],
                          call: CallFacts) -> TokenSet:
        """Union of argument taint that may bind to ``pname``.

        Positional mapping cannot know whether the callee is invoked as
        a bound method (implicit ``self``) or as a plain function, so a
        parameter at position *j* accepts both slot *j* and slot *j-1*
        — over-approximate, never missing.
        """
        out: TokenSet = {}
        _merge(out, arg_toks.get(pname, {}))
        if pname in cfn.params:
            j = cfn.params.index(pname)
            _merge(out, arg_toks.get(j, {}))
            if j > 0 and cfn.params[0] in ("self", "cls") \
                    and call.attr is not None:
                _merge(out, arg_toks.get(j - 1, {}))
        return out

    def _concrete_env(self, fq: str) -> Dict[str, TokenSet]:
        _, fn = self.project.functions[fq]
        incoming = self.param_in.get(fq, {})
        return {p: dict(incoming.get(p, {})) for p in fn.params}

    # -- one-function evaluation ---------------------------------------
    def _evaluate(self, fq: str, env: Dict[str, TokenSet],
                  record: bool = False
                  ) -> Tuple[TokenSet, FunctionTaint]:
        facts, fn = self.project.functions[fq]
        taint = FunctionTaint(len(fn.calls), len(fn.assigns),
                              len(fn.returns))
        ret: TokenSet = {}
        # Two passes so a flow through a loop-carried name (defined
        # textually *after* its first read) still converges.
        for _ in range(2):
            call_memo: Dict[int, TokenSet] = {}
            for index in range(len(fn.calls)):
                self._call_out(facts, fn, index, env, call_memo, taint)
            for a_index, (targets, names, calls, _line) in \
                    enumerate(fn.assigns):
                rhs: TokenSet = {}
                for name in names:
                    _merge(rhs, env.get(name, {}))
                for c_index in calls:
                    _merge(rhs, call_memo.get(c_index, {}))
                taint.assigns[a_index] = rhs
                for target in targets:
                    _merge(env.setdefault(target, {}), rhs)
            for r_index, (names, calls, _line) in enumerate(fn.returns):
                out: TokenSet = {}
                for name in names:
                    _merge(out, env.get(name, {}))
                for c_index in calls:
                    _merge(out, call_memo.get(c_index, {}))
                taint.returns[r_index] = out
                _merge(ret, out)
        return ret, taint

    def _call_out(self, facts: ModuleFacts, fn: FunctionFacts,
                  index: int, env: Dict[str, TokenSet],
                  memo: Dict[int, TokenSet],
                  taint: FunctionTaint) -> TokenSet:
        if index in memo:
            return memo[index]
        memo[index] = {}  # cycle guard; nested args only look backwards
        call = fn.calls[index]
        arg_toks: Dict[object, TokenSet] = {}
        all_args: TokenSet = {}
        for arg in call.args:
            toks: TokenSet = {}
            for name in arg.names:
                _merge(toks, env.get(name, {}))
            for c_index in arg.calls:
                _merge(toks, self._call_out(facts, fn, c_index, env,
                                            memo, taint))
            arg_toks[arg.slot] = toks
            _merge(all_args, toks)
        out: TokenSet = {}
        desc = self.is_source(call, facts)
        if desc is not None:
            out[(desc, facts.path, call.line)] = ()
        callees = self.project.resolve_call(facts, fn, call)
        if callees:
            for callee in callees:
                self._substitute(callee, arg_toks, call, out)
        else:
            # External/unresolved call: taint in, taint out.
            _merge(out, all_args)
        memo[index] = out
        taint.call_args[index] = arg_toks
        taint.call_out[index] = out
        return out

    def _substitute(self, callee: str,
                    arg_toks: Dict[object, TokenSet],
                    call: CallFacts, out: TokenSet) -> None:
        """Instantiate a callee summary at one call site."""
        summary = self.summaries.get(callee)
        if not summary:
            return
        _, cfn = self.project.functions[callee]
        hop = callee.rsplit(".", 1)[-1]
        for key, via in summary.items():
            if _is_param(key):
                bound = self._tokens_for_param(cfn, key[1], arg_toks,
                                               call)
                for b_key, b_via in bound.items():
                    if b_key not in out:
                        out[b_key] = b_via
            elif key not in out:
                out[key] = (via + (hop,))[:_VIA_LIMIT]
