"""Unidirectional network links.

A :class:`Link` models the path between two adjacent nodes as:

* a FIFO transmit queue drained at ``bandwidth`` bytes/second (fluid
  model: the queue is represented by a ``busy_until`` horizon, so
  back-to-back packets serialize correctly — this is what makes the
  paper's "temporal clusters of packet events" (Fig. 4) visible);
* a fixed propagation ``delay``;
* optional Bernoulli packet loss;
* optional per-packet jitter, modelling path variability beyond queuing;
* tail drop when the queue backlog exceeds ``queue_limit_bytes``.

Bidirectional connectivity is built from two independent ``Link`` objects
(see :class:`repro.net.topology.Topology`), which allows asymmetric paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.obs import runtime as _obs
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

#: Signature of a deterministic fault filter: called with the packet and
#: its 0-based offer index on this link; returning True drops the packet.
FaultFilter = Callable[[Packet, int], bool]


@dataclass
class LinkStats:
    """Counters maintained by every link."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    packets_dropped_queue: int = 0
    bytes_delivered: int = 0

    @property
    def loss_fraction(self) -> float:
        """Fraction of offered packets lost to random loss."""
        if self.packets_offered == 0:
            return 0.0
        return self.packets_lost / self.packets_offered


class Link:
    """A unidirectional link between two nodes.

    Parameters
    ----------
    sim:
        The simulator driving the link.
    name:
        Human-readable identifier, also used to derive the loss RNG stream.
    delay:
        One-way propagation delay in seconds.
    bandwidth:
        Serialization rate in bytes per second.
    deliver:
        Callback invoked as ``deliver(packet)`` when a packet arrives at
        the far end.
    loss_rate:
        Independent per-packet drop probability in [0, 1].
    jitter:
        If positive, each packet receives an extra uniform(0, jitter)
        seconds of delay.  Jitter is bounded so FIFO ordering can be
        violated only across, never within, a serialization burst; to keep
        the transport simple we re-impose ordering by clamping each
        delivery to be no earlier than the previous one.
    queue_limit_bytes:
        Maximum backlog; packets that would exceed it are tail-dropped.
    streams:
        RNG registry; loss and jitter draw from streams named after the link.
    fault_filter:
        Optional deterministic drop rule ``fn(packet, offer_index) ->
        bool`` for failure-injection tests (e.g. "drop the 7th data
        packet").  Faulted packets count as random losses in the stats.
    """

    def __init__(self, sim: Simulator, name: str, *,
                 delay: float,
                 bandwidth: float,
                 deliver: Callable[[Packet], None],
                 loss_rate: float = 0.0,
                 jitter: float = 0.0,
                 queue_limit_bytes: int = 4 * 1024 * 1024,
                 streams: Optional[RandomStreams] = None,
                 fault_filter: Optional[FaultFilter] = None):
        if delay < 0:
            raise ValueError("delay must be >= 0, got %r" % delay)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0, got %r" % bandwidth)
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1), got %r" % loss_rate)
        if jitter < 0:
            raise ValueError("jitter must be >= 0, got %r" % jitter)
        if queue_limit_bytes <= 0:
            raise ValueError("queue_limit_bytes must be > 0")
        self.sim = sim
        self.name = name
        self.delay = delay
        self.bandwidth = bandwidth
        self.loss_rate = loss_rate
        self.jitter = jitter
        self.queue_limit_bytes = queue_limit_bytes
        self.deliver = deliver
        self.streams = streams or RandomStreams(0)
        self.fault_filter = fault_filter
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._last_delivery_time = 0.0
        self._offer_index = 0

    # ------------------------------------------------------------------
    @property
    def backlog_bytes(self) -> float:
        """Bytes currently waiting in (or being drained from) the queue."""
        pending = self._busy_until - self.sim.now
        return max(0.0, pending) * self.bandwidth

    def transmission_delay(self, packet: Packet) -> float:
        """Serialization time for ``packet`` on this link."""
        return packet.size_bytes / self.bandwidth

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Offer ``packet`` to the link.

        Returns True if the packet was accepted (it may still be lost in
        flight), False if it was tail-dropped at the queue.
        """
        offer_index = self._offer_index
        self._offer_index = offer_index + 1
        stats = self.stats
        stats.packets_offered += 1

        # Inline backlog_bytes / transmission_delay: send() runs once
        # per packet per hop, and the property + method calls showed up
        # in campaign profiles.  The clock is read through the engine's
        # storage attribute for the same reason (``now`` is a property).
        sim = self.sim
        now = sim._now
        busy = self._busy_until
        size = packet.size_bytes
        bandwidth = self.bandwidth
        backlog = busy - now
        backlog = backlog * bandwidth if backlog > 0.0 else 0.0
        if backlog + size > self.queue_limit_bytes:
            stats.packets_dropped_queue += 1
            if _obs.enabled:
                _obs.metrics.inc("link.packets_dropped_queue")
            return False

        start = busy if busy > now else now
        tx_done = start + size / bandwidth
        self._busy_until = tx_done

        if self.fault_filter is not None and \
                self.fault_filter(packet, offer_index):
            stats.packets_lost += 1
            if _obs.enabled:
                _obs.metrics.inc("link.packets_lost")
            return True

        if self.loss_rate and self.streams.bernoulli(
                "loss/" + self.name, self.loss_rate):
            # The packet still occupied the wire (busy_until already
            # advanced) but never arrives.
            stats.packets_lost += 1
            if _obs.enabled:
                _obs.metrics.inc("link.packets_lost")
            return True

        arrival = tx_done + self.delay
        if self.jitter:
            arrival += self.streams.uniform("jitter/" + self.name,
                                            0.0, self.jitter)
        # Clamp to preserve FIFO delivery despite jitter.
        if arrival < self._last_delivery_time:
            arrival = self._last_delivery_time
        self._last_delivery_time = arrival
        sim.call_at(arrival, self._arrive, packet)
        return True

    def _arrive(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size_bytes
        self.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Link %s delay=%.4fs bw=%.0fB/s loss=%.3g>" % (
            self.name, self.delay, self.bandwidth, self.loss_rate)
