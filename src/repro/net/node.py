"""Network nodes.

A :class:`Node` owns outgoing links, a next-hop routing table, a registry
of transport protocol handlers (keyed by the packet ``protocol`` tag), and
a list of *taps* — observers that see every packet the node originates,
receives, forwards, or drops.  The packet-capture layer used by the
measurement emulator is implemented purely as a tap, so analysis code sees
exactly what a tcpdump at that host would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.geo import GeoPoint
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator

#: Tap event names, in the order a forwarding node would emit them.
TAP_EVENTS = ("send", "recv", "forward", "drop")

TapFn = Callable[[str, Packet], None]


@dataclass
class NodeStats:
    """Per-node packet counters."""

    sent: int = 0
    received: int = 0
    forwarded: int = 0
    dropped_no_route: int = 0
    dropped_no_handler: int = 0


class Node:
    """A host or router in the simulated network."""

    def __init__(self, sim: Simulator, name: str,
                 location: Optional[GeoPoint] = None):
        if not name:
            raise ValueError("node name must be non-empty")
        self.sim = sim
        self.name = name
        self.location = location
        self.links: Dict[str, Link] = {}
        self.routes: Dict[str, str] = {}
        self.protocol_handlers: Dict[str, Callable[[Packet], None]] = {}
        self.taps: List[TapFn] = []
        self.stats = NodeStats()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, neighbor: str, link: Link) -> None:
        """Register the outgoing ``link`` toward ``neighbor``."""
        if neighbor in self.links:
            raise ValueError("%s already has a link to %s" % (self.name, neighbor))
        self.links[neighbor] = link

    def register_protocol(self, protocol: str,
                          handler: Callable[[Packet], None]) -> None:
        """Register ``handler(packet)`` for packets tagged ``protocol``."""
        if protocol in self.protocol_handlers:
            raise ValueError("protocol %r already registered on %s"
                             % (protocol, self.name))
        self.protocol_handlers[protocol] = handler

    def add_tap(self, tap: TapFn) -> None:
        """Attach a packet observer called as ``tap(event, packet)``."""
        self.taps.append(tap)

    def remove_tap(self, tap: TapFn) -> None:
        self.taps.remove(tap)

    def _notify(self, event: str, packet: Packet) -> None:
        for tap in self.taps:
            tap(event, packet)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Originate ``packet`` from this node.

        Returns True if a first hop accepted the packet.
        """
        # Origination is the first hop, so the loop/budget check done by
        # record_hop cannot trip here; a bare append keeps the
        # per-segment send path one call shorter.
        packet.hops.append(self.name)
        self.stats.sent += 1
        if self.taps:
            self._notify("send", packet)
        return self._route(packet)

    def deliver(self, packet: Packet) -> None:
        """Entry point for packets arriving on an incoming link."""
        if packet.dst == self.name:
            self.stats.received += 1
            if self.taps:
                self._notify("recv", packet)
            handler = self.protocol_handlers.get(packet.protocol)
            if handler is None:
                self.stats.dropped_no_handler += 1
                self._notify("drop", packet)
                return
            handler(packet)
        else:
            packet.record_hop(self.name)
            self.stats.forwarded += 1
            if self.taps:
                self._notify("forward", packet)
            self._route(packet)

    def _route(self, packet: Packet) -> bool:
        next_hop = self.routes.get(packet.dst)
        if next_hop is None:
            # Directly connected destinations need no routing table entry.
            if packet.dst in self.links:
                next_hop = packet.dst
            else:
                self.stats.dropped_no_route += 1
                self._notify("drop", packet)
                return False
        link = self.links.get(next_hop)
        if link is None:
            self.stats.dropped_no_route += 1
            self._notify("drop", packet)
            return False
        return link.send(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Node %s links=%d>" % (self.name, len(self.links))
