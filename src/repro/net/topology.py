"""Topology assembly.

:class:`Topology` is the one-stop builder used by the testbed layer: it
creates nodes, wires bidirectional (pairs of unidirectional) links with
delays derived either from explicit parameters or from node geography, and
computes static shortest-path routes.

A link's one-way propagation delay resolution order:

1. explicit ``delay=`` argument;
2. explicit ``distance_miles=`` argument (converted via fiber speed);
3. the great-circle distance between the two nodes' locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.geo import GeoPoint
from repro.net.link import Link
from repro.net.node import Node
from repro.net.routing import build_routing_tables
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class LinkSpec:
    """Requested characteristics of one direction of a connection."""

    delay: float
    bandwidth: float
    loss_rate: float = 0.0
    jitter: float = 0.0
    queue_limit_bytes: int = 4 * 1024 * 1024


class Topology:
    """A mutable collection of nodes and links plus routing."""

    def __init__(self, sim: Simulator,
                 streams: Optional[RandomStreams] = None):
        self.sim = sim
        self.streams = streams or RandomStreams(0)
        self.nodes: Dict[str, Node] = {}
        self._edges: Dict[str, Dict[str, float]] = {}
        self._routes_stale = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, name: str,
                 location: Optional[GeoPoint] = None) -> Node:
        """Create and register a node.  Names must be unique."""
        if name in self.nodes:
            raise ValueError("duplicate node name %r" % name)
        node = Node(self.sim, name, location)
        self.nodes[name] = node
        self._edges[name] = {}
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError("unknown node %r" % name) from None

    def connect(self, a: str, b: str, *,
                delay: Optional[float] = None,
                distance_miles: Optional[float] = None,
                bandwidth: float = units.mbps(100),
                loss_rate: float = 0.0,
                jitter: float = 0.0,
                queue_limit_bytes: int = 4 * 1024 * 1024,
                route_inflation: float = units.DEFAULT_ROUTE_INFLATION
                ) -> Tuple[Link, Link]:
        """Create a symmetric bidirectional connection between two nodes.

        Returns the ``(a->b, b->a)`` link pair.
        """
        node_a, node_b = self.node(a), self.node(b)
        resolved = self._resolve_delay(node_a, node_b, delay,
                                       distance_miles, route_inflation)
        spec = LinkSpec(delay=resolved, bandwidth=bandwidth,
                        loss_rate=loss_rate, jitter=jitter,
                        queue_limit_bytes=queue_limit_bytes)
        forward = self._make_link(node_a, node_b, spec)
        backward = self._make_link(node_b, node_a, spec)
        return forward, backward

    def connect_asymmetric(self, a: str, b: str,
                           forward: LinkSpec, backward: LinkSpec
                           ) -> Tuple[Link, Link]:
        """Create a connection with independent per-direction specs."""
        node_a, node_b = self.node(a), self.node(b)
        return (self._make_link(node_a, node_b, forward),
                self._make_link(node_b, node_a, backward))

    def _resolve_delay(self, node_a: Node, node_b: Node,
                       delay: Optional[float],
                       distance_miles: Optional[float],
                       route_inflation: float) -> float:
        if delay is not None:
            return delay
        if distance_miles is not None:
            return units.propagation_delay(distance_miles, route_inflation)
        if node_a.location is not None and node_b.location is not None:
            return node_a.location.one_way_delay(node_b.location,
                                                 route_inflation)
        raise ValueError(
            "connect(%s, %s): need delay=, distance_miles=, or node "
            "locations" % (node_a.name, node_b.name))

    def _make_link(self, src: Node, dst: Node, spec: LinkSpec) -> Link:
        link = Link(self.sim, "%s->%s" % (src.name, dst.name),
                    delay=spec.delay, bandwidth=spec.bandwidth,
                    deliver=dst.deliver, loss_rate=spec.loss_rate,
                    jitter=spec.jitter,
                    queue_limit_bytes=spec.queue_limit_bytes,
                    streams=self.streams)
        src.attach_link(dst.name, link)
        self._edges[src.name][dst.name] = spec.delay
        self._routes_stale = True
        return link

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """(Re)compute every node's next-hop table from link delays."""
        tables = build_routing_tables(self._edges)
        for name, node in self.nodes.items():
            node.routes = dict(tables.get(name, {}))
        self._routes_stale = False

    def ensure_routes(self) -> None:
        """Rebuild routes only if topology changed since the last build."""
        if self._routes_stale:
            self.build_routes()

    def path_delay(self, a: str, b: str) -> float:
        """Total one-way propagation delay of the routed path a -> b."""
        self.ensure_routes()
        total = 0.0
        current = a
        guard = 0
        while current != b:
            next_hop = self.nodes[current].routes.get(b)
            if next_hop is None:
                if b in self._edges.get(current, {}):
                    next_hop = b
                else:
                    raise ValueError("no route from %r to %r" % (a, b))
            total += self._edges[current][next_hop]
            current = next_hop
            guard += 1
            if guard > len(self.nodes):
                raise RuntimeError("routing loop between %r and %r" % (a, b))
        return total

    def rtt(self, a: str, b: str) -> float:
        """Round-trip propagation delay between two nodes."""
        return self.path_delay(a, b) + self.path_delay(b, a)
