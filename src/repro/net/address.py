"""Network addressing primitives.

Hosts are identified by string names (e.g. ``"planetlab-042"``,
``"fe-akamai-chicago"``); transport endpoints add a port number.  String
names keep traces human-readable, which matters because the analysis
pipeline is meant to feel like reading a tcpdump.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Endpoint:
    """A transport-layer endpoint: ``host:port``."""

    host: str
    port: int

    def __post_init__(self):
        if not self.host:
            raise ValueError("host name must be non-empty")
        if not 0 < self.port < 65536:
            raise ValueError("port must be in (0, 65536), got %r" % (self.port,))

    def __str__(self) -> str:
        return "%s:%d" % (self.host, self.port)


@dataclass(frozen=True, order=True)
class FlowKey:
    """Canonical identifier of a bidirectional transport flow.

    The key is ordered (local, remote) from the perspective of the host
    storing it; :meth:`reversed` gives the peer's view of the same flow.
    """

    local: Endpoint
    remote: Endpoint

    def reversed(self) -> "FlowKey":
        return FlowKey(self.remote, self.local)

    def __str__(self) -> str:
        return "%s <-> %s" % (self.local, self.remote)


class EphemeralPortAllocator:
    """Sequential ephemeral port allocation for a single host.

    Ports wrap within the IANA ephemeral range; the allocator never hands
    out a port currently marked in use.
    """

    FIRST = 49152
    LAST = 65535

    def __init__(self):
        self._next = self.FIRST
        self._in_use = set()

    def allocate(self) -> int:
        """Return an unused ephemeral port and mark it in use."""
        span = self.LAST - self.FIRST + 1
        for _ in range(span):
            port = self._next
            self._next += 1
            if self._next > self.LAST:
                self._next = self.FIRST
            if port not in self._in_use:
                self._in_use.add(port)
                return port
        raise RuntimeError("ephemeral port space exhausted")

    def release(self, port: int) -> None:
        """Return ``port`` to the pool.  Unknown ports are ignored."""
        self._in_use.discard(port)
