"""Geographic coordinates and distance-derived delays.

The paper's Figure 9 regresses ``Tdynamic`` against the *geographic
distance in miles* between front-end servers and back-end data centers, so
geography is a first-class concept: every simulated host carries a
:class:`GeoPoint`, link propagation delays are derived from great-circle
distances, and the testbed layer places vantage points by coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim import units


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface (degrees latitude/longitude)."""

    lat: float
    lon: float

    def __post_init__(self):
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError("latitude out of range: %r" % (self.lat,))
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError("longitude out of range: %r" % (self.lon,))

    def distance_miles(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in miles (haversine)."""
        return haversine_miles(self.lat, self.lon, other.lat, other.lon)

    def one_way_delay(self, other: "GeoPoint",
                      route_inflation: float = units.DEFAULT_ROUTE_INFLATION
                      ) -> float:
        """Fiber propagation delay to ``other`` in seconds."""
        return units.propagation_delay(self.distance_miles(other),
                                       route_inflation)

    def __str__(self) -> str:
        return "(%.3f, %.3f)" % (self.lat, self.lon)


def haversine_miles(lat1: float, lon1: float,
                    lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in miles."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (math.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2)
    return 2.0 * units.EARTH_RADIUS_MILES * math.asin(min(1.0, math.sqrt(a)))


def nearest(point: GeoPoint, candidates):
    """Return ``(candidate, distance_miles)`` minimising distance to ``point``.

    ``candidates`` is an iterable of objects exposing a ``location``
    attribute of type :class:`GeoPoint`.  Ties break toward the candidate
    encountered first, so the function is deterministic for ordered input.
    """
    best = None
    best_distance = math.inf
    for candidate in candidates:
        distance = point.distance_miles(candidate.location)
        if distance < best_distance:
            best = candidate
            best_distance = distance
    if best is None:
        raise ValueError("no candidates supplied")
    return best, best_distance
