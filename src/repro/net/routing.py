"""Static shortest-path routing.

Routes are computed once over the topology graph with Dijkstra's
algorithm, using link propagation delay as the edge weight (bandwidth is
deliberately ignored: delay-based routing matches how the paper reasons
about paths, and the experiment topologies are small).

The output is a next-hop table per node: ``routes[src][dst] -> neighbor``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Mapping

Graph = Mapping[Hashable, Mapping[Hashable, float]]


class RoutingError(Exception):
    """Raised when a route is requested between disconnected nodes."""


def dijkstra(graph: Graph, source: Hashable):
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        ``{node: {neighbor: weight}}`` adjacency mapping.  Weights must be
        non-negative.
    source:
        Starting node.

    Returns
    -------
    (distances, first_hops):
        ``distances[node]`` is the total weight of the best path;
        ``first_hops[node]`` is the first neighbor on that path (absent
        for the source itself and for unreachable nodes).
    """
    if source not in graph:
        raise KeyError("unknown source node %r" % (source,))
    distances: Dict[Hashable, float] = {source: 0.0}
    first_hops: Dict[Hashable, Hashable] = {}
    visited = set()
    # Heap entries: (distance, tie_break, node, first_hop)
    counter = 0
    heap = [(0.0, counter, source, None)]
    while heap:
        dist, _, node, hop = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if hop is not None:
            first_hops[node] = hop
        for neighbor, weight in graph.get(node, {}).items():
            if weight < 0:
                raise ValueError("negative edge weight %r on %r->%r"
                                 % (weight, node, neighbor))
            candidate = dist + weight
            if neighbor not in visited and candidate < distances.get(
                    neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor,
                                      hop if hop is not None else neighbor))
    return distances, first_hops


def build_routing_tables(graph: Graph):
    """Compute next-hop tables for every node in ``graph``.

    Returns ``{src: {dst: next_hop}}``.  Unreachable destinations are
    simply absent from the inner mapping.
    """
    tables = {}
    for source in graph:
        _, first_hops = dijkstra(graph, source)
        tables[source] = first_hops
    return tables
