"""The network packet.

A :class:`Packet` is what travels on links.  Its ``payload`` is an opaque
transport PDU (in practice a :class:`repro.tcp.segment.Segment`), and
``size_bytes`` is the full on-wire size including all header overhead, so
link serialization delays are computed from it directly.

``Packet`` is a hand-rolled ``__slots__`` class rather than a dataclass:
one instance is created per segment per hop-free flight, which puts its
constructor on the simulation's hottest path.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

#: Bytes of IP + link-layer framing charged to every packet on the wire.
NETWORK_HEADER_BYTES = 40

_uid_counter = itertools.count(1)


class Packet:
    """A packet in flight.

    Attributes
    ----------
    src, dst:
        Host names of the original sender and the final destination.
    protocol:
        Demultiplexing tag, e.g. ``"tcp"``.  Nodes dispatch received
        packets to the protocol handler registered under this tag.
    size_bytes:
        Total on-wire size (headers + payload).
    payload:
        The transport PDU carried by the packet.
    uid:
        Globally unique packet id, assigned at creation.
    hops:
        Host names traversed so far, appended by each forwarding node.
        Useful in tests and for TTL enforcement.
    """

    __slots__ = ("src", "dst", "protocol", "size_bytes", "payload",
                 "uid", "hops")

    MAX_HOPS = 64

    def __init__(self, src: str, dst: str, protocol: str, size_bytes: int,
                 payload: Any = None, uid: Optional[int] = None,
                 hops: Optional[List[str]] = None):
        if size_bytes < 0:
            raise ValueError("packet size must be >= 0, got %r" % size_bytes)
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.size_bytes = size_bytes
        self.payload = payload
        self.uid = next(_uid_counter) if uid is None else uid
        self.hops = [] if hops is None else hops

    def record_hop(self, host: str) -> None:
        """Append a forwarding hop; raises if the hop budget is exceeded."""
        self.hops.append(host)
        if len(self.hops) > self.MAX_HOPS:
            raise RuntimeError(
                "packet %d exceeded %d hops (routing loop?): %r"
                % (self.uid, self.MAX_HOPS, self.hops))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Packet #%d %s %s->%s %dB>" % (
            self.uid, self.protocol, self.src, self.dst, self.size_bytes)
