"""Network substrate: packets, links, nodes, routing, geography."""

from repro.net.address import Endpoint, EphemeralPortAllocator, FlowKey
from repro.net.geo import GeoPoint, haversine_miles, nearest
from repro.net.link import Link, LinkStats
from repro.net.node import Node, NodeStats
from repro.net.packet import NETWORK_HEADER_BYTES, Packet
from repro.net.routing import RoutingError, build_routing_tables, dijkstra
from repro.net.topology import LinkSpec, Topology

__all__ = [
    "Endpoint",
    "EphemeralPortAllocator",
    "FlowKey",
    "GeoPoint",
    "Link",
    "LinkSpec",
    "LinkStats",
    "NETWORK_HEADER_BYTES",
    "Node",
    "NodeStats",
    "Packet",
    "RoutingError",
    "Topology",
    "build_routing_tables",
    "dijkstra",
    "haversine_miles",
    "nearest",
]
