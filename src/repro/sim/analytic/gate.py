"""The divergence gate: validation sampling and stratum demotion.

The packet simulator stays the referee of the tiered executor.  Per
``(service, FE, VP)`` stratum the gate routes a deterministic, seeded
sample of admissible submissions through the packet engine, compares
the analytic prediction's landmark timeline (tb, t1, t2, t3, t4, t5,
te) against the simulated ground truth, and — when any landmark
diverges beyond tolerance — demotes the stratum: every later
submission in it bypasses the analytic tier.  Divergence exactly *at*
the tolerance passes; only strictly-beyond demotes.

Determinism: the validation cadence is a pure function of the campaign
seed and the stratum's own admissible-submission counter, and every
piece of gate state is stratum-local.  Dataset-A sharding keeps each
stratum whole inside one shard, so sharded and serial runs make
bit-identical tier decisions.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.randomness import derive_seed
from repro.sim.replay.timeline import materialize_events

#: Default landmark tolerance.  Far above float-association noise
#: between the engine's chained absolute times and the model's
#: start-plus-offset arithmetic (~1e-10 s), and below one 40-byte
#: header's serialization on a 1 Gb/s link (3.2e-7 s) — the smallest
#: timing slip a genuine modeling error can produce.
DEFAULT_TOLERANCE = 2.5e-7  # simlint: unit[s]

#: Default validation cadence: the first admissible submission of every
#: stratum, then roughly one in this many.
DEFAULT_VALIDATE_EVERY = 16

#: The Figure-2 landmarks the gate compares.
LANDMARKS = ("tb", "t1", "t2", "t3", "t4", "t5", "te")


class _Stratum:
    """Gate state for one (service, FE, VP) stratum."""

    __slots__ = ("admitted", "phase", "demoted")

    def __init__(self, phase: int):
        self.admitted = 0
        self.phase = phase
        self.demoted = False


class DivergenceGate:
    """Per-stratum tier decisions for one campaign run."""

    def __init__(self, seed: int, *,
                 tolerance: float = DEFAULT_TOLERANCE,
                 validate_every: Optional[int] = DEFAULT_VALIDATE_EVERY):
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if validate_every is not None and validate_every < 1:
            raise ValueError("validate_every must be >= 1 or None")
        self.seed = seed
        self.tolerance = tolerance  # simlint: unit[s]
        #: None disables validation entirely (pure analytic mode).
        self.validate_every = validate_every
        self._strata: Dict[tuple, _Stratum] = {}

    # ------------------------------------------------------------------
    def _stratum(self, key: tuple) -> _Stratum:
        stratum = self._strata.get(key)
        if stratum is None:
            phase = 0
            if self.validate_every is not None:
                # Seeded sampling phase, stable across shard layouts.
                phase = derive_seed(
                    self.seed, "tier/%s/%s/%s" % key) \
                    % self.validate_every
            stratum = _Stratum(phase)
            self._strata[key] = stratum
        return stratum

    def demoted(self, key: tuple) -> bool:
        return self._stratum(key).demoted

    def decide(self, key: tuple) -> str:
        """Route one admissible submission of stratum ``key``.

        Returns ``"demoted"`` (packet-simulate; the stratum failed a
        comparison), ``"validate"`` (packet-simulate and compare), or
        ``"analytic"``.  Counts the submission — call exactly once per
        admissible submission.
        """
        stratum = self._stratum(key)
        if stratum.demoted:
            return "demoted"
        stratum.admitted += 1
        if self.validate_every is None:
            return "analytic"
        if stratum.admitted == 1:
            # Always referee a stratum's first admissible session.
            return "validate"
        if stratum.admitted % self.validate_every == stratum.phase:
            return "validate"
        return "analytic"

    def observe(self, key: tuple,
                divergences: Dict[str, float]) -> Tuple[bool, bool]:
        """Record one validation comparison for stratum ``key``.

        ``divergences`` maps landmark names to absolute analytic-vs-
        packet errors in seconds.  Returns ``(diverged, demoted_now)``;
        an error exactly equal to the tolerance does not diverge.
        """
        worst = max(divergences.values()) if divergences else 0.0
        if worst <= self.tolerance:
            return False, False
        stratum = self._stratum(key)
        if stratum.demoted:
            return True, False
        stratum.demoted = True
        return True, True


def landmark_divergences(session, prediction,
                         tcp_host) -> Dict[str, float]:
    """Per-landmark ``|analytic - packet|`` for one validation sample.

    Both timelines go through :func:`~repro.core.metrics.
    extract_timeline` with the prediction's ground-truth stream
    boundary, so the comparison measures modeling error only — not
    extraction differences.
    """
    # Imported here: repro.analysis reaches back into repro.measure,
    # whose driver imports this package (cycle at module-import time).
    from repro.analysis.boundary import StreamBoundary
    from repro.core.metrics import extract_timeline
    from repro.measure.session import QuerySession

    boundary = StreamBoundary(prediction.static_end,
                              prediction.dynamic_start)
    actual = extract_timeline(session, boundary)
    shim = QuerySession(
        query_id=session.query_id, service=session.service,
        vp_name=session.vp_name, fe_name=session.fe_name,
        keyword=session.keyword, started_at=session.started_at)
    shim.events = materialize_events(
        prediction.timeline, session.started_at, session.vp_name,
        session.fe_name, session.local_port, tcp_host)
    predicted = extract_timeline(shim, boundary)
    return {name: abs(getattr(actual, name) - getattr(predicted, name))
            for name in LANDMARKS}
