"""Resolve a query's parameters and predict its full session record.

The predictor is the bridge between a live :class:`Scenario` and the
closed-form model: it reads the path's link parameters straight off the
topology (the same objects the packet engine uses), computes the exact
request/response byte counts with the real HTTP encoders, reproduces
the query's keyed service draws with a shadow stream, runs
:func:`~repro.sim.analytic.model.predict_session`, and packages the
result as a :class:`~repro.sim.replay.timeline.RecordedTimeline` — the
same replayable record the session-replay cache uses, so the tier
manager can materialize packet events, schedule server-side effects,
and finalize the session through the proven replay machinery.

Analytic admission layers on top of the replay path predicates: beyond
loss/jitter/fault-free dedicated links, the model additionally requires
the default ACK discipline (no delayed ACK, no Nagle, no idle reset),
slow start that never exits (the "infinite" default ssthresh — under
which Reno and Cubic are byte-for-byte identical), a pinned-window BE
leg, and the FE static cache enabled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.http.message import HttpRequest, HttpResponse, build_query_path
from repro.sim.analytic.model import (
    SessionModel,
    SessionParams,
    predict_session,
    stream_boundaries,
)
from repro.sim.replay.fingerprint import predicted_service_draws
from repro.sim.replay.timeline import RecordedTimeline
from repro.tcp.segment import HEADER_BYTES

#: Effectively-infinite initial ssthresh: below this the sender could
#: leave slow start mid-session, where Reno and Cubic genuinely differ
#: and the byte-counting ramp no longer applies.
_SSTHRESH_FLOOR = 1 << 30

#: Sessions this close to the time origin may still overlap the FE-BE
#: pool handshakes' link occupancy; margin dominates the serialization
#: tail of any realistic pool size.
_WARMUP_MARGIN = 0.005  # simlint: unit[s]


class Prediction:
    """One predicted session: the replayable record plus ground truth
    stream boundaries for landmark extraction."""

    __slots__ = ("timeline", "static_end", "dynamic_start")

    def __init__(self, timeline: RecordedTimeline, static_end: int,
                 dynamic_start: int):
        self.timeline = timeline
        self.static_end = static_end  # simlint: unit[bytes]
        self.dynamic_start = dynamic_start  # simlint: unit[bytes]


class _Path:
    """Resolved per-``(service, FE, VP)`` model inputs."""

    __slots__ = ("cf_delay", "up_bandwidth", "down_bandwidth",
                 "be_delay", "be_up_bandwidth", "be_down_bandwidth",
                 "mss", "initial_cwnd", "peer_rwnd",
                 "be_mss", "be_window", "be_peer_rwnd",
                 "client_mss", "client_cwnd",
                 "pool_window", "fe_head_len", "static_len",
                 "backend_host", "warmup_horizon")


def analytic_path_reason(scenario, service_name: str,
                         frontend) -> Optional[str]:
    """Why the analytic model cannot cover this triple's sessions.

    Evaluated *in addition to*
    :func:`repro.sim.replay.admission.path_bypass_reason`; both verdicts
    are constant per triple and cached by the manager.
    """
    profile = scenario.service(service_name).profile
    backend_tcp = profile.backend_tcp
    for tcp in (scenario.config.client_tcp, profile.edge_tcp):
        if tcp.delayed_ack or tcp.nagle or tcp.slow_start_after_idle:
            return "tcp-knobs"
        if tcp.fixed_window_bytes is not None:
            return "tcp-knobs"
        if tcp.initial_ssthresh_bytes < _SSTHRESH_FLOOR:
            return "tcp-knobs"
    if backend_tcp.fixed_window_bytes is None \
            or backend_tcp.delayed_ack or backend_tcp.nagle:
        return "tcp-knobs"
    if not frontend.cache_static:
        # Full-page relay (no FE cache) has a different write schedule.
        return "no-fe-cache"
    return None


class AnalyticPredictor:
    """Per-campaign analytic session prediction with memoization.

    With deterministic service profiles the keyed draws collapse to
    constants, so a whole campaign stratum shares one micro-model run;
    the cache keys on everything the timeline depends on (triple,
    keyword, request length, draws) and therefore stays exact when
    sigmas are nonzero too — distinct draws simply miss.
    """

    def __init__(self, scenario):
        self.scenario = scenario
        self._paths: Dict[tuple, _Path] = {}
        self._cache: Dict[tuple, Prediction] = {}

    # ------------------------------------------------------------------
    def path(self, service_name: str, frontend, vp_name: str) -> _Path:
        key = (service_name, frontend.node.name, vp_name)
        path = self._paths.get(key)
        if path is None:
            path = self._resolve(service_name, frontend, vp_name)
            self._paths[key] = path
        return path

    def _resolve(self, service_name: str, frontend,
                 vp_name: str) -> _Path:
        scenario = self.scenario
        deployment = scenario.service(service_name)
        profile = deployment.profile
        fe_name = frontend.node.name
        be_name = deployment.backend_for_frontend(frontend).node.name
        topology = scenario.topology
        up = topology.node(vp_name).links[fe_name]
        down = topology.node(fe_name).links[vp_name]
        be_up = topology.node(fe_name).links[be_name]
        be_down = topology.node(be_name).links[fe_name]

        client = scenario.config.client_tcp
        edge = profile.edge_tcp
        backend_tcp = profile.backend_tcp
        path = _Path()
        path.cf_delay = up.delay
        path.up_bandwidth = up.bandwidth
        path.down_bandwidth = down.bandwidth
        path.be_delay = be_up.delay
        path.be_up_bandwidth = be_up.bandwidth
        path.be_down_bandwidth = be_down.bandwidth
        path.mss = edge.mss
        path.initial_cwnd = edge.initial_cwnd_bytes
        path.peer_rwnd = client.receive_window_bytes
        path.be_mss = backend_tcp.mss
        path.be_window = backend_tcp.fixed_window_bytes
        path.be_peer_rwnd = backend_tcp.receive_window_bytes
        path.client_mss = client.mss
        path.client_cwnd = client.initial_cwnd_bytes
        path.pool_window = profile.backend_window_bytes
        path.backend_host = frontend.backend_endpoint.host
        path.static_len = len(frontend.pages.static_content())
        # The FE's chunked response head, exactly as _write_static sends
        # it (header insertion order is preserved by the encoder).
        head = HttpResponse(status=200, headers={
            "X-Served-By": fe_name,
            "X-Service": service_name,
        })
        head.headers.setdefault("Transfer-Encoding", "chunked")
        path.fe_head_len = len(head.encode_head())
        # Submissions earlier than this may find the FE-BE links still
        # busy with the t=0 pool handshakes.
        path.warmup_horizon = 2.0 * be_up.delay + _WARMUP_MARGIN
        return path

    # ------------------------------------------------------------------
    def predict(self, service_name: str, frontend, vp_name: str,
                keyword, query_id: str,
                guard: float) -> Tuple[Optional[Prediction],
                                       Optional[str]]:
        """Predict one session; ``(prediction, None)`` on success or
        ``(None, reason)`` when this query falls outside the model."""
        path = self.path(service_name, frontend, vp_name)
        request_path = build_query_path(
            "/search", {"q": keyword.text, "id": query_id})
        request_len = len(HttpRequest(
            path=request_path,
            headers={"Host": service_name}).encode())
        be_request_len = len(HttpRequest(
            path=request_path,
            headers={"Host": path.backend_host}).encode())
        if request_len > path.client_mss \
                or request_len > path.client_cwnd:
            # A multi-segment GET changes the ACK-of-request pattern.
            return None, "request-size"
        if be_request_len > path.be_mss \
                or be_request_len > path.pool_window:
            return None, "request-size"

        load_delay, tproc = predicted_service_draws(
            self.scenario, service_name, frontend, keyword, query_id)
        key = (service_name, frontend.node.name, vp_name, keyword,
               request_len, be_request_len, load_delay, tproc)
        prediction = self._cache.get(key)
        if prediction is None:
            prediction = self._build(path, service_name, keyword,
                                     query_id, request_len,
                                     be_request_len, load_delay, tproc,
                                     guard)
            self._cache[key] = prediction
        return prediction, None

    # ------------------------------------------------------------------
    def _build(self, path: _Path, service_name: str, keyword,
               query_id: str, request_len: int, be_request_len: int,
               load_delay: float, tproc: float,
               guard: float) -> Prediction:
        dynamic_len = self._dynamic_len(service_name, keyword)
        be_head = HttpResponse(status=200, headers={
            "X-Service": service_name,
            "X-Query-Id": query_id,
        })
        be_head.headers.setdefault("Content-Length", str(dynamic_len))
        params = SessionParams(
            cf_delay=path.cf_delay,
            up_bandwidth=path.up_bandwidth,
            down_bandwidth=path.down_bandwidth,
            be_delay=path.be_delay,
            be_up_bandwidth=path.be_up_bandwidth,
            be_down_bandwidth=path.be_down_bandwidth,
            request_len=request_len,
            fe_head_len=path.fe_head_len,
            static_len=path.static_len,
            dynamic_len=dynamic_len,
            be_request_len=be_request_len,
            be_head_len=len(be_head.encode_head()),
            mss=path.mss,
            initial_cwnd=path.initial_cwnd,
            peer_rwnd=path.peer_rwnd,
            be_mss=path.be_mss,
            be_window=path.be_window,
            be_peer_rwnd=path.be_peer_rwnd,
            fe_delay=load_delay,
            tproc=tproc)
        model = predict_session(params)
        timeline = RecordedTimeline(
            started_at=0.0,
            duration=model.completed_at,
            guard=guard,
            response_size=model.response_size,
            events=_normalized_events(model, request_len),
            forward_offset=model.get_arrival,
            fetch_completed_offset=model.fetch_completed,
            fetch_size=dynamic_len,
            keyword_text=keyword.text,
            tproc=tproc,
            be_arrival_offset=model.be_arrival,
            be_completed_offset=model.be_completed,
            be_response_size=dynamic_len)
        static_end, dynamic_start = stream_boundaries(
            path.fe_head_len, path.static_len, dynamic_len)
        return Prediction(timeline, static_end, dynamic_start)

    def _dynamic_len(self, service_name: str, keyword) -> int:
        """Exact dynamic-portion length without generating the bytes.

        The page generator pads or trims to the profile's target size,
        so the length is a pure function of the keyword (asserted by
        the test suite).
        """
        deployment = self.scenario.service(service_name)
        return deployment.pages.profile.dynamic_size(keyword)


def _normalized_events(model: SessionModel, request_len: int) -> list:
    """The session's client-side capture as normalized replay events.

    Matches, bit for bit, what
    :func:`repro.sim.replay.timeline.record_timeline` produces from a
    packet-simulated trace of the same session: SYN, SYN-ACK, GET plus
    the handshake ACK queued behind it, the FE's ACK of the GET, then
    each data segment's arrival followed by the client's pure ACK — the
    final data segment excepted, whose ACK departs on the post-harvest
    FIN.
    """
    header = HEADER_BYTES
    req_end = 1 + request_len
    events = [
        (0.0, True, header, 0, 0, 0, True, False, False, False),
        (model.synack_at, False, header, 0, 0, 1, True, False, True,
         False),
        (model.synack_at, True, header + request_len, request_len, 1, 1,
         False, False, True, False),
        (model.synack_at, True, header, 0, req_end, 1, False, False,
         True, False),
        (model.get_ack_at, False, header, 0, 1, req_end, False, False,
         True, False),
    ]
    acks = model.acks
    for index, segment in enumerate(model.segments):
        events.append((segment.arrived_at, False,
                       header + segment.size, segment.size,
                       1 + segment.offset, req_end, False, False, True,
                       False))
        if index < len(acks):
            ack = acks[index]
            events.append((ack.sent_at, True, header, 0, req_end,
                           1 + ack.acked_through, False, False, True,
                           False))
    return events
