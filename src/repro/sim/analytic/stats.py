"""Counters for the tiered campaign executor.

Mirrors :class:`~repro.sim.replay.cache.ReplayStats`: a plain summable
record so sharded campaign runners can merge per-shard tier stats with
``sum()`` and drivers can report one campaign-wide picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TierStats:
    """What the tier policy decided for one campaign run."""

    #: Sessions served by the closed-form model (no packet simulation).
    analytic: int = 0
    #: Sessions that went through the packet engine (bypasses plus
    #: validation samples).
    simulated: int = 0
    #: Packet-simulated sessions used as gate validation samples.
    validations: int = 0
    #: Validation comparisons whose landmark error exceeded tolerance.
    divergences: int = 0
    #: Strata demoted to packet-level simulation by the gate.
    demotions: int = 0
    #: Admission-bypass reasons -> counts (packet-simulated sessions).
    bypasses: Dict[str, int] = field(default_factory=dict)

    def bypass(self, reason: str) -> None:
        self.bypasses[reason] = self.bypasses.get(reason, 0) + 1

    @property
    def bypassed(self) -> int:
        return sum(self.bypasses.values())

    @property
    def submissions(self) -> int:
        return self.analytic + self.simulated

    # ------------------------------------------------------------------
    def __add__(self, other: "TierStats") -> "TierStats":
        if not isinstance(other, TierStats):
            return NotImplemented
        merged = dict(self.bypasses)
        for reason, count in other.bypasses.items():
            merged[reason] = merged.get(reason, 0) + count
        return TierStats(
            analytic=self.analytic + other.analytic,
            simulated=self.simulated + other.simulated,
            validations=self.validations + other.validations,
            divergences=self.divergences + other.divergences,
            demotions=self.demotions + other.demotions,
            bypasses=merged)

    def __radd__(self, other) -> "TierStats":
        if other == 0:  # sum() support
            return self
        return self.__add__(other)
