"""The tiered campaign executor: analytic bulk, packet-level referee.

One :class:`TieredSessionManager` serves one campaign run.  Drivers
route every query submission through :meth:`TieredSessionManager.submit`
and the manager decides, per submission, between

* **bypass** — an admission rule (campaign, path, analytic-path, or
  temporal) failed; packet-simulate and count the reason;
* **validate** — admissible, but the gate's deterministic sample picked
  this submission: packet-simulate it, then compare the analytic
  prediction's landmarks against the trace and demote the stratum on
  divergence;
* **analytic** — skip the packet engine entirely; the closed-form
  prediction is injected through the same replay machinery a cache hit
  uses, replicating every observable side effect.

All tier decisions are stratum-local and seeded, so a sharded campaign
(whose partition keeps strata whole) makes the same decisions as a
serial one, bit for bit.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.measure.session import QuerySession
from repro.obs import runtime as _obs
from repro.obs.metrics import SCOPE_SIM
from repro.sim.analytic.gate import (
    DEFAULT_TOLERANCE,
    DEFAULT_VALIDATE_EVERY,
    DivergenceGate,
    landmark_divergences,
)
from repro.sim.analytic.predictor import AnalyticPredictor, analytic_path_reason
from repro.sim.analytic.stats import TierStats
from repro.sim.replay.admission import (
    SubmissionSchedule,
    campaign_bypass_reason,
    path_bypass_reason,
)
from repro.sim.replay.timeline import materialize_events

#: Valid values for the campaign tier policy.
TIER_MODES = ("packet", "analytic", "auto")

#: Histogram bounds for per-landmark divergence observations.  Centered
#: on the gate tolerance (2.5e-7 s) so the exported histograms show at
#: a glance whether predictions sit at float noise or near demotion.
DIVERGENCE_BOUNDS = (1e-10, 1e-9, 1e-8, 1e-7, 2.5e-7,
                     1e-6, 1e-5, 1e-4, 1e-3)  # simlint: unit[s]


def tier_mode(explicit: Optional[str] = None) -> str:
    """Resolve the campaign tier policy (explicit > env > packet).

    The ``REPRO_TIER`` env var supplies the default; the CLI's
    ``--tier`` flag sets it.  ``packet`` keeps the existing behavior.
    """
    value = explicit if explicit is not None \
        else os.environ.get("REPRO_TIER", "")
    value = value.strip().lower() or "packet"
    if value not in TIER_MODES:
        raise ValueError("tier must be one of %s, got %r"
                         % ("/".join(TIER_MODES), value))
    return value


class _PendingValidation:
    """A packet-simulated validation sample awaiting completion."""

    __slots__ = ("stratum", "session", "prediction", "tcp_host")

    def __init__(self, stratum: tuple, session: QuerySession,
                 prediction, tcp_host):
        self.stratum = stratum
        self.session = session
        self.prediction = prediction
        self.tcp_host = tcp_host


class TieredSessionManager:
    """Per-campaign tier orchestration (modes ``analytic`` / ``auto``).

    ``auto`` runs the full gate policy — per-stratum seeded validation
    samples plus divergence demotion.  ``analytic`` trusts the model
    outright (no validation packets at all); admission bypasses still
    packet-simulate in both modes, so inadmissible sessions are always
    ground truth.
    """

    def __init__(self, scenario, schedule: SubmissionSchedule, *,
                 mode: str = "auto",
                 tolerance: float = DEFAULT_TOLERANCE,
                 validate_every: int = DEFAULT_VALIDATE_EVERY,
                 store_payload: bool = False,
                 run_timeout: Optional[float] = None):
        if mode not in ("analytic", "auto"):
            raise ValueError(
                "mode must be 'analytic' or 'auto' (use the plain "
                "replay/simulation path for 'packet'), got %r" % (mode,))
        self.scenario = scenario
        self.schedule = schedule
        self.mode = mode
        self.predictor = AnalyticPredictor(scenario)
        self.gate = DivergenceGate(
            scenario.streams.seed, tolerance=tolerance,
            validate_every=(validate_every if mode == "auto" else None))
        self.stats = TierStats()
        self._campaign_reason = campaign_bypass_reason(
            scenario, store_payload, run_timeout)
        self._path_reasons: Dict[tuple, Optional[str]] = {}
        self._pending: List[_PendingValidation] = []
        #: fe name -> [(session, guard)] of sessions submitted to it.
        self._live: Dict[str, List[Tuple[QuerySession, float]]] = {}

    # ------------------------------------------------------------------
    def submit(self, emulator, service_name: str, frontend,
               keyword) -> QuerySession:
        """Submit one query through the tier policy."""
        self._drain()
        reason = self._bypass_reason(emulator, service_name, frontend)
        if reason is not None:
            return self._bypass(emulator, service_name, frontend,
                                keyword, reason)

        stratum = (service_name, frontend.node.name, emulator.vp.name)
        if self.gate.demoted(stratum):
            return self._bypass(emulator, service_name, frontend,
                                keyword, "gate-demoted")
        guard = self._guard(emulator, service_name, frontend)
        prediction, reason = self.predictor.predict(
            service_name, frontend, emulator.vp.name, keyword,
            emulator.peek_query_id(), guard)
        if prediction is None:
            return self._bypass(emulator, service_name, frontend,
                                keyword, reason)

        decision = self.gate.decide(stratum)
        if decision == "validate":
            self.stats.validations += 1
            if _obs.enabled:
                _obs.metrics.inc("tier.validations", scope=SCOPE_SIM)
            session = self._simulate(emulator, service_name, frontend,
                                     keyword, guard)
            self._pending.append(_PendingValidation(
                stratum, session, prediction, emulator.tcp_host))
            return session

        self.stats.analytic += 1
        if _obs.enabled:
            _obs.metrics.inc("tier.analytic_sessions", scope=SCOPE_SIM)
        return self._materialize(emulator, service_name, frontend,
                                 keyword, prediction)

    def finalize(self) -> TierStats:
        """Settle outstanding validations and return the run's stats.

        Call after ``sim.run()`` returns; validation sessions still
        incomplete then count as divergences (the model predicted a
        completion the packet engine never delivered).
        """
        self._drain()
        for pending in self._pending:
            # Incomplete at end of run: unconditionally divergent.
            self._record_divergence(pending.stratum)
        self._pending = []
        return self.stats

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _bypass_reason(self, emulator, service_name: str,
                       frontend) -> Optional[str]:
        if self._campaign_reason is not None:
            return self._campaign_reason
        triple = (service_name, frontend.node.name, emulator.vp.name)
        if triple not in self._path_reasons:
            reason = path_bypass_reason(
                self.scenario, service_name, frontend, emulator.vp.name)
            if reason is None:
                reason = analytic_path_reason(
                    self.scenario, service_name, frontend)
            self._path_reasons[triple] = reason
        reason = self._path_reasons[triple]
        if reason is not None:
            return reason
        now = self.scenario.sim.now
        if now <= 0.0:
            return "time-origin"
        path = self.predictor.path(service_name, frontend,
                                   emulator.vp.name)
        if now < path.warmup_horizon:
            # The FE-BE pool handshakes may still occupy those links.
            return "warm-up"
        if self.schedule.count_at(frontend.node.name, now) != 1:
            return "concurrent-submit"
        if self._fe_busy(frontend.node.name, now):
            return "fe-busy"
        return None

    def _fe_busy(self, fe_name: str, now: float) -> bool:
        live = self._live.get(fe_name)
        if not live:
            return False
        still = [(session, guard) for session, guard in live
                 if session.completed_at is None
                 or session.completed_at + guard > now]
        self._live[fe_name] = still
        return bool(still)

    def _guard(self, emulator, service_name: str, frontend) -> float:
        from repro.sim.replay.manager import GUARD_FLOOR, \
            GUARD_RTT_MULTIPLE
        rtt = self.scenario.client_fe_rtt(
            emulator.vp, frontend, self.scenario.service(service_name))
        return GUARD_FLOOR + GUARD_RTT_MULTIPLE * rtt

    # ------------------------------------------------------------------
    # packet tier
    # ------------------------------------------------------------------
    def _bypass(self, emulator, service_name: str, frontend, keyword,
                reason: str) -> QuerySession:
        self.stats.bypass(reason)
        if _obs.enabled:
            _obs.metrics.inc("tier.bypass.%s" % reason, scope=SCOPE_SIM)
        guard = self._guard(emulator, service_name, frontend)
        return self._simulate(emulator, service_name, frontend, keyword,
                              guard)

    def _simulate(self, emulator, service_name: str, frontend, keyword,
                  guard: float) -> QuerySession:
        self.stats.simulated += 1
        if _obs.enabled:
            _obs.metrics.inc("tier.simulated_sessions", scope=SCOPE_SIM)
        session = emulator.submit(service_name, frontend, keyword)
        self._live.setdefault(frontend.node.name, []) \
            .append((session, guard))
        return session

    def _drain(self) -> None:
        still = []
        for pending in self._pending:
            if pending.session.completed_at is None:
                still.append(pending)
                continue
            self._settle(pending)
        self._pending = still

    def _settle(self, pending: _PendingValidation) -> None:
        session = pending.session
        if session.failed is not None or not session.events:
            self._record_divergence(pending.stratum)
            return
        divergences = landmark_divergences(session, pending.prediction,
                                           pending.tcp_host)
        if _obs.enabled:
            for name, value in divergences.items():
                _obs.metrics.observe("tier.divergence.%s" % name, value,
                                     bounds=DIVERGENCE_BOUNDS,
                                     scope=SCOPE_SIM)
        diverged, demoted_now = self.gate.observe(pending.stratum,
                                                  divergences)
        if diverged:
            self.stats.divergences += 1
            if _obs.enabled:
                _obs.metrics.inc("tier.divergences", scope=SCOPE_SIM)
        if demoted_now:
            self.stats.demotions += 1
            if _obs.enabled:
                _obs.metrics.inc("tier.demotions", scope=SCOPE_SIM)

    def _record_divergence(self, stratum: tuple) -> None:
        diverged, demoted_now = self.gate.observe(
            stratum, {"te": float("inf")})
        if diverged:
            self.stats.divergences += 1
            if _obs.enabled:
                _obs.metrics.inc("tier.divergences", scope=SCOPE_SIM)
        if demoted_now:
            self.stats.demotions += 1
            if _obs.enabled:
                _obs.metrics.inc("tier.demotions", scope=SCOPE_SIM)

    # ------------------------------------------------------------------
    # analytic tier
    # ------------------------------------------------------------------
    def _materialize(self, emulator, service_name: str, frontend,
                     keyword, prediction) -> QuerySession:
        """Inject the predicted session without packet simulation.

        Mirrors the replay cache's hit path exactly: same side-effect
        order as a real submit, same server-record scheduling, same
        event materialization.

        Effect-parity contract: this method is a simflow replication
        root — its effect closure must cover every signature in
        sim/replay/effects.py (generated; EFF001/EFF004 enforce the
        parity statically).
        """
        scenario = self.scenario
        entry = prediction.timeline
        start = scenario.sim.now
        service = scenario.service(service_name)
        service.register_keywords([keyword])
        query_id = emulator.next_query_id()
        session = QuerySession(
            query_id=query_id,
            service=service_name,
            vp_name=emulator.vp.name,
            fe_name=frontend.node.name,
            keyword=keyword,
            started_at=start,
            path_rtt=scenario.client_fe_rtt(emulator.vp, frontend,
                                            service))
        session.local_port = emulator.tcp_host.reserve_port()
        emulator.sessions.append(session)
        backend = service.backend_for_frontend(frontend)
        scenario.sim.schedule_timeline(start, [
            (entry.forward_offset, self._server_effects,
             (frontend, backend, entry, query_id, start)),
            (entry.duration, self._finalize_session,
             (emulator, session, entry, start)),
        ])
        self._live.setdefault(frontend.node.name, []) \
            .append((session, entry.guard))
        return session

    def _server_effects(self, frontend, backend, entry, query_id: str,
                        start: float) -> None:
        frontend.record_replayed_fetch(
            query_id, start + entry.forward_offset,
            start + entry.fetch_completed_offset, entry.fetch_size)
        backend.record_replayed_query(
            query_id, entry.keyword_text,
            start + entry.be_arrival_offset, entry.tproc,
            entry.be_response_size, start + entry.be_completed_offset)

    def _finalize_session(self, emulator, session: QuerySession, entry,
                          start: float) -> None:
        session.completed_at = self.scenario.sim.now
        session.response_size = entry.response_size
        events = materialize_events(entry, start, session.vp_name,
                                    session.fe_name, session.local_port,
                                    emulator.tcp_host)
        emulator.capture.inject(events)
        session.events = events
