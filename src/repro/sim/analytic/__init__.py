"""Closed-form (fluid) session modeling and tiered campaign execution.

The packet engine is the referee: every session *can* be simulated at
packet level.  But for admitted sessions — isolated on their front-end,
loss-free, jitter-free, default TCP knobs, keyed service draws — the
full packet timeline is a closed-form function of the resolved query
parameters (RTTs, bandwidths, content sizes, MSS, initial window,
``Tproc``, FE load delay).  :mod:`repro.sim.analytic` evaluates that
function directly:

* :mod:`~repro.sim.analytic.model` — slow-start ramp arithmetic over
  fluid FIFO links, producing the exact per-segment schedule;
* :mod:`~repro.sim.analytic.predictor` — resolves a query's parameters
  against a scenario and emits a replayable
  :class:`~repro.sim.replay.timeline.RecordedTimeline`;
* :mod:`~repro.sim.analytic.gate` — deterministic validation sampling
  and the divergence gate that demotes a stratum back to packet-level
  simulation when predictions drift beyond tolerance;
* :mod:`~repro.sim.analytic.stats` — ``tier.*`` counters;
* :mod:`~repro.sim.analytic.manager` — the driver-facing tier executor.
"""

from repro.sim.analytic.gate import DEFAULT_TOLERANCE, DivergenceGate
from repro.sim.analytic.manager import TieredSessionManager, tier_mode
from repro.sim.analytic.model import (
    LinkHorizon,
    SessionModel,
    SessionParams,
    predict_session,
)
from repro.sim.analytic.predictor import AnalyticPredictor
from repro.sim.analytic.stats import TierStats

__all__ = [
    "AnalyticPredictor",
    "DEFAULT_TOLERANCE",
    "DivergenceGate",
    "LinkHorizon",
    "SessionModel",
    "SessionParams",
    "TierStats",
    "TieredSessionManager",
    "predict_session",
    "tier_mode",
]
