"""Closed-form session model: slow-start ramp over fluid FIFO links.

This module re-derives, without running the event engine, the packet
timeline the simulator produces for one *admitted* query session: a
fresh client connection to a front-end (FE) that serves the static
portion after its processing delay and appends the dynamic portion when
the back-end (BE) fetch over the warm fixed-window leg completes.
Admission (see :mod:`repro.sim.analytic.predictor`) guarantees the
session runs alone on every link it touches, so each direction of each
link reduces to a single serialization horizon — exactly the fluid FIFO
the packet engine's :class:`~repro.net.link.Link` implements — and the
TCP sender reduces to byte-counting slow start (or a pinned window on
the BE leg): on a loss-free path with the default "infinite" ssthresh,
both Reno and Cubic grow the window by ``min(newly_acked, mss)`` per
ACK and never leave slow start.

The landmark timeline falls out of the per-segment schedule:

* ``tb`` — the client's SYN (time origin of the model);
* ``t1`` — the GET, one client-FE RTT (plus SYN/SYN-ACK wires) later;
* ``t2`` — the FE's pure ACK of the GET;
* ``t3``/``t4`` — first/last byte of the static portion arriving;
* ``t5`` — first byte of the dynamic portion arriving;
* ``te`` — last byte of the response arriving,

with the dynamic portion released at ``Tfetch = Tproc + C*RTTbe`` after
forwarding (the fixed-window BE leg's ACK clocking supplies the
``C*RTTbe`` term).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.tcp.segment import HEADER_BYTES

#: ``encode_last_chunk()`` is the 5-byte terminator ``b"0\r\n\r\n"``.
LAST_CHUNK_LEN = 5


def chunk_length(payload_len: int) -> int:  # simlint: unit[bytes]
    """On-stream length of one HTTP chunk: hex size line + CRLFs."""
    return len("%x" % payload_len) + 4 + payload_len


class LinkHorizon:
    """One direction of a link as a serialization horizon.

    Replicates :meth:`repro.net.link.Link.send` for a loss-free,
    jitter-free link with an empty queue: serialization behind a single
    ``busy`` watermark at ``bandwidth``, then fixed propagation
    ``delay``.  Times are relative to the session's start; admission
    guarantees the real link is idle at that instant.
    """

    __slots__ = ("bandwidth", "delay", "busy")

    def __init__(self, bandwidth: float, delay: float):
        self.bandwidth = bandwidth  # simlint: unit[bytes/s]
        self.delay = delay  # simlint: unit[s]
        self.busy = 0.0  # simlint: unit[s]

    def send(self, at: float, wire_bytes: int) -> float:  # simlint: unit[s]
        """Serialize ``wire_bytes`` at ``at``; returns the arrival time."""
        start = self.busy if self.busy > at else at
        tx_done = start + wire_bytes / self.bandwidth
        self.busy = tx_done
        return tx_done + self.delay


@dataclass(frozen=True)
class DataSegment:
    """One payload-bearing segment of a modeled transfer."""

    sent_at: float  # simlint: unit[s]
    arrived_at: float  # simlint: unit[s]
    offset: int  # simlint: unit[bytes]
    size: int  # simlint: unit[bytes]


@dataclass(frozen=True)
class ReceiverAck:
    """The receiver's pure ACK of one data segment."""

    sent_at: float  # simlint: unit[s]
    arrived_at: float  # simlint: unit[s]
    acked_through: int  # simlint: unit[bytes]


def deliver_response(writes: Sequence[Tuple[float, int]],
                     down: LinkHorizon, up: LinkHorizon, *,
                     mss: int, window: int, peer_rwnd: int,
                     slow_start: bool, total_length: int,
                     ack_final: bool = True
                     ) -> Tuple[List[DataSegment], List[ReceiverAck]]:
    """Model one server-to-client data transfer segment by segment.

    ``writes`` are ``(time, nbytes)`` application writes, each its own
    send pass — exactly how ``Responder`` writes head, chunks, and
    terminator as separate ``conn.send`` calls, and how buffered bytes
    from separate writes coalesce into later window-opened segments.
    ``down`` carries data, ``up`` carries the receiver's per-segment
    pure ACKs (no delayed ACK).  With ``slow_start`` the window grows by
    ``min(newly_acked, mss)`` per ACK from ``window``; otherwise it
    stays pinned (the BE leg's ``FixedWindowController``).

    ``ack_final=False`` models the client side of a query session: the
    response-complete callback tears the connection down before the
    delayed flush, so the last data segment's ACK rides the (uncaptured)
    FIN instead of appearing as a pure ACK.
    """
    segments: List[DataSegment] = []
    acks: List[ReceiverAck] = []
    cwnd = window
    length = 0  # simlint: unit[bytes]
    nxt = 0  # simlint: unit[bytes]
    una = 0  # simlint: unit[bytes]
    # Pending sender stimuli, processed in engine order: app writes
    # (kind -1, value = bytes appended) and arriving cumulative ACKs
    # (kind +1, value = acked-through offset).  The tie-break counter
    # preserves submission order at equal instants, matching the
    # engine's FIFO event queue.
    order = 0
    heap: List[Tuple[float, int, int, int]] = []
    for at, nbytes in writes:
        heap.append((at, order, -1, nbytes))
        order += 1
    heapq.heapify(heap)

    def try_send(now: float) -> None:
        nonlocal nxt, order
        # Window resolved once per pass, as Connection._try_send does.
        effective = cwnd if cwnd < peer_rwnd else peer_rwnd
        while True:
            size = mss
            unsent = length - nxt
            if unsent < size:
                size = unsent
            available = effective - (nxt - una)
            if available < size:
                size = available
            if size <= 0:
                return
            arrival = down.send(now, HEADER_BYTES + size)
            segments.append(DataSegment(now, arrival, nxt, size))
            nxt += size
            delivered = nxt  # in-order delivery: cumulative = stream nxt
            if ack_final or delivered < total_length:
                ack_arrival = up.send(arrival, HEADER_BYTES)
                acks.append(ReceiverAck(arrival, ack_arrival, delivered))
                heapq.heappush(heap, (ack_arrival, order, 1, delivered))
                order += 1

    while heap:
        now, _, kind, value = heapq.heappop(heap)
        if kind < 0:
            length += value
        else:
            newly = value - una
            if newly > 0:
                una = value
                if slow_start:
                    cwnd += newly if newly < mss else mss
        try_send(now)
    return segments, acks


@dataclass(frozen=True)
class SessionParams:
    """Resolved inputs of one admitted session, ready for the model.

    All times are seconds, sizes bytes, bandwidths bytes/second.  The
    client-FE path is symmetric in delay and bandwidth per direction
    but modeled with independent horizons; likewise FE-BE.
    """

    # client <-> FE path
    cf_delay: float  # simlint: unit[s]
    up_bandwidth: float  # simlint: unit[bytes/s]
    down_bandwidth: float  # simlint: unit[bytes/s]
    # FE <-> BE path
    be_delay: float  # simlint: unit[s]
    be_up_bandwidth: float  # simlint: unit[bytes/s]
    be_down_bandwidth: float  # simlint: unit[bytes/s]
    # wire sizes
    request_len: int  # simlint: unit[bytes]
    fe_head_len: int  # simlint: unit[bytes]
    static_len: int  # simlint: unit[bytes]
    dynamic_len: int  # simlint: unit[bytes]
    be_request_len: int  # simlint: unit[bytes]
    be_head_len: int  # simlint: unit[bytes]
    # client-facing TCP (the FE's edge stack sends, the client acks)
    mss: int  # simlint: unit[bytes]
    initial_cwnd: int  # simlint: unit[bytes]
    peer_rwnd: int  # simlint: unit[bytes]
    # FE-BE leg (pinned window)
    be_mss: int  # simlint: unit[bytes]
    be_window: int  # simlint: unit[bytes]
    be_peer_rwnd: int  # simlint: unit[bytes]
    # resolved service draws
    fe_delay: float  # simlint: unit[s]
    tproc: float  # simlint: unit[s]


@dataclass(frozen=True)
class SessionModel:
    """The model's full output, all times relative to the SYN (tb=0)."""

    synack_at: float  # simlint: unit[s]
    get_arrival: float  # simlint: unit[s]  (forwarding instant)
    get_ack_at: float  # simlint: unit[s]  (the paper's t2)
    be_arrival: float  # simlint: unit[s]
    be_completed: float  # simlint: unit[s]
    fetch_completed: float  # simlint: unit[s]
    static_write_at: float  # simlint: unit[s]
    dynamic_write_at: float  # simlint: unit[s]
    completed_at: float  # simlint: unit[s]  (the paper's te)
    segments: Tuple[DataSegment, ...]
    acks: Tuple[ReceiverAck, ...]
    response_size: int  # simlint: unit[bytes]

    @property
    def duration(self) -> float:  # simlint: unit[s]
        return self.completed_at


def predict_session(p: SessionParams) -> SessionModel:
    """Evaluate the closed-form model for one session.

    The sequencing replicates the engine's causal order: SYN, SYN-ACK,
    GET plus the client's pure ACK queued behind it, the FE's pure ACK
    of the GET (``t2``), the BE forward at the GET's arrival, the static
    write after the FE load delay, and the dynamic write at the later of
    static-write and fetch-completion.
    """
    header = HEADER_BYTES
    up = LinkHorizon(p.up_bandwidth, p.cf_delay)
    down = LinkHorizon(p.down_bandwidth, p.cf_delay)
    syn_arrival = up.send(0.0, header)
    synack_at = down.send(syn_arrival, header)
    # The GET and the handshake-completing pure ACK leave together; the
    # ACK serializes behind the GET on the uplink.
    get_arrival = up.send(synack_at, header + p.request_len)
    up.send(synack_at, header)
    get_ack_at = down.send(get_arrival, header)

    # FE-BE leg: forward at the GET's arrival on the warm pooled
    # connection; the BE acks the request, processes for tproc, then
    # streams head + body under the pinned window with the FE acking
    # every segment (the C*RTTbe ACK clocking).
    be_up = LinkHorizon(p.be_up_bandwidth, p.be_delay)
    be_down = LinkHorizon(p.be_down_bandwidth, p.be_delay)
    be_arrival = be_up.send(get_arrival, header + p.be_request_len)
    be_down.send(be_arrival, header)
    be_completed = be_arrival + p.tproc
    be_total = p.be_head_len + p.dynamic_len
    be_segments, _ = deliver_response(
        [(be_completed, p.be_head_len), (be_completed, p.dynamic_len)],
        be_down, be_up, mss=p.be_mss, window=p.be_window,
        peer_rwnd=p.be_peer_rwnd, slow_start=False,
        total_length=be_total, ack_final=True)
    fetch_completed = be_segments[-1].arrived_at

    # Client-facing delivery: head + static chunk after the FE load
    # delay, dynamic chunk + terminator when the fetch lands (or with
    # the static flush if the fetch won the race).
    static_write_at = get_arrival + p.fe_delay
    dynamic_write_at = fetch_completed \
        if fetch_completed > static_write_at else static_write_at
    static_chunk = chunk_length(p.static_len)
    dynamic_chunk = chunk_length(p.dynamic_len)
    total = p.fe_head_len + static_chunk + dynamic_chunk + LAST_CHUNK_LEN
    segments, acks = deliver_response(
        [(static_write_at, p.fe_head_len),
         (static_write_at, static_chunk),
         (dynamic_write_at, dynamic_chunk),
         (dynamic_write_at, LAST_CHUNK_LEN)],
        down, up, mss=p.mss, window=p.initial_cwnd,
        peer_rwnd=p.peer_rwnd, slow_start=True,
        total_length=total, ack_final=False)
    return SessionModel(
        synack_at=synack_at,
        get_arrival=get_arrival,
        get_ack_at=get_ack_at,
        be_arrival=be_arrival,
        be_completed=be_completed,
        fetch_completed=fetch_completed,
        static_write_at=static_write_at,
        dynamic_write_at=dynamic_write_at,
        completed_at=segments[-1].arrived_at,
        segments=tuple(segments),
        acks=tuple(acks),
        response_size=p.static_len + p.dynamic_len)


def stream_boundaries(fe_head_len: int, static_len: int,
                      dynamic_len: int) -> Tuple[int, int]:
    """Ground-truth (static_end, dynamic_start) stream offsets.

    Offsets are positions in the FE's response byte stream (chunk
    framing included), matching the
    :class:`~repro.analysis.boundary.StreamBoundary` convention:
    ``static_end`` is one past the static portion's last payload byte,
    ``dynamic_start`` the first byte that travels with the dynamic
    portion — its chunk's frame.
    """
    del dynamic_len  # the boundary precedes the dynamic chunk's frame
    static_start = fe_head_len + len("%x" % static_len) + 2
    static_end = static_start + static_len
    dynamic_start = fe_head_len + chunk_length(static_len)
    return static_end, dynamic_start
