"""Unit helpers and physical constants used throughout the simulator.

All simulator time is kept in **seconds** as floats.  The paper reports
every quantity in milliseconds, so conversion helpers are provided and used
at the analysis/reporting boundary only; the simulation core never mixes
units.

Distances are kept in **miles** because the paper's Figure 9 regresses
``Tdynamic`` against FE-BE distance in miles (slopes of 0.08-0.099 ms/mile).
"""

from __future__ import annotations

#: Speed of light in vacuum, miles per second.
SPEED_OF_LIGHT_MILES_PER_S = 186_282.0

#: Effective propagation speed in optical fiber (~2/3 c), miles per second.
FIBER_SPEED_MILES_PER_S = SPEED_OF_LIGHT_MILES_PER_S * 2.0 / 3.0

#: Multiplier accounting for the fact that fiber routes are not great
#: circles.  1.0 would be a perfectly straight fiber run; real paths on the
#: Internet commonly inflate geographic distance by 1.3-2x.
DEFAULT_ROUTE_INFLATION = 1.6

#: Mean Earth radius in miles, used by the haversine distance computation.
EARTH_RADIUS_MILES = 3958.8


def ms(value: float) -> float:
    """Convert milliseconds to simulator seconds."""
    return value / 1000.0


def us(value: float) -> float:
    """Convert microseconds to simulator seconds."""
    return value / 1_000_000.0


def seconds_to_ms(value: float) -> float:
    """Convert simulator seconds to milliseconds for reporting."""
    return value * 1000.0


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return value * 1000.0 / 8.0


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1_000_000.0 / 8.0


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1_000_000_000.0 / 8.0


def propagation_delay(distance_miles: float,
                      route_inflation: float = DEFAULT_ROUTE_INFLATION) -> float:
    """One-way propagation delay in seconds for a fiber path.

    ``distance_miles`` is the great-circle distance; ``route_inflation``
    stretches it to an effective fiber route length.
    """
    if distance_miles < 0:
        raise ValueError("distance must be non-negative, got %r" % distance_miles)
    return distance_miles * route_inflation / FIBER_SPEED_MILES_PER_S


def transmission_delay(size_bytes: int, bandwidth_bytes_per_s: float) -> float:
    """Serialization delay in seconds for ``size_bytes`` on a link."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive, got %r" % bandwidth_bytes_per_s)
    if size_bytes < 0:
        raise ValueError("size must be non-negative, got %r" % size_bytes)
    return size_bytes / bandwidth_bytes_per_s
