"""Timestamped record collection.

:class:`Timeline` is the simulator's generic "strip chart": an append-only
sequence of ``(time, kind, payload)`` records.  The packet-capture layer,
TCP endpoints and experiment drivers all log into timelines; the analysis
package consumes them.

Records are kept sorted by construction (the simulator clock is
monotonic), which lets consumers slice by time with binary search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class Record:
    """A single timeline record.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    kind:
        A short string tag, e.g. ``"pkt_rx"`` or ``"query_sent"``.
    payload:
        Arbitrary structured data attached to the record.
    """

    time: float
    kind: str
    payload: Any = None


class Timeline:
    """An append-only, time-ordered sequence of :class:`Record` objects."""

    def __init__(self, name: str = ""):
        self.name = name
        self._records: List[Record] = []
        self._times: List[float] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def add(self, time: float, kind: str, payload: Any = None) -> Record:
        """Append a record.  ``time`` must be >= the last record's time."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                "timeline %r is append-only: %r < last time %r"
                % (self.name, time, self._times[-1]))
        record = Record(float(time), kind, payload)
        self._records.append(record)
        self._times.append(record.time)
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def records(self, kind: Optional[str] = None,
                predicate: Optional[Callable[[Record], bool]] = None
                ) -> List[Record]:
        """Return records filtered by ``kind`` and/or an arbitrary predicate."""
        out = self._records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out) if out is self._records else out

    def first(self, kind: str) -> Optional[Record]:
        """Return the earliest record of ``kind``, or None."""
        for record in self._records:
            if record.kind == kind:
                return record
        return None

    def last(self, kind: str) -> Optional[Record]:
        """Return the latest record of ``kind``, or None."""
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def between(self, start: float, end: float) -> List[Record]:
        """Return records with ``start <= time < end`` (binary search)."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._records[lo:hi]

    def span(self) -> float:
        """Time covered by the timeline (0.0 when it has < 2 records)."""
        if len(self._records) < 2:
            return 0.0
        return self._times[-1] - self._times[0]

    def clear(self) -> None:
        self._records.clear()
        self._times.clear()
