"""Generator-based cooperative processes on top of the event engine.

Callback code is the right shape for protocol machinery (TCP, links), but
experiment *drivers* — "submit a query, wait for the response, sleep 10
seconds, repeat 500 times" — read far better as sequential coroutines.
This module provides a minimal process runner in the style of SimPy:

>>> from repro.sim.engine import Simulator
>>> sim = Simulator()
>>> log = []
>>> def driver():
...     log.append(("start", sim.now))
...     yield Sleep(2.0)
...     log.append(("tick", sim.now))
...     yield Sleep(3.0)
...     log.append(("done", sim.now))
>>> _ = spawn(sim, driver())
>>> sim.run()
>>> log
[('start', 0.0), ('tick', 2.0), ('done', 5.0)]

A process may yield:

* :class:`Sleep` — resume after a delay;
* :class:`WaitEvent` — resume when a :class:`Signal` fires (with the value
  the signal was fired with);
* another generator — run it as a sub-process to completion, receiving its
  return value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Sleep:
    """Yielded by a process to pause for ``delay`` seconds."""

    delay: float


class Signal:
    """A one-to-many wakeup primitive.

    Processes wait on the signal with :class:`WaitEvent`; any code may call
    :meth:`fire` with a value, waking every current waiter.  Each ``fire``
    wakes only the waiters registered at that moment.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: List[Any] = []
        self.fire_count = 0

    def fire(self, value: Any = None) -> int:
        """Wake all waiting processes, passing them ``value``.

        Returns the number of processes woken.
        """
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)
        return len(waiters)

    def _register(self, process: "Process") -> None:
        self._waiters.append(process)


@dataclass(frozen=True)
class WaitEvent:
    """Yielded by a process to block until ``signal`` fires."""

    signal: Signal
    timeout: Optional[float] = None


class ProcessFailure(Exception):
    """Raised (re-raised) when a process body raises an exception."""


class Process:
    """A running coroutine attached to a simulator.

    Not instantiated directly — use :func:`spawn`.
    """

    def __init__(self, sim: Simulator, generator: Generator):
        self.sim = sim
        self.finished = False
        self.result: Any = None
        self.done_signal = Signal("process-done")
        self._stack: List[Generator] = [generator]
        self._timeout_handle = None

    # ------------------------------------------------------------------
    def _resume(self, value: Any = None) -> None:
        """Advance the coroutine stack with ``value``."""
        if self._timeout_handle is not None:
            self.sim.cancel(self._timeout_handle)
            self._timeout_handle = None
        while self._stack:
            top = self._stack[-1]
            try:
                yielded = top.send(value)
            except StopIteration as stop:
                self._stack.pop()
                value = stop.value
                continue
            except Exception as exc:
                self.finished = True
                raise ProcessFailure(
                    "process body raised %r" % exc) from exc
            self._dispatch(yielded)
            return
        self.finished = True
        self.result = value
        self.done_signal.fire(value)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Sleep):
            if yielded.delay < 0:
                raise ValueError("Sleep delay must be >= 0")
            # A sleeping process cannot be cancelled, only resumed.
            self.sim.schedule(yielded.delay, self._resume,
                              None)  # simlint: ignore[EVT003]
        elif isinstance(yielded, WaitEvent):
            yielded.signal._register(self)
            if yielded.timeout is not None:
                self._timeout_handle = self.sim.schedule(
                    yielded.timeout, self._timeout_fire)
        elif isinstance(yielded, Generator):
            self._stack.append(yielded)
            self._resume(None)
        else:
            raise TypeError(
                "process yielded unsupported value %r" % (yielded,))

    def _timeout_fire(self) -> None:
        """Wake the process with ``None`` after a WaitEvent timeout."""
        self._timeout_handle = None
        self._resume(None)


def spawn(sim: Simulator, generator: Generator) -> Process:
    """Start ``generator`` as a process on ``sim`` at the current time.

    The first step runs via a zero-delay event so that spawning inside a
    running event keeps deterministic ordering.
    """
    process = Process(sim, generator)
    sim.schedule(0.0, process._resume, None)
    return process
