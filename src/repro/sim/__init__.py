"""Discrete-event simulation substrate.

Public surface:

* :class:`~repro.sim.engine.Simulator` — the event loop.
* :class:`~repro.sim.randomness.RandomStreams` — named deterministic RNG.
* :class:`~repro.sim.timeline.Timeline` — timestamped record log.
* :func:`~repro.sim.process.spawn` and friends — coroutine-style drivers.
* :mod:`~repro.sim.units` — unit conversions and physical constants.
"""

from repro.sim.engine import EventHandle, SchedulingError, SimulationError, Simulator
from repro.sim.process import Process, ProcessFailure, Signal, Sleep, WaitEvent, spawn
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.timeline import Record, Timeline

__all__ = [
    "EventHandle",
    "Process",
    "ProcessFailure",
    "Record",
    "RandomStreams",
    "SchedulingError",
    "Signal",
    "SimulationError",
    "Simulator",
    "Sleep",
    "Timeline",
    "WaitEvent",
    "derive_seed",
    "spawn",
]
