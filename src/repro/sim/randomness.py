"""Deterministic, named random-number streams.

Reproducibility is a first-class requirement: every stochastic decision in
the simulator (link loss, back-end processing jitter, FE load, vantage-point
placement) draws from a *named* stream derived from a single experiment
seed.  Adding a new consumer of randomness therefore never perturbs the
draws seen by existing consumers — a property plain shared
``random.Random`` does not have.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(("%d/%s" % (root_seed, name)).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomStreams:
    """A registry of independent named :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("loss")
    >>> b = streams.get("loss")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}
        #: Count of draw events made through this registry's helpers:
        #: one per variate drawn from a shared stream (:meth:`uniform`,
        #: :meth:`lognormal`, a non-short-circuited :meth:`bernoulli`)
        #: and one per :meth:`keyed` generator created (each keyed
        #: generator backs exactly one logical draw).  Draws made on a
        #: generator obtained via :meth:`get` are not counted — the
        #: counter tracks the registry API, which is what the
        #: session-replay cache's determinism contract is stated over
        #: (see ``repro.sim.replay``).
        self.draws_consumed = 0

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def keyed(self, name: str, key: str) -> random.Random:
        """A fresh, deterministic RNG for one (stream, key) pair.

        Unlike :meth:`get`, the returned generator is *not* shared or
        cached: every call with the same ``(name, key)`` yields an
        identical, freshly-seeded :class:`random.Random`.  Draws made
        through it therefore depend only on the root seed and the key —
        never on how many draws other consumers of the stream have made
        before.  This order-independence is what lets sharded campaign
        runs (see :mod:`repro.parallel`) reproduce the serial run's
        values bit-for-bit: a per-query key gives every query the same
        draws no matter which process executes it or in which order
        queries arrive.
        """
        self.draws_consumed += 1
        return random.Random(derive_seed(self.seed, name + "#" + key))

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry whose root seed depends on ``name``.

        Used to give each experiment repetition its own universe of
        streams while staying reproducible from the top-level seed.
        """
        return RandomStreams(derive_seed(self.seed, "spawn/" + name))

    def uniform(self, name: str, low: float, high: float) -> float:
        self.draws_consumed += 1
        return self.get(name).uniform(low, high)

    def lognormal(self, name: str, mu: float, sigma: float) -> float:
        """Draw from a lognormal; ``mu``/``sigma`` are of the underlying normal."""
        self.draws_consumed += 1
        return self.get(name).lognormvariate(mu, sigma)

    def bernoulli(self, name: str, probability: float) -> bool:
        """Return True with the given probability.

        The 0.0 and 1.0 cases short-circuit without consuming a draw, so
        adding an impossible *or* certain event to a scenario never
        perturbs the sequences seen by sibling streams.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0,1], got %r" % probability)
        if probability == 0.0:
            return False
        if probability == 1.0:
            return True
        self.draws_consumed += 1
        return self.get(name).random() < probability
