"""The replay cache proper: bounded LRU storage plus counters.

The cache maps session fingerprints (see
:mod:`repro.sim.replay.fingerprint`) to recorded timelines.  It is
strictly per-scenario — fingerprints stand in for path and config
parameters that are only functions of identity *within* one scenario —
and binds itself to the first scenario it is used with.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.replay.timeline import RecordedTimeline


@dataclass
class ReplayStats:
    """Replay-cache accounting for one campaign run.

    Picklable and summable: sharded campaigns return one instance per
    worker and merge them with ``sum(...)``.  Every submission lands in
    exactly one of ``hits`` (timeline replayed, no simulation),
    ``misses`` (simulated through an admissible path — recorded or used
    to validate an existing entry), or one ``bypasses`` bucket
    (simulated because an admission rule failed).
    """

    hits: int = 0
    misses: int = 0
    #: Sessions whose timeline entered the cache (unvalidated).
    recorded: int = 0
    #: First-reuse comparisons that matched and promoted an entry.
    validations: int = 0
    #: First-reuse comparisons that did NOT match (entry demoted).
    validation_failures: int = 0
    evictions: int = 0
    #: Reason -> count for submissions admission turned away.
    bypasses: Dict[str, int] = field(default_factory=dict)

    def bypass(self, reason: str) -> None:
        self.bypasses[reason] = self.bypasses.get(reason, 0) + 1

    @property
    def bypassed(self) -> int:
        return sum(self.bypasses.values())

    @property
    def submissions(self) -> int:
        return self.hits + self.misses + self.bypassed

    def __add__(self, other: "ReplayStats") -> "ReplayStats":
        if not isinstance(other, ReplayStats):
            return NotImplemented
        merged_bypasses = dict(self.bypasses)
        for reason, count in other.bypasses.items():
            merged_bypasses[reason] = merged_bypasses.get(reason, 0) + count
        return ReplayStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            recorded=self.recorded + other.recorded,
            validations=self.validations + other.validations,
            validation_failures=(self.validation_failures
                                 + other.validation_failures),
            evictions=self.evictions + other.evictions,
            bypasses=merged_bypasses)

    def __radd__(self, other):
        # Lets shard results merge with a plain sum(stats_list).
        if other == 0:
            return self
        return NotImplemented


class ReplayCache:
    """Bounded LRU store of recorded session timelines.

    Capacity is counted in entries; a Dataset-A campaign produces at
    most one entry per distinct (service, FE, VP, keyword, binade,
    draws) tuple, so the default comfortably covers the paper-scale
    campaigns while bounding memory on pathological keyword sets.
    """

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % (capacity,))
        self.capacity = capacity
        self.evictions = 0
        self._entries: "OrderedDict[tuple, RecordedTimeline]" = OrderedDict()
        self._scenario = None

    def __len__(self) -> int:
        return len(self._entries)

    def bind(self, scenario) -> None:
        """Tie this cache to a scenario; reuse across scenarios is an
        error (fingerprints are only unambiguous within one)."""
        if self._scenario is None:
            self._scenario = scenario
        elif self._scenario is not scenario:
            raise ValueError(
                "replay cache is bound to a different scenario; session "
                "fingerprints are not comparable across scenarios -- "
                "use a fresh ReplayCache per scenario")

    def get(self, key: tuple) -> Optional[RecordedTimeline]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, timeline: RecordedTimeline) -> None:
        self._entries[key] = timeline
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def pop(self, key: tuple) -> None:
        """Drop an entry (validation failure on a failed session)."""
        self._entries.pop(key, None)
