"""The session-replay manager: the driver-facing cache front door.

One :class:`SessionReplayManager` serves one campaign run.  Drivers
route every query submission through :meth:`SessionReplayManager.submit`
instead of calling :meth:`~repro.measure.emulator.QueryEmulator.submit`
directly; the manager decides, per submission, between

* **bypass** — an admission rule failed; simulate normally and count
  the reason;
* **miss** — admissible but no validated timeline yet; simulate
  normally and, once the session completes, either record its timeline
  (no entry existed) or compare it against the existing unvalidated
  entry (validation on first reuse);
* **hit** — a validated timeline exists and the isolation window holds;
  skip the packet-level simulation and replay the timeline time-shifted
  to now, replicating every observable side effect.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.measure.session import QuerySession
from repro.sim.replay.admission import (
    SubmissionSchedule,
    campaign_bypass_reason,
    path_bypass_reason,
)
from repro.sim.replay.cache import ReplayCache, ReplayStats
from repro.sim.replay.fingerprint import session_key, window_fits
from repro.sim.replay.timeline import (
    RecordedTimeline,
    materialize_events,
    observable_tuple,
    predicted_tuple,
    record_timeline,
)

#: Quiet time a session needs on its front-end beyond ``completed_at``:
#: a constant floor plus a few client-FE round trips, covering the FIN
#: exchange that trails the response (~1.5 RTT).  Also the spacing the
#: isolation checks demand before the next submission to the same FE.
GUARD_FLOOR = 0.2
GUARD_RTT_MULTIPLE = 2.0


def replay_cache_enabled() -> bool:
    """Default cache policy from the ``REPRO_REPLAY_CACHE`` env var.

    Any value other than ``0``/``off``/``false``/``no`` (or unset)
    enables the cache; the CLI's ``--no-replay-cache`` flag sets ``0``.
    """
    value = os.environ.get("REPRO_REPLAY_CACHE", "")
    return value.strip().lower() not in ("0", "off", "false", "no")


class _Pending:
    """A simulated session awaiting completion, for record/validate."""

    __slots__ = ("kind", "key", "session", "frontend", "backend",
                 "guard", "entry", "tcp_host")

    def __init__(self, kind: str, key: tuple, session: QuerySession,
                 frontend, backend, guard: float,
                 entry: Optional[RecordedTimeline], tcp_host):
        self.kind = kind  # "record" | "validate"
        self.key = key
        self.session = session
        self.frontend = frontend
        self.backend = backend
        self.guard = guard
        self.entry = entry
        self.tcp_host = tcp_host


class SessionReplayManager:
    """Per-campaign replay-cache orchestration."""

    def __init__(self, scenario, schedule: SubmissionSchedule, *,
                 cache: Optional[ReplayCache] = None,
                 store_payload: bool = False,
                 run_timeout: Optional[float] = None):
        self.scenario = scenario
        self.schedule = schedule
        self.cache = cache if cache is not None else ReplayCache()
        self.cache.bind(scenario)
        self.stats = ReplayStats()
        self._campaign_reason = campaign_bypass_reason(
            scenario, store_payload, run_timeout)
        self._path_reasons: Dict[tuple, Optional[str]] = {}
        self._pending: List[_Pending] = []
        #: fe name -> [(session, guard)] of sessions submitted to it.
        self._live: Dict[str, List[Tuple[QuerySession, float]]] = {}
        self._evictions_before = self.cache.evictions

    # ------------------------------------------------------------------
    def submit(self, emulator, service_name: str, frontend,
               keyword) -> QuerySession:
        """Submit one query, replaying its timeline when provably safe."""
        self._drain()
        reason = self._bypass_reason(emulator, service_name, frontend)
        if reason is not None:
            self.stats.bypass(reason)
            return self._simulate(emulator, service_name, frontend,
                                  keyword, pending=None)

        now = self.scenario.sim.now
        guard = self._guard(emulator, service_name, frontend)
        key = session_key(self.scenario, service_name, frontend,
                          emulator.vp.name, keyword,
                          emulator.peek_query_id(), now)
        entry = self.cache.get(key)
        if entry is None:
            self.stats.misses += 1
            pending = _Pending("record", key, None, frontend,
                               self._backend(service_name, frontend),
                               guard, None, emulator.tcp_host)
            return self._simulate(emulator, service_name, frontend,
                                  keyword, pending=pending)

        # An entry exists; both validating and replaying additionally
        # need the full isolation window ahead of us.
        end = now + entry.duration + entry.guard
        if not window_fits(now, end) \
                or self.schedule.next_after(frontend.node.name, now) < end:
            self.stats.bypass("window")
            return self._simulate(emulator, service_name, frontend,
                                  keyword, pending=None)
        if not entry.validated:
            self.stats.misses += 1
            pending = _Pending("validate", key, None, frontend,
                               self._backend(service_name, frontend),
                               guard, entry, emulator.tcp_host)
            return self._simulate(emulator, service_name, frontend,
                                  keyword, pending=pending)

        self.stats.hits += 1
        return self._replay(emulator, service_name, frontend, keyword,
                            entry, now)

    def finalize(self) -> ReplayStats:
        """Settle outstanding recordings and return the run's stats.

        Call after ``sim.run()`` returns; sessions still incomplete at
        that point (timeouts, failures) are simply not recorded.
        """
        self._drain()
        self._pending = []
        self.stats.evictions += self.cache.evictions \
            - self._evictions_before
        self._evictions_before = self.cache.evictions
        return self.stats

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _bypass_reason(self, emulator, service_name: str,
                       frontend) -> Optional[str]:
        if self._campaign_reason is not None:
            return self._campaign_reason
        triple = (service_name, frontend.node.name, emulator.vp.name)
        if triple not in self._path_reasons:
            self._path_reasons[triple] = path_bypass_reason(
                self.scenario, service_name, frontend, emulator.vp.name)
        reason = self._path_reasons[triple]
        if reason is not None:
            return reason
        now = self.scenario.sim.now
        if now <= 0.0:
            # t=0 sessions overlap scenario warm-up (FE-BE pool
            # handshakes) and sit outside every positive binade.
            return "time-origin"
        if self.schedule.count_at(frontend.node.name, now) != 1:
            return "concurrent-submit"
        if self._fe_busy(frontend.node.name, now):
            return "fe-busy"
        return None

    def _fe_busy(self, fe_name: str, now: float) -> bool:
        live = self._live.get(fe_name)
        if not live:
            return False
        still = [(session, guard) for session, guard in live
                 if session.completed_at is None
                 or session.completed_at + guard > now]
        self._live[fe_name] = still
        return bool(still)

    def _guard(self, emulator, service_name: str, frontend) -> float:
        rtt = self.scenario.client_fe_rtt(
            emulator.vp, frontend, self.scenario.service(service_name))
        return GUARD_FLOOR + GUARD_RTT_MULTIPLE * rtt

    def _backend(self, service_name: str, frontend):
        return self.scenario.service(service_name) \
            .backend_for_frontend(frontend)

    # ------------------------------------------------------------------
    # miss path
    # ------------------------------------------------------------------
    def _simulate(self, emulator, service_name: str, frontend, keyword,
                  pending: Optional[_Pending]) -> QuerySession:
        session = emulator.submit(service_name, frontend, keyword)
        guard = pending.guard if pending is not None \
            else self._guard(emulator, service_name, frontend)
        self._live.setdefault(frontend.node.name, []) \
            .append((session, guard))
        if pending is not None:
            pending.session = session
            self._pending.append(pending)
        return session

    def _drain(self) -> None:
        still = []
        for pending in self._pending:
            if pending.session.completed_at is None:
                still.append(pending)
                continue
            self._settle(pending)
        self._pending = still

    def _settle(self, pending: _Pending) -> None:
        session = pending.session
        fetch = pending.frontend.fetch_log.get(session.query_id)
        query = pending.backend.query_log.get(session.query_id)
        complete = (session.failed is None
                    and fetch is not None
                    and fetch.completed_at is not None
                    and query is not None
                    and query.completed_time is not None)
        if pending.kind == "validate":
            self._settle_validation(pending, complete, fetch, query)
            return
        if not complete:
            return
        if any(e.retransmit for e in session.events):
            # A retransmission on a loss-free path means a queue
            # overflowed or an RTO misfired -- state the key can't see.
            return
        end = session.completed_at + pending.guard
        if not window_fits(session.started_at, end):
            return
        if self.schedule.next_after(session.fe_name,
                                    session.started_at) < end:
            return
        timeline = record_timeline(session, pending.guard, fetch, query)
        if timeline is None:
            return
        self.cache.put(pending.key, timeline)
        self.stats.recorded += 1

    def _settle_validation(self, pending: _Pending, complete: bool,
                           fetch, query) -> None:
        session = pending.session
        if not complete:
            # The reuse failed outright where the recording succeeded;
            # the key clearly doesn't determine the outcome here.
            self.stats.validation_failures += 1
            self.cache.pop(pending.key)
            return
        actual = observable_tuple(session, fetch, query)
        predicted = predicted_tuple(
            pending.entry, session.started_at, session.vp_name,
            session.fe_name, session.local_port, pending.tcp_host)
        if actual == predicted:
            pending.entry.validated = True
            self.stats.validations += 1
            return
        self.stats.validation_failures += 1
        # Re-record from the fresh session (the original recording may
        # have caught a warm-up artifact); the entry stays unvalidated.
        self.cache.pop(pending.key)
        timeline = record_timeline(session, pending.guard, fetch, query)
        if timeline is not None \
                and not any(e.retransmit for e in session.events):
            self.cache.put(pending.key, timeline)
            self.stats.recorded += 1

    # ------------------------------------------------------------------
    # hit path
    # ------------------------------------------------------------------
    def _replay(self, emulator, service_name: str, frontend, keyword,
                entry: RecordedTimeline, start: float) -> QuerySession:
        # Effect-parity contract: this method is a simflow replication
        # root — everything it reaches must cover every signature in
        # sim/replay/effects.py (generated; EFF001/EFF004 enforce the
        # parity, so deleting any replication below fails the lint).
        scenario = self.scenario
        service = scenario.service(service_name)
        # Replicate submit()'s side effects in its exact order.
        service.register_keywords([keyword])
        query_id = emulator.next_query_id()
        session = QuerySession(
            query_id=query_id,
            service=service_name,
            vp_name=emulator.vp.name,
            fe_name=frontend.node.name,
            keyword=keyword,
            started_at=start,
            path_rtt=scenario.client_fe_rtt(emulator.vp, frontend,
                                            service))
        # Burn the ephemeral port the simulated connection would bind,
        # keeping the host's allocation order identical.
        session.local_port = emulator.tcp_host.reserve_port()
        emulator.sessions.append(session)
        backend = service.backend_for_frontend(frontend)
        scenario.sim.schedule_timeline(start, [
            (entry.forward_offset, self._server_effects,
             (frontend, backend, entry, query_id, start)),
            (entry.duration, self._finalize_replay,
             (emulator, session, entry, start)),
        ])
        self._live.setdefault(frontend.node.name, []) \
            .append((session, entry.guard))
        return session

    def _server_effects(self, frontend, backend, entry: RecordedTimeline,
                        query_id: str, start: float) -> None:
        frontend.record_replayed_fetch(
            query_id, start + entry.forward_offset,
            start + entry.fetch_completed_offset, entry.fetch_size)
        backend.record_replayed_query(
            query_id, entry.keyword_text,
            start + entry.be_arrival_offset, entry.tproc,
            entry.be_response_size, start + entry.be_completed_offset)

    def _finalize_replay(self, emulator, session: QuerySession,
                         entry: RecordedTimeline, start: float) -> None:
        # Runs at exactly start + duration, the instant the simulated
        # completion callback would have fired.
        session.completed_at = self.scenario.sim.now
        session.response_size = entry.response_size
        events = materialize_events(entry, start, session.vp_name,
                                    session.fe_name, session.local_port,
                                    emulator.tcp_host)
        emulator.capture.inject(events)
        session.events = events
