"""Normalized session timelines: recording and materialization.

A recorded timeline stores a completed session's observables relative
to its start time and stripped of run-specific identifiers: packet
times become offsets, sequence/ack numbers become ISN-relative, and the
client's ephemeral port is dropped (the addressing is re-derived from
the (VP, FE) pair at materialization).  Replaying the timeline against
a new start time and a freshly allocated port then reproduces, bit for
bit, the :class:`~repro.measure.capture.PacketEvent` list and landmark
times the full simulation would have produced — initial sequence
numbers are deterministic per flow (see
:meth:`repro.tcp.host.TcpHost.next_isn`), so the new connection's ISNs
are computable without simulating it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.measure.capture import PacketEvent
from repro.net.address import Endpoint, FlowKey
from repro.services.frontend import FRONTEND_PORT

#: One normalized packet: (offset, outbound, wire_size, payload_len,
#: seq_rel, ack_field, syn, fin, ack_flag, retransmit).  ``seq_rel`` is
#: relative to the sender's ISN; ``ack_field`` is relative to the
#: opposite ISN when ``ack_flag`` is set and raw otherwise (the initial
#: SYN carries a literal 0).
NormalizedEvent = Tuple[float, bool, int, int, int, int, bool, bool,
                        bool, bool]


class RecordedTimeline:
    """The replayable record of one admitted session."""

    __slots__ = ("started_at", "duration", "guard", "response_size",
                 "events", "forward_offset", "fetch_completed_offset",
                 "fetch_size", "keyword_text", "tproc",
                 "be_arrival_offset", "be_completed_offset",
                 "be_response_size", "validated")

    def __init__(self, started_at: float, duration: float, guard: float,
                 response_size: int, events: Sequence[NormalizedEvent],
                 forward_offset: float, fetch_completed_offset: float,
                 fetch_size: int, keyword_text: str, tproc: float,
                 be_arrival_offset: float, be_completed_offset: float,
                 be_response_size: int):
        self.started_at = started_at
        self.duration = duration
        #: Quiet tail the session needs beyond ``completed_at`` (FIN
        #: exchange); also the isolation spacing admission enforces.
        self.guard = guard
        self.response_size = response_size
        self.events = tuple(events)
        self.forward_offset = forward_offset
        self.fetch_completed_offset = fetch_completed_offset
        self.fetch_size = fetch_size
        self.keyword_text = keyword_text
        self.tproc = tproc
        self.be_arrival_offset = be_arrival_offset
        self.be_completed_offset = be_completed_offset
        self.be_response_size = be_response_size
        #: Entries start unvalidated: the first reuse still simulates
        #: and compares before hits are allowed to skip simulation.
        self.validated = False


def _session_isns(events: Sequence[PacketEvent]
                  ) -> Optional[Tuple[int, int]]:
    """(client ISN, server ISN) as observed in a captured trace."""
    client_isn = server_isn = None
    for event in events:
        if client_isn is None and event.direction == "out":
            client_isn = event.seq
        if server_isn is None and event.direction == "in":
            server_isn = event.seq
        if client_isn is not None and server_isn is not None:
            return client_isn, server_isn
    return None


def record_timeline(session, guard: float, fetch_record,
                    query_record) -> Optional[RecordedTimeline]:
    """Normalize a completed session into a replayable record.

    Returns None when the trace is not normalizable (no packets in one
    direction — a session that never completed its handshake should
    have been filtered out by admission already).
    """
    isns = _session_isns(session.events)
    if isns is None:
        return None
    client_isn, server_isn = isns
    started = session.started_at
    events: List[NormalizedEvent] = []
    for e in session.events:
        out = e.direction == "out"
        seq_rel = e.seq - (client_isn if out else server_isn)
        if e.ack_flag:
            ack_field = e.ack - (server_isn if out else client_isn)
        else:
            ack_field = e.ack
        events.append((e.time - started, out, e.wire_size, e.payload_len,
                       seq_rel, ack_field, e.syn, e.fin, e.ack_flag,
                       e.retransmit))
    return RecordedTimeline(
        started_at=started,
        duration=session.completed_at - started,
        guard=guard,
        response_size=session.response_size,
        events=events,
        forward_offset=fetch_record.forwarded_at - started,
        fetch_completed_offset=fetch_record.completed_at - started,
        fetch_size=fetch_record.response_size,
        keyword_text=query_record.keyword_text,
        tproc=query_record.tproc,
        be_arrival_offset=query_record.arrival_time - started,
        be_completed_offset=query_record.completed_time - started,
        be_response_size=query_record.response_size)


def materialize_events(timeline: RecordedTimeline, start: float,
                       vp_name: str, fe_name: str, local_port: int,
                       tcp_host) -> List[PacketEvent]:
    """Rebuild the capture events of a replayed session.

    ``tcp_host`` is any host sharing the campaign's stream registry —
    ISN derivation depends only on the seed and the flow key, so the
    client host stands in for both endpoints.
    """
    client_isn = tcp_host.next_isn(FlowKey(
        Endpoint(vp_name, local_port), Endpoint(fe_name, FRONTEND_PORT)))
    server_isn = tcp_host.next_isn(FlowKey(
        Endpoint(fe_name, FRONTEND_PORT), Endpoint(vp_name, local_port)))
    events: List[PacketEvent] = []
    for (offset, out, wire_size, payload_len, seq_rel, ack_field, syn,
         fin, ack_flag, retransmit) in timeline.events:
        if out:
            src, dst = vp_name, fe_name
            sport, dport = local_port, FRONTEND_PORT
            seq = seq_rel + client_isn
            ack = ack_field + server_isn if ack_flag else ack_field
        else:
            src, dst = fe_name, vp_name
            sport, dport = FRONTEND_PORT, local_port
            seq = seq_rel + server_isn
            ack = ack_field + client_isn if ack_flag else ack_field
        events.append(PacketEvent(
            time=start + offset, direction="out" if out else "in",
            src=src, dst=dst, sport=sport, dport=dport,
            wire_size=wire_size, payload_len=payload_len,
            seq=seq, ack=ack, syn=syn, fin=fin, ack_flag=ack_flag,
            retransmit=retransmit))
    return events


def observable_tuple(session, fetch_record, query_record) -> tuple:
    """Every replay-reproduced observable of a completed session.

    Used by validation: the miss-path session's actual observables are
    compared against the shifted recording's prediction; only equality
    promotes the cache entry to replayable.
    """
    return (
        session.local_port, session.started_at, session.completed_at,
        session.failed, session.response_size,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit) for e in session.events),
        fetch_record.forwarded_at, fetch_record.completed_at,
        fetch_record.response_size,
        query_record.arrival_time, query_record.completed_time,
        query_record.tproc, query_record.response_size,
    )


def predicted_tuple(timeline: RecordedTimeline, start: float,
                    vp_name: str, fe_name: str, local_port: int,
                    tcp_host) -> tuple:
    """What :func:`observable_tuple` would return had the session been
    replayed from ``timeline`` at ``start`` — the validation yardstick."""
    events = materialize_events(timeline, start, vp_name, fe_name,
                                local_port, tcp_host)
    return (
        local_port, start, start + timeline.duration, None,
        timeline.response_size,
        tuple((e.time, e.direction, e.src, e.dst, e.sport, e.dport,
               e.wire_size, e.payload_len, e.seq, e.ack, e.syn, e.fin,
               e.ack_flag, e.retransmit) for e in events),
        start + timeline.forward_offset,
        start + timeline.fetch_completed_offset,
        timeline.fetch_size,
        start + timeline.be_arrival_offset,
        start + timeline.be_completed_offset,
        timeline.tproc, timeline.be_response_size,
    )
