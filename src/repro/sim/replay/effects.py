"""Replicated-effects contract for the session fast paths.

GENERATED FILE - do not edit by hand.  Regenerate with::

    python -m repro.lint src --emit-effects

A replay hit (:mod:`repro.sim.replay`) or analytic injection
(:mod:`repro.sim.analytic`) never drives :mod:`repro.tcp`
packet-by-packet, so every side effect a simulated session
leaves behind must be replicated explicitly by the fast-path
managers.  The signatures below are derived by
:mod:`repro.lint.effectflow` as the intersection of both
replication roots' effect closures, restricted to signatures
with at least one session-path site; the EFF004 simlint rule
fails when this file no longer matches the derivation, and
EFF001 names any session-path effect the closures miss.

Signature syntax: a bare name means "a call to a method of
that name" (``register_keywords``); a trailing ``[]`` means "a
subscript store into an attribute of that name"
(``fetch_log[]``).
"""

from __future__ import annotations

#: Session-path effect signatures replicated on a fast-path
#: hit, with the module(s) performing each one.
REPLICATED_EFFECTS = (
    # src/repro/services/frontend.py
    "fetch_log[]",
    # src/repro/services/backend.py
    "query_log[]",
    # src/repro/services/backend.py
    "register",
    # src/repro/services/deployment.py
    "register_all",
    # src/repro/measure/emulator.py
    "register_keywords",
    # src/repro/tcp/host.py
    "reserve_port",
)
