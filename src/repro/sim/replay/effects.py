"""Replicated-effects allowlist for the session-replay cache.

A replay hit never drives :mod:`repro.tcp` packet-by-packet, so every
side effect a simulated session leaves behind — ground-truth log
records, registry writes — must be replicated explicitly by
:meth:`ReplayManager._replay <repro.sim.replay.manager.ReplayManager>`.
This module is the single source of truth for that contract: the
signatures listed here are the effect sites that exist on the session
path (``tcp/``, ``services/``, ``measure/``) *and* are replicated
bit-for-bit on a hit.

The ``RPLY001`` simlint rule enforces the contract statically: any
effect-shaped site in session-path code whose signature is missing here
is flagged, and ``RPLY002`` flags stale entries that no longer match
any code.  To add a new session side effect:

1. implement the effect in the session path;
2. replicate it in ``manager.py`` (see ``_server_effects`` for the
   existing log-record replication);
3. add its signature below, with a comment naming the replication site;
4. re-run ``python -m repro.lint src`` — both rules must come back
   clean.

Signature syntax: a bare name means "a call to a method of that name"
(``register_keywords``); a trailing ``[]`` means "a subscript store
into an attribute of that name" (``fetch_log[]``).
"""

from __future__ import annotations

#: Session-path effect signatures replicated on a replay hit.
REPLICATED_EFFECTS = (
    # FrontendApp.fetch_log[qid] = FetchRecord -- replicated by
    # ReplayManager._server_effects via record_replayed_fetch().
    "fetch_log[]",
    # BackendServer.query_log[qid] = QueryRecord -- replicated by
    # ReplayManager._server_effects via record_replayed_query().
    "query_log[]",
    # KeywordRegistry.register / register_all / register_keywords --
    # replicated directly at the top of ReplayManager._replay.
    "register",
    "register_all",
    "register_keywords",
)
