"""Admission control for the session-replay cache.

A session may be recorded or replayed only when its packet timeline
provably depends on nothing outside the cache key.  The checks split
into three layers, evaluated cheapest-first:

* **campaign-level** — properties of the whole driver run (draw keying,
  payload retention, run timeouts) that either hold for every
  submission or for none;
* **path-level** — properties of one ``(service, FE, VP)`` triple
  (congestion model, link loss/jitter/faults, FE result cache) that are
  constant across a campaign and therefore cached per triple;
* **temporal** — properties of one submission instant (cross-traffic on
  the front-end, start-time binade), evaluated per query by the
  manager against a :class:`SubmissionSchedule`.

Every helper returns ``None`` for "admissible" or a short reason string
that becomes a bypass-counter key in
:class:`~repro.sim.replay.cache.ReplayStats`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional


class SubmissionSchedule:
    """The a-priori submission times of a campaign, per front-end.

    Campaign drivers know every query's start instant before the
    simulation runs (stagger plus round arithmetic), which is what makes
    *forward-looking* isolation checks possible: a session may be
    replayed only if no other query will touch its front-end until the
    replayed timeline (plus guard) has fully played out.  The builder
    must replicate the driver loop's float arithmetic exactly —
    schedule times are compared for equality against ``sim.now``.
    """

    def __init__(self):
        self._times: Dict[str, List[float]] = {}
        self._frozen = False

    def add(self, fe_name: str, time: float) -> None:
        """Record one planned submission to ``fe_name`` at ``time``."""
        if self._frozen:
            raise RuntimeError("schedule is frozen")
        self._times.setdefault(fe_name, []).append(time)

    def freeze(self) -> "SubmissionSchedule":
        """Sort and seal the schedule; returns self for chaining."""
        for times in self._times.values():
            times.sort()
        self._frozen = True
        return self

    def count_at(self, fe_name: str, time: float) -> int:
        """How many submissions hit ``fe_name`` at exactly ``time``."""
        times = self._times.get(fe_name)
        if not times:
            return 0
        return bisect_right(times, time) - bisect_left(times, time)

    def next_after(self, fe_name: str, time: float) -> float:
        """First submission to ``fe_name`` strictly after ``time``
        (``inf`` when there is none)."""
        times = self._times.get(fe_name)
        if not times:
            return float("inf")
        index = bisect_right(times, time)
        if index >= len(times):
            return float("inf")
        return times[index]


def campaign_bypass_reason(scenario, store_payload: bool,
                           run_timeout: Optional[float]) -> Optional[str]:
    """Why an entire campaign run cannot use the replay cache.

    * ``unkeyed-draws`` — with shared sequential service streams, a
      query's FE-load/Tproc draws depend on the global arrival order,
      so skipping a simulation would shift every later draw.
    * ``store-payload`` — recorded timelines drop packet payload bytes;
      replaying them under ``store_payload=True`` would lose data.
    * ``run-timeout`` — a truncated run can cut sessions off mid-flight,
      and a replayed session past the deadline would misreport state.
    """
    if not scenario.config.keyed_service_draws:
        return "unkeyed-draws"
    if store_payload:
        return "store-payload"
    if run_timeout is not None:
        return "run-timeout"
    return None


#: Node pairs whose direct links a session's packets traverse:
#: client<->FE and FE<->BE, both directions.
def _path_links(topology, vp_name: str, fe_name: str, be_name: str):
    for src, dst in ((vp_name, fe_name), (fe_name, vp_name),
                     (fe_name, be_name), (be_name, fe_name)):
        yield topology.node(src).links.get(dst)


def path_bypass_reason(scenario, service_name: str, frontend,
                       vp_name: str) -> Optional[str]:
    """Why a ``(service, FE, VP)`` triple cannot be cached.

    The triple's links and TCP configs are fixed for the lifetime of a
    scenario, so the manager caches this verdict per triple.  The
    client->FE link must already exist (drivers link before submitting).
    """
    if frontend.cache_results:
        # The FE result cache makes a session's bytes depend on every
        # *earlier* query for the same keyword — history the key can't
        # capture.
        return "cache-results"
    if frontend.static_cache.finite or frontend.result_cache.spec.finite:
        # A finite (evicting) content cache is temporal state: whether
        # the static portion hits depends on every earlier request that
        # touched the hierarchy, so no session timeline is reusable.
        # The degenerate infinite default always hits and stays
        # admissible.
        return "finite-content-cache"
    deployment = scenario.service(service_name)
    profile = deployment.profile
    if profile.backend_window_bytes is None:
        # Without the pinned fixed-window controller the warm FE-BE
        # leg's cwnd carries history from previous fetches.
        return "backend-window"
    for tcp in (scenario.config.client_tcp, profile.edge_tcp):
        if tcp.congestion == "reno":
            # Reno is admissible outright: both its slow-start and its
            # congestion-avoidance growth are byte-counting (no wall-
            # clock terms), so a recorded timeline is time-shiftable.
            continue
        if tcp.congestion == "cubic" \
                and tcp.initial_ssthresh_bytes >= (1 << 30):
            # Cubic differs from Reno only after slow start exits, and
            # its window there is a function of wall-clock time since
            # the last loss — not time-shiftable.  With an effectively
            # infinite initial ssthresh on a loss-free admitted path,
            # slow start never exits, where cubic's byte-counting ramp
            # is identical to Reno's; sessions are then replayable (and
            # bit-equal to reno ones, see test_replay_cubic_admission).
            continue
        return "congestion-model"
    backend = deployment.backend_for_frontend(frontend)
    for link in _path_links(scenario.topology, vp_name,
                            frontend.node.name, backend.node.name):
        if link is None:
            return "no-direct-link"
        if link.loss_rate != 0.0:
            return "lossy-path"
        if link.jitter != 0.0:
            return "jittery-path"
        if link.fault_filter is not None:
            return "fault-injection"
    return None
