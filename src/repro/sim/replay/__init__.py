"""Deterministic session-replay cache.

A Dataset-A/B campaign re-simulates thousands of query sessions whose
packet timelines are pure functions of a small parameter tuple: the
client-FE path, the TCP configs, the static/dynamic byte sizes, and the
per-query keyed service draws.  This package memoizes those timelines.
On a cache hit the driver skips the packet-level simulation entirely
and *replays* the recorded timeline time-shifted to the new start —
producing bit-identical :class:`~repro.measure.capture.PacketEvent`
records, session landmarks, and ground-truth logs.

Correctness rests on three pillars (see ``docs/PERFORMANCE.md``):

* **Strict admission** (:mod:`repro.sim.replay.admission`): a session is
  only recorded/replayed when its timeline provably cannot depend on
  anything outside the cache key — no loss, jitter, or fault injection
  on its path links, no cross-traffic on its front-end during the
  session window, keyed (order-independent) service draws, and a start
  time whose binade the whole session window fits in (so the float
  time-shift is exact).
* **Validation on first reuse** (:mod:`repro.sim.replay.manager`): the
  first time a key recurs the session is simulated anyway and compared
  bit-for-bit against the shifted recording; only after that match do
  subsequent occurrences replay without simulating.
* **Side-effect replication**: a replayed session burns the same
  ephemeral port, writes the same fetch/query ground-truth records, and
  injects the same capture events the full simulation would have
  produced.
"""

from repro.sim.replay.admission import SubmissionSchedule
from repro.sim.replay.cache import ReplayCache, ReplayStats
from repro.sim.replay.manager import (
    SessionReplayManager,
    replay_cache_enabled,
)

__all__ = [
    "ReplayCache",
    "ReplayStats",
    "SessionReplayManager",
    "SubmissionSchedule",
    "replay_cache_enabled",
]
