"""Session fingerprints: the replay-cache key and its float-exactness
window.

The key of a cached session timeline is everything the packet schedule
can depend on *within one campaign*:

* identity — ``(service, FE, VP)`` pins the path (per-pair dedicated
  links, so RTT/bandwidth/MTU are functions of the pair), the TCP
  configs, and the page profile;
* content — the :class:`~repro.content.keywords.Keyword` pins the
  static/dynamic byte sizes (page generation is deterministic);
* draws — the per-query keyed service draws (FE load delay, back-end
  Tproc) are *predicted* from the query id and included as values, so a
  scenario with nonzero sigmas simply never repeats a key instead of
  replaying a wrong timeline;
* time — the binade (floating-point exponent) of the start time.

Why the binade?  All event times of a session starting at ``t0`` inside
the binade ``[2^k, 2^(k+1))`` are multiples of that binade's ulp as long
as the whole session window stays inside it.  Shifting the timeline to
another start time ``t0'`` in the *same* binade adds an exactly
representable delta to every event time, and every float operation the
full simulation would perform at ``t0'`` lands on exactly the shifted
values (the arithmetic only ever combines same-grid quantities and
time *differences*, which are unchanged).  Across binades the time grid
coarsens and rounding can diverge, so the binade is part of the key and
window fit is an admission requirement.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.content.keywords import Keyword
from repro.sim.randomness import RandomStreams


def binade(value: float) -> int:
    """The binary exponent of a positive float (its binade index)."""
    return math.frexp(value)[1]


def window_fits(start: float, end: float) -> bool:
    """True when ``[start, end]`` lies inside one positive binade.

    This is the exactness condition for time-shifted replay: within one
    binade every representable time is a multiple of the binade's ulp,
    so shifting by a same-binade delta is lossless.
    """
    return start > 0.0 and end > 0.0 and binade(start) == binade(end)


def predicted_service_draws(scenario, service_name: str, frontend,
                            keyword: Keyword,
                            query_id: str) -> Tuple[float, float]:
    """The keyed (FE load delay, Tproc) values this query will draw.

    Keyed draws depend only on the root seed and the query id, so a
    *shadow* :class:`RandomStreams` with the campaign's seed reproduces
    them exactly — without touching the campaign registry's streams or
    its ``draws_consumed`` counter.  Predicted at ``concurrency=1``:
    admission guarantees an admitted session runs alone on its FE, and
    a recorded-under-load session would simply never match a prediction
    (a safe miss, never a wrong hit).
    """
    shadow = RandomStreams(scenario.streams.seed)
    deployment = scenario.service(service_name)
    load_delay = frontend.load_model.draw(
        shadow, "fe-load/%s" % frontend.node.name,
        concurrency=1, key=query_id)
    tproc = deployment.profile.processing.draw(
        keyword, shadow, "tproc/%s" % service_name, key=query_id)
    return load_delay, tproc


def session_key(scenario, service_name: str, frontend, vp_name: str,
                keyword: Keyword, query_id: str, start: float) -> tuple:
    """The replay-cache key for one submission.

    Valid only within one campaign on one scenario (the identity fields
    stand in for the path/config parameters they determine there); the
    cache binds itself to a scenario to enforce that.
    """
    load_delay, tproc = predicted_service_draws(
        scenario, service_name, frontend, keyword, query_id)
    return (service_name, frontend.node.name, vp_name, keyword,
            binade(start), load_delay, tproc)
