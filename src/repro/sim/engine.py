"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
plain callbacks scheduled at absolute times; ties are broken by insertion
order so the simulation is fully deterministic for a fixed seed.

The engine deliberately knows nothing about networks or TCP: every other
layer (links, TCP endpoints, HTTP servers, the measurement driver) is built
on :meth:`Simulator.schedule` / :meth:`Simulator.call_at` alone.

Performance notes
-----------------
A heap entry is a plain five-element list ``[time, seq, callback, args,
state]`` and the entry itself is the event handle :meth:`Simulator.schedule`
returns: one allocation per event, no wrapper object, and heap ordering
uses C-level element-wise comparison (``seq`` is unique, so comparisons
never reach the callback).  The trailing ``state`` element is the
cancellation cell — :meth:`Simulator.cancel` flips it, and the entry is
skipped when it reaches the head (lazy deletion).  TCP retransmit timers
are scheduled-then-cancelled on nearly every ACK, so cancelled entries
are drained in batches at the head and, when they exceed
:data:`COMPACT_THRESHOLD` *and* outnumber live entries, a compaction
pass rebuilds the heap without them.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Minimum number of lazily-cancelled queue entries before a compaction
#: pass is considered (it also requires cancelled > live, see
#: :meth:`Simulator._compact_if_worthwhile`).
COMPACT_THRESHOLD = 512

#: Values of the entry's trailing state element.
_PENDING, _CANCELLED, _EXECUTED = 0, 1, 2

#: Entry layout: ``entry[_STATE]`` is the cancellation cell.
_STATE = 4

#: An event handle is the heap entry itself — a plain list
#: ``[time, seq, callback, args, state]``.  Treat it as opaque: cancel
#: through :meth:`Simulator.cancel`, inspect through :func:`is_cancelled`
#: / :func:`is_pending`.  Kept as a named alias for annotations.
EventHandle = list


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a dead engine."""


def is_pending(handle: EventHandle) -> bool:
    """True while the event has neither fired nor been cancelled."""
    return handle[_STATE] == _PENDING


def is_cancelled(handle: EventHandle) -> bool:
    """True once the event was cancelled (and will therefore never fire)."""
    return handle[_STATE] == _CANCELLED


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0.0).

    Notes
    -----
    * Events scheduled for identical times fire in scheduling order.
    * Callbacks may schedule further events, including zero-delay ones.
    * The clock never moves backwards; scheduling in the past raises
      :class:`SchedulingError`.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._cancelled = 0  # cancelled entries still sitting in the queue
        #: Heap compaction count (plain attribute: the observability
        #: layer reads it post-run, keeping the hot path import-free).
        self.compactions = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded).

        Updated when :meth:`run` returns (the dispatch loop tallies
        locally); :meth:`step` updates it immediately.
        """
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet executed (may include cancelled)."""
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queue entries that will actually fire.

        Unlike :attr:`pending_events` this excludes lazily-cancelled
        entries; the count is maintained incrementally (no queue scan).
        """
        return len(self._queue) - self._cancelled

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the event handle; pass it to :meth:`cancel` to prevent
        the event from firing.
        """
        # Scheduling is the single hottest call in a campaign (every
        # packet hop, timer arm, and process resume goes through it):
        # one list literal, no helper calls.
        if delay < 0:
            raise SchedulingError("cannot schedule %r s in the past" % delay)
        if not callable(callback):
            raise TypeError("callback must be callable, got %r" % (callback,))
        seq = self._seq
        self._seq = seq + 1
        entry = [self._now + delay, seq, callback, args, _PENDING]
        _heappush(self._queue, entry)
        return entry

    def call_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at t=%r; clock is already at t=%r"
                % (time, self._now))
        if not callable(callback):
            raise TypeError("callback must be callable, got %r" % (callback,))
        seq = self._seq
        self._seq = seq + 1
        entry = [float(time), seq, callback, args, _PENDING]
        _heappush(self._queue, entry)
        return entry

    def schedule_timeline(self, start: float,
                          timeline) -> List[EventHandle]:
        """Bulk-inject a pre-computed event timeline shifted to ``start``.

        ``timeline`` is an iterable of ``(offset, callback, args)``
        tuples; each event fires at the absolute time ``start + offset``
        (``offset`` >= 0, in seconds).  Events are enqueued in iteration
        order, so same-time entries keep the timeline's relative order
        against each other — though not against events already pending
        for the same instant, which hold earlier sequence numbers.

        This is the injection primitive of the session-replay cache
        (:mod:`repro.sim.replay`): a cached session timeline recorded
        relative to one start time is replayed against another with a
        single call instead of re-simulating the packet exchange.
        Returns the event handles in timeline order.
        """
        handles: List[EventHandle] = []
        now = self._now
        for offset, callback, args in timeline:
            time = start + offset
            if time < now:
                raise SchedulingError(
                    "timeline event at t=%r is in the past (clock at "
                    "t=%r)" % (time, now))
            if not callable(callback):
                raise TypeError("callback must be callable, got %r"
                                % (callback,))
            seq = self._seq
            self._seq = seq + 1
            entry = [time, seq, callback, tuple(args), _PENDING]
            _heappush(self._queue, entry)
            handles.append(entry)
        return handles

    def cancel(self, handle: EventHandle) -> bool:
        """Prevent a scheduled event from firing.

        O(1) lazy deletion: the entry is flagged and skipped when it
        reaches the head of the queue.  Idempotent; cancelling an event
        that already fired is a no-op.  Returns ``True`` if this call
        cancelled the event, ``False`` if it had already fired or been
        cancelled.
        """
        if handle[_STATE] == _PENDING:
            handle[_STATE] = _CANCELLED
            self._cancelled += 1
            self._compact_if_worthwhile()
            return True
        return False

    # ------------------------------------------------------------------
    # cancelled-entry hygiene
    # ------------------------------------------------------------------
    def _compact_if_worthwhile(self) -> None:
        """Rebuild the heap without cancelled entries when they dominate.

        Triggered from :meth:`cancel`; a rebuild is O(n) so it only runs
        once cancelled entries both exceed a fixed threshold and
        outnumber the live ones, which amortises to O(1) per cancel.
        """
        if (self._cancelled > COMPACT_THRESHOLD
                and self._cancelled * 2 > len(self._queue)):
            # In-place (slice assignment + heapify) so that the dispatch
            # loop's local alias of the queue stays valid when a callback
            # triggers compaction mid-run.
            self._queue[:] = [entry for entry in self._queue
                              if not entry[_STATE]]
            heapq.heapify(self._queue)
            self._cancelled = 0
            self.compactions += 1

    def _drain_cancelled_head(self) -> None:
        """Pop the batch of cancelled entries at the head of the queue."""
        queue = self._queue
        pop = _heappop
        while queue and queue[0][_STATE]:
            pop(queue)
            self._cancelled -= 1

    def _next_live_time(self) -> Optional[float]:
        """Time of the next event that will fire, or None when idle."""
        self._drain_cancelled_head()
        if self._queue:
            return self._queue[0][0]
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (cancelled entries are drained silently).
        """
        self._drain_cancelled_head()
        if not self._queue:
            return False
        entry = _heappop(self._queue)
        self._now = entry[0]
        self._processed += 1
        entry[_STATE] = _EXECUTED
        entry[2](*entry[3])
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` additional events have been executed.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fired earlier, mirroring how a
        wall clock would behave during an idle tail.  This holds for
        every stop condition: if ``max_events`` exhausts the queue's
        window the clock still lands on ``until``.  The only exception is
        an event still pending at or before ``until`` (possible only when
        ``max_events`` cut execution short) — then the clock stays on the
        last executed event so that pending work is never skipped over.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = _heappop
        try:
            if until is None and max_events is None:
                # Run-to-drain fast path: no per-event bound checks.
                # This is the loop almost every campaign sits in.
                while queue:
                    entry = pop(queue)
                    if entry[4]:
                        self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    entry[4] = _EXECUTED
                    entry[2](*entry[3])
                    executed += 1
            else:
                # Sentinels instead of per-event ``is not None`` tests:
                # an unreachable horizon and a count no tally equals.
                horizon = float("inf") if until is None else until
                limit = -1 if max_events is None else max_events
                while queue and executed != limit:
                    entry = pop(queue)
                    if entry[4]:
                        self._cancelled -= 1
                        continue
                    time = entry[0]
                    if time > horizon:
                        # Past the window: put the entry back (same seq,
                        # so ordering is preserved).  At most once per
                        # run().
                        _heappush(queue, entry)
                        break
                    self._now = time
                    entry[4] = _EXECUTED
                    entry[2](*entry[3])
                    executed += 1
        finally:
            self._running = False
            self._processed += executed
        if until is not None and until > self._now:
            next_time = self._next_live_time()
            if next_time is None or next_time > until:
                self._now = until

    def run_until_idle(self, idle_gap: float, hard_limit: float) -> None:
        """Run until no event fires within ``idle_gap`` of the previous one.

        Useful for draining a measurement session whose natural end is "the
        connection went quiet".  ``hard_limit`` caps total simulated time:
        an event scheduled past it never fires, even mid-burst, so the
        clock cannot overshoot the cap.  An inter-event gap *exactly*
        equal to ``idle_gap`` does not stop the run (the test is strictly
        greater-than).
        """
        if idle_gap <= 0:
            raise ValueError("idle_gap must be positive")
        last = self._now
        while self.live_events and self._now < hard_limit:
            self._drain_cancelled_head()
            if not self._queue:
                break
            next_time = self._queue[0][0]
            if next_time - last > idle_gap or next_time > hard_limit:
                break
            if not self.step():
                break
            last = self._now
