"""Discrete-event simulation engine.

The engine is a classic calendar queue built on :mod:`heapq`.  Events are
plain callbacks scheduled at absolute times; ties are broken by insertion
order so the simulation is fully deterministic for a fixed seed.

The engine deliberately knows nothing about networks or TCP: every other
layer (links, TCP endpoints, HTTP servers, the measurement driver) is built
on :meth:`Simulator.schedule` / :meth:`Simulator.call_at` alone.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(1.5, fired.append, "a")
>>> _ = sim.schedule(0.5, fired.append, "b")
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a dead engine."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Handles are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.call_at`.  Cancellation is O(1): the entry is flagged
    and skipped when it reaches the head of the queue (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return "<EventHandle t=%.6f #%d %s %s>" % (
            self.time, self.seq, getattr(self.callback, "__name__", "?"), state)


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0.0).

    Notes
    -----
    * Events scheduled for identical times fire in scheduling order.
    * Callbacks may schedule further events, including zero-delay ones.
    * The clock never moves backwards; scheduling in the past raises
      :class:`SchedulingError`.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of queue entries not yet executed (may include cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError("cannot schedule %r s in the past" % delay)
        return self.call_at(self._now + delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SchedulingError(
                "cannot schedule at t=%r; clock is already at t=%r"
                % (time, self._now))
        if not callable(callback):
            raise TypeError("callback must be callable, got %r" % (callback,))
        handle = EventHandle(float(time), next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (cancelled entries are drained silently).
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            self._processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` additional events have been executed.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, mirroring how a wall clock
        would behave during an idle tail.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    return
                heapq.heappop(self._queue)
                self._now = head.time
                self._processed += 1
                head.callback(*head.args)
                executed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, idle_gap: float, hard_limit: float) -> None:
        """Run until no event fires within ``idle_gap`` of the previous one.

        Useful for draining a measurement session whose natural end is "the
        connection went quiet".  ``hard_limit`` caps total simulated time.
        """
        if idle_gap <= 0:
            raise ValueError("idle_gap must be positive")
        last = self._now
        while self._queue and self._now < hard_limit:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time - last > idle_gap:
                break
            if not self.step():
                break
            last = self._now
