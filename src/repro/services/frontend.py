"""Front-end (FE) servers.

A :class:`FrontEndServer` is the paper's central object: a proxy at the
"edge of the cloud" that

1. terminates the user's TCP connection (split TCP),
2. serves the **static portion** of the result page from its cache
   immediately (after a load-dependent processing delay), and
3. forwards the query to the back-end data center over a **persistent,
   already-warm connection**, appending the dynamic portion to the user's
   response whenever the back-end delivers it.

Ground truth: every forwarded query is logged with the instant it was
sent to the back-end and the instant the back-end's response finished
arriving — the true ``Tfetch`` that the paper's inference framework
bounds from the outside via ``Tdelta <= Tfetch <= Tdynamic``.

An ablation switch (``cache_static=False``) turns off role (2): the FE
then forwards the query and relays the *entire* page from the back-end,
which is what the no-FE-cache benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache import CacheHierarchySpec, CacheTier, ContentCache
from repro.content.page import PageGenerator
from repro.http.client import PersistentHttpClient, RequestHooks
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer, Responder
from repro.net.address import Endpoint
from repro.net.geo import GeoPoint
from repro.net.node import Node
from repro.obs import runtime as _obs
from repro.services.load import FrontEndLoadModel
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import FixedWindowController

#: Port on which front-end servers face users.
FRONTEND_PORT = 80


@dataclass
class FetchRecord:
    """Ground truth for one FE-to-BE fetch."""

    query_id: str
    forwarded_at: float
    completed_at: Optional[float] = None
    response_size: int = 0

    @property
    def tfetch(self) -> Optional[float]:
        """True FE-BE fetch time (None until the fetch completes)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.forwarded_at


class _RequestState:
    """Per-user-request assembly state on the FE."""

    __slots__ = ("responder", "query_id", "keyword_text", "server",
                 "static_sent", "dynamic_body", "failed", "done",
                 "fill_static")

    def __init__(self, responder: Responder, query_id: str,
                 keyword_text: str = "", server=None):
        self.responder = responder
        self.query_id = query_id
        self.keyword_text = keyword_text
        self.server = server
        self.static_sent = False
        self.dynamic_body: Optional[bytes] = None
        self.failed = False
        self.done = False
        # True when this request missed every cache tier and the
        # arriving full page should fill the hierarchy.
        self.fill_static = False

    def maybe_complete(self) -> None:
        """Send the dynamic part once both halves are ready."""
        if self.static_sent and self.dynamic_body is not None:
            self.responder.send_body(self.dynamic_body)
            self.responder.finish()
            self.dynamic_body = None
            self.mark_done()

    def mark_done(self) -> None:
        """Release this request's concurrency slot (idempotent)."""
        if self.done:
            return
        self.done = True
        if self.server is not None:
            self.server.active_requests = max(
                0, self.server.active_requests - 1)


class FrontEndServer:
    """A split-TCP front-end proxy with a static-content cache."""

    def __init__(self, sim: Simulator, node: Node, tcp_host, *,
                 service_name: str,
                 page_generator: PageGenerator,
                 load_model: FrontEndLoadModel,
                 backend_host: str,
                 streams: RandomStreams,
                 backend_port: int = 8080,
                 cache_static: bool = True,
                 cache_results: bool = False,
                 pool_size: int = 2,
                 backend_tcp_config: Optional[TcpConfig] = None,
                 backend_window_bytes: Optional[int] = None,
                 port: int = FRONTEND_PORT,
                 keyed_draws: bool = False,
                 cache_spec: Optional[CacheHierarchySpec] = None,
                 cache_seed: int = 0,
                 regional_cache: Optional[ContentCache] = None):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.sim = sim
        self.node = node
        self.service_name = service_name
        self.pages = page_generator
        self.load_model = load_model
        self.backend_endpoint = Endpoint(backend_host, backend_port)
        self.streams = streams
        self.keyed_draws = keyed_draws
        self.cache_static = cache_static
        self.cache_results = cache_results
        self.port = port
        self.fetch_log: Dict[str, FetchRecord] = {}
        # The static-content cache the paper treats as a black box.
        # The degenerate (infinite) spec always hits — bit-identical to
        # the plain cache_static boolean; finite specs start cold, and
        # misses turn into full-page back-end fetches.
        self.cache_spec = cache_spec if cache_spec is not None \
            else CacheHierarchySpec()
        self.static_cache = CacheTier(
            self.cache_spec, name=node.name, seed=cache_seed,
            regional_cache=regional_cache)
        #: Ground truth for cache-lab validation: query_id -> hit level
        #: (0 = FE, 1 = regional, -1 = origin).  Only populated for
        #: finite caches; pruned with fetch_log in streaming campaigns.
        self.static_hit_log: Dict[str, int] = {}
        self.result_cache = ContentCache(
            self.cache_spec.result, name="%s/result" % node.name,
            seed=cache_seed, metric_prefix="fe.result_cache_")
        self.result_cache_hits = 0
        self.requests_served = 0
        self.active_requests = 0
        self.peak_concurrency = 0
        self.server = HttpServer(tcp_host, port, self._handle)
        self._pool: List[PersistentHttpClient] = []
        for index in range(pool_size):
            controller = None
            if backend_window_bytes is not None:
                controller = FixedWindowController(backend_window_bytes)
            self._pool.append(PersistentHttpClient(
                tcp_host, self.backend_endpoint,
                config=backend_tcp_config, controller=controller))

    # ------------------------------------------------------------------
    @property
    def location(self) -> Optional[GeoPoint]:
        return self.node.location

    @property
    def name(self) -> str:
        return self.node.name

    def _pick_backend_client(self) -> PersistentHttpClient:
        """Least-loaded persistent connection in the pool."""
        return min(self._pool, key=lambda c: c.queue_depth)

    # ------------------------------------------------------------------
    def _handle(self, request: HttpRequest, responder: Responder) -> None:
        if not request.path.startswith("/search"):
            responder.respond(HttpResponse(
                status=404, body=b"not found: " +
                request.path.encode("latin-1", errors="replace")))
            return
        self.requests_served += 1
        if _obs.enabled:
            _obs.metrics.inc("fe.requests")
        query_id = request.query.get(
            "id", "fe-%s-%d" % (self.node.name, self.requests_served))
        state = _RequestState(responder, query_id,
                              request.query.get("q", ""), self)
        self.active_requests += 1
        self.peak_concurrency = max(self.peak_concurrency,
                                    self.active_requests)
        delay = self.load_model.draw(  # simlint: unit[s]
            self.streams, "fe-load/%s" % self.node.name,
            concurrency=self.active_requests,
            key=query_id if self.keyed_draws else None)
        static_level = 0
        if self.cache_static:
            static_level = self.static_cache.lookup(state.keyword_text)
            if self.static_cache.finite:
                # Never needs replay replication: finite content caches
                # are statically bypassed by replay admission
                # ("finite-content-cache" in sim/replay/admission.py),
                # so no replay hit can skip this write.
                self.static_hit_log[query_id] = static_level  # simlint: ignore[RPLY001,EFF001]
        if self.cache_results and self.cache_static \
                and static_level != CacheTier.ORIGIN:
            cached = self.result_cache.get(request.query.get("q", ""))
            if cached is not None:
                # Counterfactual mode (the paper shows real services do
                # NOT do this): serve the dynamic part from the FE cache
                # with no back-end fetch at all.
                self.result_cache_hits += 1
                # Finite result caches export their own counters
                # (fe.result_cache_hits/_misses/_evictions, sim scope);
                # this legacy host-scope counter covers the unbounded
                # default.
                if _obs.enabled and not self.result_cache.spec.finite:
                    _obs.metrics.inc("fe.result_cache_hits")
                state.dynamic_body = cached
                self.sim.schedule(
                    delay + self.static_cache.fetch_delay(static_level),
                    self._write_static, state)
                return
        if self.cache_static and static_level != CacheTier.ORIGIN:
            # Forward to the back-end immediately; write the cached
            # static prefix after the FE processing delay (plus the
            # regional round trip when the hit was one tier down).
            self._forward(request, state, full_page=False)
            self.sim.schedule(
                delay + self.static_cache.fetch_delay(static_level),
                self._write_static, state)
        else:
            # No usable static copy — either the ablation switch is off
            # or every cache tier missed: everything waits for the
            # back-end's full page.
            state.fill_static = (self.cache_static
                                 and static_level == CacheTier.ORIGIN)
            self.sim.schedule(delay, self._forward, request, state, True)

    def record_replayed_fetch(self, query_id: str, forwarded_at: float,
                              completed_at: float,
                              response_size: int) -> None:
        """Reproduce the server-side footprint of one replayed request.

        The session-replay cache (:mod:`repro.sim.replay`) skips the
        packet-level simulation of an admitted session but must leave
        the same ground-truth trail: the fetch-log record and the
        request counters.  Admission guarantees the session ran alone on
        this FE, so concurrency bookkeeping reduces to "one request".
        """
        self.requests_served += 1
        if _obs.enabled:
            # Keeps fe.requests == requests_served under replay too.
            _obs.metrics.inc("fe.requests")
        self.peak_concurrency = max(self.peak_concurrency, 1)
        self.server.requests_served += 1
        self.server.connections_accepted += 1
        self.fetch_log[query_id] = FetchRecord(
            query_id=query_id, forwarded_at=forwarded_at,
            completed_at=completed_at, response_size=response_size)
        # With the pool idle (guaranteed by admission), the real run
        # would have routed the fetch to the least-loaded client.
        self._pick_backend_client().requests_completed += 1

    def _write_static(self, state: _RequestState) -> None:
        if state.failed:
            return
        state.responder.send_head(200, {
            "X-Served-By": self.node.name,
            "X-Service": self.service_name,
        })
        state.responder.send_body(self.pages.static_content())
        state.static_sent = True
        state.maybe_complete()

    def _forward(self, request: HttpRequest, state: _RequestState,
                 full_page: bool) -> None:
        headers = {"Host": self.backend_endpoint.host}
        if full_page:
            headers["X-Full-Page"] = "1"
        backend_request = HttpRequest(path=request.path, headers=headers)
        record = FetchRecord(query_id=state.query_id,
                             forwarded_at=self.sim.now)
        self.fetch_log[state.query_id] = record
        hooks = RequestHooks(
            on_complete=lambda response: self._fetched(
                state, record, response, full_page),
            on_failure=lambda message: self._fetch_failed(state, message))
        self._pick_backend_client().request(backend_request, hooks)

    def _fetched(self, state: _RequestState, record: FetchRecord,
                 response: HttpResponse, full_page: bool) -> None:
        record.completed_at = self.sim.now
        record.response_size = len(response.body)
        if self.cache_results and not full_page:
            self.result_cache.insert(state.keyword_text,
                                     len(response.body),
                                     value=response.body)
        if state.fill_static:
            # The full page just arrived from the origin; keep the
            # static portion per the hierarchy's fill policy so later
            # requests for this keyword can hit.
            self.static_cache.fill_from_origin(
                state.keyword_text, len(self.pages.static_content()))
        if full_page:
            state.responder.send_head(200, {
                "X-Served-By": self.node.name,
                "X-Service": self.service_name,
            })
            state.responder.send_body(response.body)
            state.responder.finish()
            state.mark_done()
        else:
            state.dynamic_body = response.body
            state.maybe_complete()

    def _fetch_failed(self, state: _RequestState, message: str) -> None:
        state.failed = True
        if not state.responder.finished:
            if not state.static_sent:
                state.responder.send_head(502)
            state.responder.finish()
        state.mark_done()
