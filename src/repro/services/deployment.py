"""Service deployment profiles and assembly.

A :class:`ServiceProfile` captures everything that distinguishes the two
measured services:

* **google-like** — a modest number of FE sites, *dedicated* to search,
  lightly loaded (small, stable FE delay), connected to back-ends over a
  private well-provisioned network (low route inflation, no loss), with
  fast and stable back-end processing;
* **bing-akamai-like** — many FE sites very close to users (Akamai), but
  *shared* with other CDN customers (larger, high-variance FE delay),
  reaching the Bing back-ends over the public Internet (higher route
  inflation, slight loss/jitter), with slower, high-variance back-end
  processing.

The numeric anchors come from the paper: Figure 9's regression intercepts
(~34 ms vs ~260 ms of back-end computation) and slopes (~0.08-0.099
ms/mile of FE-BE distance), Figure 5's Tdelta-extinction thresholds
(50-100 ms for Google vs 100-200 ms for Bing), and Figure 6's RTT CDFs.

:class:`ServiceDeployment` instantiates a profile onto a topology: one
node + HTTP server per FE/BE site, geo-derived FE-BE links, and shared
keyword registry and ground-truth logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache import CacheHierarchySpec, ContentCache
from repro.content.page import PageGenerator, PageProfile
from repro.net.geo import GeoPoint, nearest
from repro.net.topology import Topology
from repro.services.backend import (
    BACKEND_PORT,
    BackendDataCenter,
    KeywordRegistry,
)
from repro.services.frontend import FrontEndServer
from repro.services.load import FrontEndLoadModel, ProcessingModel
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.tcp.config import TcpConfig
from repro.tcp.host import TcpHost

#: A deployment site: (name, location).
Site = Tuple[str, GeoPoint]


@dataclass(frozen=True)
class ServiceProfile:
    """All tunables of one simulated search service."""

    name: str
    page_profile: PageProfile
    processing: ProcessingModel
    fe_load: FrontEndLoadModel
    #: FE-BE path characteristics.
    fe_be_bandwidth: float = units.mbps(500)
    fe_be_loss: float = 0.0
    fe_be_jitter: float = 0.0
    route_inflation: float = 1.5
    #: Pinned congestion window of the warm FE-BE connections (bytes).
    backend_window_bytes: Optional[int] = 12_000
    fe_pool_size: int = 8
    #: TCP config used on FE (user-facing) and BE listeners.  The BE
    #: default pins the FE-BE per-flow window (split TCP's warm leg).
    edge_tcp: TcpConfig = field(default_factory=TcpConfig)
    backend_tcp: TcpConfig = field(
        default_factory=lambda: TcpConfig(fixed_window_bytes=12_000))

    def with_overrides(self, **kwargs) -> "ServiceProfile":
        """Copy the profile with the given fields replaced (ablations)."""
        return replace(self, **kwargs)


def google_like_profile() -> ServiceProfile:
    """A dedicated-FE service calibrated to the paper's Google numbers."""
    return ServiceProfile(
        name="google-like",
        page_profile=PageProfile(static_size=4_300,
                                 dynamic_base_size=24_000,
                                 dynamic_complexity_size=12_000),
        processing=ProcessingModel(base=0.030, complexity_weight=0.8,
                                   popularity_discount=0.4, sigma=0.12),
        fe_load=FrontEndLoadModel(median_delay=0.004, sigma=0.25,
                                  per_concurrent_delay=0.0002),
        fe_be_bandwidth=units.gbps(1),
        fe_be_loss=0.0,
        fe_be_jitter=units.ms(0.3),
        route_inflation=1.5,
        backend_window_bytes=12_000,
        fe_pool_size=8,
    )


def bing_akamai_profile() -> ServiceProfile:
    """A shared-CDN-FE service calibrated to the paper's Bing numbers."""
    return ServiceProfile(
        name="bing-akamai",
        page_profile=PageProfile(static_size=13_500,
                                 dynamic_base_size=26_000,
                                 dynamic_complexity_size=14_000),
        processing=ProcessingModel(base=0.190, complexity_weight=1.2,
                                   popularity_discount=0.35, sigma=0.25),
        fe_load=FrontEndLoadModel(median_delay=0.015, sigma=0.9,
                                  per_concurrent_delay=0.002),
        fe_be_bandwidth=units.mbps(400),
        fe_be_loss=0.0005,
        fe_be_jitter=units.ms(2),
        route_inflation=1.7,
        backend_window_bytes=12_000,
        fe_pool_size=10,
    )


class ServiceDeployment:
    """A service profile instantiated onto a topology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 streams: RandomStreams, profile: ServiceProfile, *,
                 fe_sites: Sequence[Site],
                 be_sites: Sequence[Site],
                 cache_static: bool = True,
                 cache_results: bool = False,
                 registry: Optional[KeywordRegistry] = None,
                 content_seed: int = 0,
                 keyed_draws: bool = False,
                 cache_spec: Optional[CacheHierarchySpec] = None):
        if not fe_sites:
            raise ValueError("need at least one FE site")
        if not be_sites:
            raise ValueError("need at least one BE site")
        self.sim = sim
        self.topology = topology
        self.streams = streams
        self.profile = profile
        self.registry = registry or KeywordRegistry()
        self.keyed_draws = keyed_draws
        self.cache_spec = cache_spec if cache_spec is not None \
            else CacheHierarchySpec()
        #: Shared regional caches (regional_scope="shared"): one per BE
        #: site, injected into every FE homed on that back-end.
        self._shared_regional: Dict[str, ContentCache] = {}
        self.pages = PageGenerator(profile.name, profile.page_profile,
                                   seed=content_seed)
        self.backends: List[BackendDataCenter] = []
        self.frontends: List[FrontEndServer] = []
        #: node name -> deployment site name (e.g. metro), for both roles.
        self.site_of_node: Dict[str, str] = {}
        self._build_backends(be_sites)
        self._build_frontends(fe_sites, cache_static, cache_results)

    # ------------------------------------------------------------------
    def _node_name(self, role: str, site_name: str) -> str:
        return "%s-%s-%s" % (role, self.profile.name, site_name)

    def _build_backends(self, be_sites: Sequence[Site]) -> None:
        for site_name, location in be_sites:
            node = self.topology.add_node(self._node_name("be", site_name),
                                          location)
            self.site_of_node[node.name] = site_name
            tcp_host = TcpHost(self.sim, node, self.profile.backend_tcp,
                               self.streams)
            self.backends.append(BackendDataCenter(
                self.sim, node,
                service_name=self.profile.name,
                page_generator=self.pages,
                processing_model=self.profile.processing,
                registry=self.registry,
                streams=self.streams,
                tcp_host=tcp_host,
                keyed_draws=self.keyed_draws))

    def _build_frontends(self, fe_sites: Sequence[Site],
                         cache_static: bool,
                         cache_results: bool = False) -> None:
        for site_name, location in fe_sites:
            node = self.topology.add_node(self._node_name("fe", site_name),
                                          location)
            self.site_of_node[node.name] = site_name
            tcp_host = TcpHost(self.sim, node, self.profile.edge_tcp,
                               self.streams)
            backend = self._nearest_backend(location)
            self.topology.connect(
                node.name, backend.node.name,
                bandwidth=self.profile.fe_be_bandwidth,
                loss_rate=self.profile.fe_be_loss,
                jitter=self.profile.fe_be_jitter,
                route_inflation=self.profile.route_inflation)
            self.frontends.append(FrontEndServer(
                self.sim, node, tcp_host,
                service_name=self.profile.name,
                page_generator=self.pages,
                load_model=self.profile.fe_load,
                backend_host=backend.node.name,
                backend_port=BACKEND_PORT,
                streams=self.streams,
                cache_static=cache_static,
                cache_results=cache_results,
                pool_size=self.profile.fe_pool_size,
                backend_tcp_config=self.profile.backend_tcp,
                backend_window_bytes=self.profile.backend_window_bytes,
                keyed_draws=self.keyed_draws,
                cache_spec=self.cache_spec,
                cache_seed=self.streams.seed,
                regional_cache=self._regional_cache_for(backend)))

    def _nearest_backend(self, location: GeoPoint) -> BackendDataCenter:
        backend, _ = nearest(location, self.backends)
        return backend

    def _regional_cache_for(self, backend: BackendDataCenter
                            ) -> Optional[ContentCache]:
        """The shared regional cache for FEs homed on ``backend``.

        Only built for ``regional_scope="shared"``; the per-fe default
        lets each :class:`FrontEndServer` own a private regional tier.
        """
        if not self.cache_spec.shared_regional:
            return None
        cache = self._shared_regional.get(backend.node.name)
        if cache is None:
            cache = ContentCache(
                self.cache_spec.regional,
                name="%s/regional" % backend.node.name,
                seed=self.streams.seed,
                metric_prefix="cache.regional.")
            self._shared_regional[backend.node.name] = cache
        return cache

    # ------------------------------------------------------------------
    # lookups used by the testbed / experiments
    # ------------------------------------------------------------------
    def register_keywords(self, keywords) -> None:
        """Make keyword attributes resolvable at the back-ends."""
        self.registry.register_all(keywords)

    def nearest_frontend(self, location: GeoPoint) -> FrontEndServer:
        """The geographically nearest FE (used by DNS default mapping)."""
        frontend, _ = nearest(location, self.frontends)
        return frontend

    def frontend_by_name(self, name: str) -> FrontEndServer:
        for frontend in self.frontends:
            if frontend.node.name == name or name in frontend.node.name:
                return frontend
        raise KeyError("no frontend matching %r" % name)

    def backend_for_frontend(self, frontend: FrontEndServer
                             ) -> BackendDataCenter:
        """The BE a given FE forwards to (nearest by construction)."""
        return self._nearest_backend(frontend.location)

    def fe_be_distance_miles(self, frontend: FrontEndServer) -> float:
        backend = self.backend_for_frontend(frontend)
        return frontend.location.distance_miles(backend.location)

    def merged_fetch_log(self) -> Dict[str, object]:
        """Union of all FEs' ground-truth fetch records."""
        merged = {}
        for frontend in self.frontends:
            merged.update(frontend.fetch_log)
        return merged

    def merged_query_log(self) -> Dict[str, object]:
        """Union of all BEs' ground-truth query records."""
        merged = {}
        for backend in self.backends:
            merged.update(backend.query_log)
        return merged
