"""Back-end data centers.

A :class:`BackendDataCenter` owns a node "deep in the cloud", runs an
HTTP server on the internal service port, and answers search queries:
on arrival it draws a processing time from its :class:`ProcessingModel`,
waits that long, then returns the dynamically generated content.

The data center also keeps a **ground-truth log** of every query it
served (arrival time, drawn ``Tproc``, response size).  The paper could
never observe these quantities — its contribution is inferring them from
the outside.  Recording them lets the reproduction *validate* the
inference framework against truth, a stronger check than the original
study could perform.  Nothing in the measurement/analysis path reads
this log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.content.keywords import Keyword
from repro.content.page import PageGenerator
from repro.http.message import HttpRequest, HttpResponse
from repro.http.server import HttpServer, Responder
from repro.net.geo import GeoPoint
from repro.net.node import Node
from repro.obs import runtime as _obs
from repro.services.load import ProcessingModel
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

#: Internal port on which back-end data centers serve front-end fetches.
BACKEND_PORT = 8080


@dataclass
class QueryRecord:
    """Ground truth for one query served by a back-end."""

    query_id: str
    keyword_text: str
    arrival_time: float
    tproc: float
    response_size: int = 0
    completed_time: Optional[float] = None


class KeywordRegistry:
    """Maps query text back to :class:`Keyword` attributes.

    The emulator registers the keywords it will use; unknown query text
    falls back to neutral attributes derived deterministically from the
    text, so the back-end never crashes on a novel query.
    """

    def __init__(self):
        self._by_text: Dict[str, Keyword] = {}

    def register(self, keyword: Keyword) -> None:
        self._by_text[keyword.text] = keyword

    def register_all(self, keywords) -> None:
        for keyword in keywords:
            self.register(keyword)

    def resolve(self, text: str) -> Keyword:
        known = self._by_text.get(text)
        if known is not None:
            return known
        # Deterministic fallback: popularity/complexity from text shape.
        word_count = max(1, len(text.split()))
        return Keyword(text=text or "(empty)",
                       popularity=0.2,
                       complexity=min(1.0, 0.15 * word_count),
                       granularity=word_count)


class BackendDataCenter:
    """A simulated search back-end data center."""

    def __init__(self, sim: Simulator, node: Node, *,
                 service_name: str,
                 page_generator: PageGenerator,
                 processing_model: ProcessingModel,
                 registry: KeywordRegistry,
                 streams: RandomStreams,
                 tcp_host,
                 port: int = BACKEND_PORT,
                 keyed_draws: bool = False):
        self.sim = sim
        self.node = node
        self.service_name = service_name
        self.pages = page_generator
        self.processing = processing_model
        self.registry = registry
        self.streams = streams
        self.keyed_draws = keyed_draws
        self.port = port
        self.query_log: Dict[str, QueryRecord] = {}
        self.queries_served = 0
        self.server = HttpServer(tcp_host, port, self._handle)

    @property
    def location(self) -> Optional[GeoPoint]:
        return self.node.location

    # ------------------------------------------------------------------
    def _handle(self, request: HttpRequest, responder: Responder) -> None:
        if not request.path.startswith("/search"):
            responder.respond(HttpResponse(status=404, body=b"not found"))
            return
        params = request.query
        text = params.get("q", "")
        query_id = params.get("id", "anon-%d" % self.queries_served)
        keyword = self.registry.resolve(text)
        tproc = self.processing.draw(
            keyword, self.streams, "tproc/%s" % self.service_name,
            key=query_id if self.keyed_draws else None)
        record = QueryRecord(query_id=query_id, keyword_text=text,
                             arrival_time=self.sim.now, tproc=tproc)
        self.query_log[query_id] = record
        self.queries_served += 1
        if _obs.enabled:
            _obs.metrics.inc("be.queries")
        include_static = request.headers.get("X-Full-Page") == "1"
        self.sim.schedule(tproc, self._respond, responder, keyword,
                          record, include_static)

    def record_replayed_query(self, query_id: str, keyword_text: str,
                              arrival_time: float, tproc: float,
                              response_size: int,
                              completed_time: float) -> None:
        """Reproduce the ground-truth footprint of one replayed query.

        Counterpart of
        :meth:`repro.services.frontend.FrontEndServer.record_replayed_fetch`
        for the back-end side: the session-replay cache calls this
        instead of driving the FE-BE fetch packet by packet.
        """
        self.query_log[query_id] = QueryRecord(
            query_id=query_id, keyword_text=keyword_text,
            arrival_time=arrival_time, tproc=tproc,
            response_size=response_size, completed_time=completed_time)
        self.queries_served += 1
        if _obs.enabled:
            # Keeps be.queries == queries_served under replay too.
            _obs.metrics.inc("be.queries")
        # The fetch rides a pre-existing persistent pool connection, so
        # only the request counter moves — never connections_accepted.
        self.server.requests_served += 1

    def _respond(self, responder: Responder, keyword: Keyword,
                 record: QueryRecord, include_static: bool) -> None:
        body = self.pages.dynamic_content(keyword)
        if include_static:
            body = self.pages.static_content() + body
        record.response_size = len(body)
        record.completed_time = self.sim.now
        responder.respond(HttpResponse(
            status=200,
            headers={"X-Service": self.service_name,
                     "X-Query-Id": record.query_id},
            body=body))
