"""Simulated search services: back-ends, front-ends, deployments."""

from repro.services.backend import (
    BACKEND_PORT,
    BackendDataCenter,
    KeywordRegistry,
    QueryRecord,
)
from repro.services.deployment import (
    ServiceDeployment,
    ServiceProfile,
    Site,
    bing_akamai_profile,
    google_like_profile,
)
from repro.services.frontend import FRONTEND_PORT, FetchRecord, FrontEndServer
from repro.services.load import FrontEndLoadModel, ProcessingModel

__all__ = [
    "BACKEND_PORT",
    "BackendDataCenter",
    "FRONTEND_PORT",
    "FetchRecord",
    "FrontEndLoadModel",
    "FrontEndServer",
    "KeywordRegistry",
    "ProcessingModel",
    "QueryRecord",
    "ServiceDeployment",
    "ServiceProfile",
    "Site",
    "bing_akamai_profile",
    "google_like_profile",
]
