"""Server load / processing-time models.

Two stochastic delay models parameterise the reproduction:

* :class:`FrontEndLoadModel` — per-request processing delay at a
  front-end server.  The paper speculates that Bing's higher and more
  variable ``Tstatic`` stems from Akamai FE servers being *shared* with
  many other customers, while Google's dedicated FEs are lightly loaded
  and stable.  The model is a lognormal: shared CDNs get a larger median
  and a fatter tail.

* :class:`ProcessingModel` — query processing time ``Tproc`` at a
  back-end data center.  Structure:

  ``Tproc = base * (1 + complexity_weight * complexity)
          * (1 - popularity_discount * popularity) * noise``

  where ``noise`` is lognormal with unit median.  Popular queries are
  cheaper (hot result caches deep in the back-end — *not* FE caching,
  which the paper shows does not happen); complex uncorrelated queries
  are costlier.  The paper's Figure 9 intercepts (~34 ms for Google,
  ~260 ms for Bing) anchor the ``base`` values of the two profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.content.keywords import Keyword
from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class FrontEndLoadModel:
    """Lognormal per-request delay at a front-end server.

    ``median_delay`` is in seconds; ``sigma`` is the lognormal shape
    (0 = deterministic); ``floor`` bounds the delay from below.
    ``per_concurrent_delay`` adds processing time for every *other*
    request currently in flight on the same FE — the mechanism behind
    the paper's speculation that shared Akamai FEs show higher and more
    variable Tstatic than Google's dedicated fleet.
    """

    median_delay: float = 0.003
    sigma: float = 0.2
    floor: float = 0.0005
    per_concurrent_delay: float = 0.0

    def __post_init__(self):
        if self.median_delay <= 0:
            raise ValueError("median_delay must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if self.per_concurrent_delay < 0:
            raise ValueError("per_concurrent_delay must be >= 0")

    def draw(self, streams: RandomStreams, stream_name: str,
             concurrency: int = 1, key: Optional[str] = None) -> float:
        """Sample one request's FE processing delay.

        ``concurrency`` counts the requests in flight on the FE
        including this one.  With ``key`` (normally the query id) the
        lognormal draw comes from a per-key generator instead of the
        shared sequential stream, making the value independent of the
        order requests arrive in — required for sharded campaign runs
        to match serial ones (see :meth:`RandomStreams.keyed`).
        """
        if self.sigma == 0:
            value = self.median_delay
        elif key is not None:
            value = streams.keyed(stream_name, key).lognormvariate(
                math.log(self.median_delay), self.sigma)
        else:
            value = streams.lognormal(stream_name,
                                      math.log(self.median_delay),
                                      self.sigma)
        value += self.per_concurrent_delay * max(0, concurrency - 1)
        return max(self.floor, value)


@dataclass(frozen=True)
class ProcessingModel:
    """Back-end query processing time model.

    All times in seconds.
    """

    base: float = 0.050
    complexity_weight: float = 1.0
    popularity_discount: float = 0.4
    sigma: float = 0.2
    floor: float = 0.002

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError("base must be positive")
        if not 0.0 <= self.popularity_discount < 1.0:
            raise ValueError("popularity_discount must be in [0,1)")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def mean_for(self, keyword: Keyword) -> float:
        """Deterministic component of Tproc for a keyword."""
        scale = (1.0 + self.complexity_weight * keyword.complexity)
        scale *= (1.0 - self.popularity_discount * keyword.popularity)
        return self.base * scale

    def draw(self, keyword: Keyword, streams: RandomStreams,
             stream_name: str, key: Optional[str] = None) -> float:
        """Sample Tproc for one query execution.

        ``key`` (normally the query id) switches the noise draw to a
        per-key generator so the sampled value does not depend on the
        arrival order of other queries anywhere in the service — the
        ``tproc`` stream is shared by every back-end of a service, so
        without a key any change in global query interleaving would
        perturb every later draw (see :meth:`RandomStreams.keyed`).
        """
        mean = self.mean_for(keyword)
        if self.sigma == 0:
            return max(self.floor, mean)
        if key is not None:
            noise = streams.keyed(stream_name, key).lognormvariate(
                0.0, self.sigma)
        else:
            noise = streams.lognormal(stream_name, 0.0, self.sigma)
        return max(self.floor, mean * noise)
