"""Section 3: do front-end servers cache search results?

The paper's two-condition experiment against a fixed FE — every node
submitting the *same* keyword versus every node submitting a *different*
keyword — compared via the Tdynamic distributions.  The conclusion for
the real services was "no".

The runner reproduces both conditions, and can also run the
*counterfactual* (a deployment whose FEs do cache results,
``cache_results=True``) to show the detector fires when caching exists —
a positive control the original study could not perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.content.keywords import Keyword, KeywordCatalog
from repro.core.cache_detect import CacheDetectionResult, detect_result_caching
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    calibrate_service,
)
from repro.measure.driver import run_single_queries
from repro.services.deployment import bing_akamai_profile, google_like_profile
from repro.testbed.scenario import Scenario, ScenarioConfig


@dataclass
class CachingExperimentResult:
    """Outcome of the Section-3 caching experiment."""

    service: str
    caching_enabled_in_simulator: bool
    detection: CacheDetectionResult
    same_samples: int
    distinct_samples: int

    @property
    def detector_correct(self) -> bool:
        """Did the detector match the simulator's ground truth?"""
        return (self.detection.caching_detected
                == self.caching_enabled_in_simulator)


def run_caching_experiment(scale: Optional[ExperimentScale] = None, *,
                           service_name: str = Scenario.BING,
                           fe_caches_results: bool = False
                           ) -> CachingExperimentResult:
    """Run both query conditions and the detector.

    ``fe_caches_results=True`` builds the counterfactual deployment in
    which front-end servers *do* cache dynamically generated results.
    """
    scale = scale or ExperimentScale.small()
    scenario = _caching_scenario(scale) if fe_caches_results else Scenario(
        ScenarioConfig(seed=scale.seed,
                       vantage_count=scale.vantage_count),
        google_profile=google_like_profile(),
        bing_profile=bing_akamai_profile())
    service = scenario.service(service_name)
    frontend = service.frontends[0]
    calibration = calibrate_service(scenario, service_name, [frontend])

    # Caching manifests in Tdynamic only where the fetch (not the
    # client-leg delivery) dominates, i.e. for low-RTT nodes — the
    # paper's common case (80% of nodes saw <20 ms to the CDN FEs).
    vps = sorted(scenario.vantage_points,
                 key=lambda vp: scenario.client_fe_rtt(vp, frontend,
                                                       service))
    vps = vps[:max(8, scale.vantage_count // 2)]
    catalog = KeywordCatalog(seed=scale.seed + 7)
    shared = Keyword(text="mobile cloud computing", popularity=0.9,
                     complexity=0.3, suggested=True)
    pool = catalog.bulk_pool(count=len(vps))

    # Condition 1: everyone asks the same query, sequentially.
    same_sessions = run_single_queries(
        scenario, service_name, frontend,
        [(vp, shared) for vp in vps], spacing=0.5)
    # Condition 2: everyone asks a different query.
    distinct_sessions = run_single_queries(
        scenario, service_name, frontend,
        list(zip(vps, pool)), spacing=0.5)

    same_metrics = extract_all_calibrated(same_sessions, calibration)
    distinct_metrics = extract_all_calibrated(distinct_sessions,
                                              calibration)
    detection = detect_result_caching(
        [m.tdynamic for m in same_metrics],
        [m.tdynamic for m in distinct_metrics])
    return CachingExperimentResult(
        service=service_name,
        caching_enabled_in_simulator=fe_caches_results,
        detection=detection,
        same_samples=len(same_metrics),
        distinct_samples=len(distinct_metrics))


def _caching_scenario(scale: ExperimentScale) -> Scenario:
    """A scenario whose deployments cache dynamic results at the FE."""
    config = ScenarioConfig(seed=scale.seed,
                            vantage_count=scale.vantage_count)
    # Build normally, then flip the flag before any traffic flows (the
    # caches are empty at this point, so the change is consistent).
    scenario = Scenario(config)
    for service in scenario.services.values():
        for frontend in service.frontends:
            frontend.cache_results = True
    return scenario
