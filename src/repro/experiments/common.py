"""Shared machinery for the figure-reproduction experiments.

Every experiment runner follows the same recipe:

1. build a (scaled) :class:`~repro.testbed.scenario.Scenario`;
2. run a small *calibration* campaign with payload capture to locate the
   static/dynamic boundary per service (the content analysis);
3. run the measurement campaign proper (payloads off);
4. extract metrics and compute the figure's data series.

``ExperimentScale`` lets benchmarks run the same experiments at reduced
size while keeping the paper-scale parameters one constant away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.boundary import BoundaryCalibration
from repro.content.keywords import Keyword
from repro.measure.emulator import QueryEmulator
from repro.measure.session import QuerySession
from repro.services.frontend import FrontEndServer
from repro.sim import units
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.testbed.sites import Metro
from repro.testbed.vantage import VantagePoint

#: Keywords used for boundary calibration.  First words differ so the
#: content diff converges quickly.
CALIBRATION_KEYWORDS = (
    Keyword(text="network measurement studies", popularity=0.4,
            complexity=0.4),
    Keyword(text="distributed systems research", popularity=0.4,
            complexity=0.4),
    Keyword(text="protocol performance analysis", popularity=0.4,
            complexity=0.4),
)


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for runtime.

    ``paper`` reproduces the study's sample sizes; ``small`` keeps every
    qualitative shape at benchmark-friendly cost.
    """

    vantage_count: int = 60
    repeats: int = 12
    interval: float = 2.0
    fig3_samples: int = 120
    fig9_repeats: int = 48
    seed: int = 0

    @classmethod
    def small(cls, seed: int = 0) -> "ExperimentScale":
        return cls(seed=seed)

    @classmethod
    def tiny(cls, seed: int = 0) -> "ExperimentScale":
        """Minimum scale that still produces the shapes (CI-friendly)."""
        return cls(vantage_count=24, repeats=5, interval=1.0,
                   fig3_samples=40, fig9_repeats=24, seed=seed)

    @classmethod
    def paper(cls, seed: int = 0) -> "ExperimentScale":
        """The 2011 campaign's size: ~240 nodes, 500-720 repeats."""
        return cls(vantage_count=240, repeats=720, interval=10.0,
                   fig3_samples=500, fig9_repeats=120, seed=seed)

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


def build_scenario(scale: ExperimentScale, **config_overrides) -> Scenario:
    """Standard two-service scenario at the requested scale."""
    config = ScenarioConfig(seed=scale.seed,
                            vantage_count=scale.vantage_count,
                            **config_overrides)
    return Scenario(config)


def calibrate_service(scenario: Scenario, service_name: str,
                      frontends: Optional[Sequence[FrontEndServer]] = None,
                      vp: Optional[VantagePoint] = None
                      ) -> BoundaryCalibration:
    """Run the content-analysis calibration for one service.

    Issues the calibration keywords (payload capture on) from one
    vantage point against each front-end in ``frontends`` (default: the
    vantage point's default FE), then builds the per-FE boundary table.
    """
    vp = vp or scenario.vantage_points[0]
    service = scenario.service(service_name)
    emulator = QueryEmulator(scenario, vp, store_payload=True)
    targets = list(frontends) if frontends else \
        [scenario.default_frontend(service_name, vp)]
    sessions = []
    for frontend in targets:
        scenario.link_client_to_frontend(vp, frontend, service)
        for keyword in CALIBRATION_KEYWORDS:
            sessions.append(emulator.submit(service_name, frontend,
                                            keyword))
    scenario.sim.run()
    incomplete = [s for s in sessions if not s.complete]
    if incomplete:
        raise RuntimeError("calibration queries failed: %s"
                           % [s.query_id for s in incomplete])
    return BoundaryCalibration.from_sessions(sessions)


def calibrate_frontends_used(scenario: Scenario, service_name: str,
                             sessions: Sequence[QuerySession],
                             vp: Optional[VantagePoint] = None
                             ) -> BoundaryCalibration:
    """Calibrate exactly the front-ends a campaign touched."""
    service = scenario.service(service_name)
    fe_names = sorted({s.fe_name for s in sessions
                       if s.service == service_name})
    frontends = [service.frontend_by_name(name) for name in fe_names]
    return calibrate_service(scenario, service_name, frontends, vp)


def colocated_vantage_point(scenario: Scenario, metro: Metro,
                            tag: str) -> VantagePoint:
    """Create a low-RTT client inside ``metro`` (campus-like access)."""
    rng = scenario.streams.get("colocated/%s" % tag)
    vp = VantagePoint(
        name="probe-%s-%s" % (tag, metro.name),
        metro=metro,
        location=metro.location,
        access_delay=units.ms(rng.uniform(1.0, 2.0)),
        peering_penalty=units.ms(rng.uniform(3.0, 6.0)))
    return scenario.add_vantage_point(vp)


def sessions_by_fe(sessions: Sequence[QuerySession]
                   ) -> Dict[str, List[QuerySession]]:
    """Group sessions by the front-end that served them."""
    grouped: Dict[str, List[QuerySession]] = {}
    for session in sessions:
        grouped.setdefault(session.fe_name, []).append(session)
    return grouped
