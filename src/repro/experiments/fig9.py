"""Figure 9: factoring the fetch time via FE-BE distance regression.

For each service the paper picks one back-end data center (Bing:
Virginia; Google: Lenoir, North Carolina), takes the front-end servers
geographically closest to it, and regresses low-client-RTT ``Tdynamic``
(~ ``Tfetch``) on the FE-BE distance.  The intercept is the back-end
computation time (~260 ms Bing vs ~34 ms Google); the slopes — the
network's per-mile contribution — are similar for the two services.

The runner places one co-located (campus-RTT) probe client next to each
qualifying FE, queries it repeatedly, and fits the regression with
:mod:`repro.core.factoring`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.content.keywords import Keyword
from repro.core.factoring import (
    DistancePoint,
    FetchFactoring,
    build_distance_points,
    build_sample_pairs,
    factor_fetch_time,
)
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
    colocated_vantage_point,
)
from repro.measure.emulator import QueryEmulator
from repro.sim import units
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario
from repro.testbed.sites import METROS

#: Back-end targets matching the paper's choices.
PAPER_TARGET_BE = {
    Scenario.BING: "boydton-va",       # "the Bing data center in Virginia"
    Scenario.GOOGLE: "lenoir-nc",      # "the Lenoir, North Carolina DC"
}

FIG9_KEYWORD = Keyword(text="distance regression probe", popularity=0.5,
                       complexity=0.5)


@dataclass
class Fig9ServiceResult:
    """One service's regression (one panel of Figure 9)."""

    service: str
    backend_name: str
    factoring: FetchFactoring

    @property
    def intercept_ms(self) -> float:
        return units.seconds_to_ms(self.factoring.tproc_estimate)

    @property
    def slope_ms_per_mile(self) -> float:
        return self.factoring.slope_ms_per_mile


@dataclass
class Fig9Result:
    """Both panels plus the cross-service claims."""

    panels: Dict[str, Fig9ServiceResult]

    def intercept_ratio(self) -> float:
        """Bing-like intercept over google-like intercept (paper: ~7.6x)."""
        bing = self.panels[Scenario.BING].factoring.tproc_estimate
        google = self.panels[Scenario.GOOGLE].factoring.tproc_estimate
        if google <= 0:
            return float("inf")
        return bing / google

    def slopes_similar(self, tolerance: float = 0.5) -> bool:
        """Whether the two slopes agree within ``tolerance`` (fractional)."""
        slopes = [panel.slope_ms_per_mile for panel in self.panels.values()]
        low, high = min(slopes), max(slopes)
        if low <= 0:
            return False
        return (high - low) / high <= tolerance


def run_fig9(scale: Optional[ExperimentScale] = None, *,
             max_distance_miles: float = 800.0,
             services: Tuple[str, ...] = (Scenario.GOOGLE, Scenario.BING)
             ) -> Fig9Result:
    """Run both regressions and return the Figure-9 result."""
    scale = scale or ExperimentScale.small()
    panels = {}
    for service_name in services:
        panels[service_name] = _run_service_panel(
            scale, service_name, PAPER_TARGET_BE[service_name],
            max_distance_miles)
    return Fig9Result(panels=panels)


def _run_service_panel(scale: ExperimentScale, service_name: str,
                       backend_site: str,
                       max_distance_miles: float) -> Fig9ServiceResult:
    scenario = build_scenario(scale)
    service = scenario.service(service_name)
    backend = _backend_by_site(service, backend_site)

    # Qualifying FEs: those whose nearest BE is the target, within range.
    frontends = []
    for frontend in service.frontends:
        if service.backend_for_frontend(frontend) is not backend:
            continue
        distance = frontend.location.distance_miles(backend.location)
        if distance <= max_distance_miles:
            frontends.append((frontend, distance))
    if len(frontends) < 2:
        raise RuntimeError(
            "only %d front-ends map to backend %r within %.0f miles"
            % (len(frontends), backend_site, max_distance_miles))

    calibration = calibrate_service(scenario, service_name,
                                    [fe for fe, _ in frontends])

    sessions_by_fe = {fe.node.name: [] for fe, _ in frontends}
    for index, (frontend, _) in enumerate(frontends):
        metro = _metro_near(frontend.location)
        vp = colocated_vantage_point(scenario, metro,
                                     "fig9-%s-%d" % (service_name, index))
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp)

        def driver(emulator=emulator, frontend=frontend):
            for _ in range(scale.fig9_repeats):
                session = emulator.submit(service_name, frontend,
                                          FIG9_KEYWORD)
                sessions_by_fe[frontend.node.name].append(session)
                yield Sleep(scale.interval)

        spawn(scenario.sim, driver())
    scenario.sim.run()

    metrics_by_fe = {
        fe_name: extract_all_calibrated(sessions, calibration)
        for fe_name, sessions in sessions_by_fe.items()}
    distances = {fe.node.name: distance for fe, distance in frontends}
    points = build_distance_points(metrics_by_fe, distances,
                                   max_client_rtt=units.ms(40))
    samples = build_sample_pairs(metrics_by_fe, distances,
                                 max_client_rtt=units.ms(40))
    factoring = factor_fetch_time(points, sample_pairs=samples)
    return Fig9ServiceResult(service=service_name,
                             backend_name=backend.node.name,
                             factoring=factoring)


def _backend_by_site(service, site_name: str):
    for backend in service.backends:
        if site_name in backend.node.name:
            return backend
    raise KeyError("no backend site %r in %s"
                   % (site_name, service.profile.name))


def _metro_near(location):
    best, best_distance = None, float("inf")
    for metro in METROS:
        distance = metro.location.distance_miles(location)
        if distance < best_distance:
            best, best_distance = metro, distance
    return best
