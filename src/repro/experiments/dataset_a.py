"""The Dataset-A campaign shared by Figures 6, 7 and 8.

One run — every vantage point querying its default front-end server of
each service — feeds three of the paper's figures:

* **Figure 6** — CDF of client-to-default-FE RTT per service;
* **Figure 7** — scatter of per-query Tstatic / Tdynamic against RTT;
* **Figure 8** — per-node box plots of the overall response delay.

Runners for the individual figures are thin views over
:class:`DatasetAExperiment`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.analysis.stats import BoxStats, box_stats, cdf_points, fraction_below
from repro.content.keywords import KeywordCatalog
from repro.core.compare import ComparisonReport, compare_services
from repro.core.metrics import QueryMetrics, extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_frontends_used,
)
from repro.measure.driver import run_dataset_a
from repro.sim import units
from repro.testbed.scenario import Scenario


@dataclass
class DatasetAExperiment:
    """Results of one Dataset-A campaign, with per-figure views."""

    scale: ExperimentScale
    metrics: Dict[str, List[QueryMetrics]]
    default_rtts: Dict[str, List[float]]

    # ------------------------------------------------------------------
    # Figure 6
    # ------------------------------------------------------------------
    def rtt_cdf(self, service: str) -> List[Tuple[float, float]]:
        """The Figure-6 CDF for one service."""
        return cdf_points(self.default_rtts[service])

    def fraction_under(self, service: str, threshold: float) -> float:
        """Fraction of nodes with default-FE RTT under ``threshold``."""
        return fraction_below(self.default_rtts[service], threshold)

    # ------------------------------------------------------------------
    # Figure 7
    # ------------------------------------------------------------------
    def scatter(self, service: str, which: str
                ) -> List[Tuple[float, float]]:
        """(rtt, metric) scatter for Figure 7 ('tstatic'/'tdynamic')."""
        return [(m.rtt, getattr(m, which)) for m in self.metrics[service]]

    # ------------------------------------------------------------------
    # Figure 8
    # ------------------------------------------------------------------
    def overall_delay_boxes(self, service: str
                            ) -> List[Tuple[str, BoxStats]]:
        """Per-vantage-point box stats of the overall delay."""
        by_vp: Dict[str, List[float]] = {}
        for metric in self.metrics[service]:
            by_vp.setdefault(metric.session.vp_name, []).append(
                metric.overall_delay)
        return [(vp, box_stats(values))
                for vp, values in sorted(by_vp.items())]

    # ------------------------------------------------------------------
    def comparison(self) -> ComparisonReport:
        """The Section-4.2 comparison across both services."""
        return compare_services(self.metrics)


def run_dataset_a_experiment(scale: Optional[ExperimentScale] = None, *,
                             shards: Optional[int] = None,
                             processes: int = 0) -> DatasetAExperiment:
    """Run the campaign once and wrap it for the three figures.

    ``shards`` > 1 runs the campaign through
    :func:`repro.parallel.run_dataset_a_sharded`; ``None`` reads the
    ``REPRO_CAMPAIGN_SHARDS`` environment variable (default 1), which
    is how ``python -m repro --shards N`` and the benchmark harness
    plumb the setting through without touching every runner signature.

    Sharding requires per-query keyed service draws
    (``ScenarioConfig(keyed_service_draws=True)``), so the sharded run
    is a *different realization* of the same distributions than the
    serial default — statistically identical, not bit-identical.  What
    IS bit-identical is sharded-vs-serial within the keyed mode: the
    same keyed scenario run with any shard/process count produces the
    same sessions (see ``docs/PERFORMANCE.md``).  Calibration always
    runs in-process: its content analysis is deterministic for a fixed
    config, so the boundary table is the same either way.
    """
    scale = scale or ExperimentScale.small()
    if shards is None:
        shards = int(os.environ.get("REPRO_CAMPAIGN_SHARDS", "1"))
    keywords = KeywordCatalog(seed=scale.seed).figure3_set()
    if shards > 1:
        from repro.parallel import run_dataset_a_sharded
        scenario = build_scenario(scale, keyed_service_draws=True)
        dataset = run_dataset_a_sharded(
            scenario, keywords, repeats=scale.repeats,
            interval=scale.interval, shards=shards, processes=processes)
    else:
        scenario = build_scenario(scale)
        dataset = run_dataset_a(scenario, keywords, repeats=scale.repeats,
                                interval=scale.interval)

    metrics: Dict[str, List[QueryMetrics]] = {}
    default_rtts: Dict[str, List[float]] = {}
    for service_name in scenario.services:
        sessions = dataset.for_service(service_name)
        calibration = calibrate_frontends_used(scenario, service_name,
                                               sessions)
        metrics[service_name] = extract_all_calibrated(sessions,
                                                       calibration)
        default_rtts[service_name] = [
            rtt for (vp, svc), (fe, rtt) in dataset.default_fe.items()
            if svc == service_name]
        # Calibration just located the static/dynamic boundary: complete
        # the traced session spans with t4/t5 and the static/dynamic
        # phases (no-op when tracing is off).
        obs.annotate_boundaries(metrics[service_name])
    return DatasetAExperiment(scale=scale, metrics=metrics,
                              default_rtts=default_rtts)


# ---------------------------------------------------------------------------
# thin per-figure runners
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """RTT CDFs and the <20 ms fractions the paper quotes."""

    cdfs: Dict[str, List[Tuple[float, float]]]
    under_20ms: Dict[str, float]


def run_fig6(scale: Optional[ExperimentScale] = None,
             experiment: Optional[DatasetAExperiment] = None) -> Fig6Result:
    """Figure 6 view (RTT CDFs) over a Dataset-A campaign."""
    experiment = experiment or run_dataset_a_experiment(scale)
    services = sorted(experiment.default_rtts)
    return Fig6Result(
        cdfs={s: experiment.rtt_cdf(s) for s in services},
        under_20ms={s: experiment.fraction_under(s, units.ms(20))
                    for s in services})


@dataclass(frozen=True)
class Fig7Result:
    """Figure-7 scatters plus the paper's qualitative comparison."""

    tstatic: Dict[str, List[Tuple[float, float]]]
    tdynamic: Dict[str, List[Tuple[float, float]]]
    comparison: ComparisonReport


def run_fig7(scale: Optional[ExperimentScale] = None,
             experiment: Optional[DatasetAExperiment] = None) -> Fig7Result:
    """Figure 7 view (metric scatters + comparison)."""
    experiment = experiment or run_dataset_a_experiment(scale)
    services = sorted(experiment.metrics)
    return Fig7Result(
        tstatic={s: experiment.scatter(s, "tstatic") for s in services},
        tdynamic={s: experiment.scatter(s, "tdynamic") for s in services},
        comparison=experiment.comparison())


@dataclass(frozen=True)
class Fig8Result:
    """Per-node overall-delay box stats per service."""

    boxes: Dict[str, List[Tuple[str, BoxStats]]]
    comparison: ComparisonReport


def run_fig8(scale: Optional[ExperimentScale] = None,
             experiment: Optional[DatasetAExperiment] = None) -> Fig8Result:
    """Figure 8 view (per-node overall-delay boxes)."""
    experiment = experiment or run_dataset_a_experiment(scale)
    services = sorted(experiment.metrics)
    return Fig8Result(
        boxes={s: experiment.overall_delay_boxes(s) for s in services},
        comparison=experiment.comparison())
