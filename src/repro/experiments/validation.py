"""Model validation: the Section-2 bounds against ground truth.

The paper asserts (Eq. 1) that the unobservable fetch time satisfies
``Tdelta <= Tfetch <= Tdynamic``, and uses ``Tdynamic`` at low RTT as a
proxy for ``Tfetch`` (Section 5).  The simulation records the true
fetch time inside every front-end, so this experiment can quantify both
claims: the bound-violation rate (expected ~0) and the proxy's error as
a function of client RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.stats import median
from repro.content.keywords import Keyword
from repro.core.bounds import BoundsReport, check_bounds
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.driver import run_dataset_b
from repro.testbed.scenario import Scenario

VALIDATION_KEYWORD = Keyword(text="bounds validation probe",
                             popularity=0.5, complexity=0.5)


@dataclass
class ValidationResult:
    """Bound validity and proxy accuracy for one service."""

    service: str
    bounds: BoundsReport
    #: (rtt, |Tdynamic - Tfetch| / Tfetch) relative proxy errors.
    proxy_errors: List[Tuple[float, float]]

    @property
    def bound_violation_rate(self) -> float:
        return 1.0 - self.bounds.both_fraction

    def proxy_error_below_rtt(self, rtt_cutoff: float) -> float:
        """Median relative proxy error among low-RTT clients."""
        errors = [err for rtt, err in self.proxy_errors
                  if rtt <= rtt_cutoff]
        if not errors:
            raise ValueError("no samples below RTT %.3f" % rtt_cutoff)
        return median(errors)


def run_validation(scale: Optional[ExperimentScale] = None, *,
                   service_name: str = Scenario.GOOGLE
                   ) -> ValidationResult:
    """Run a Dataset-B campaign and check Eq. 1 plus the proxy error."""
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale)
    service = scenario.service(service_name)
    frontend = service.frontends[0]
    calibration = calibrate_service(scenario, service_name, [frontend])
    dataset = run_dataset_b(scenario, service_name, frontend,
                            VALIDATION_KEYWORD, repeats=scale.repeats,
                            interval=scale.interval)
    metrics = extract_all_calibrated(dataset.sessions, calibration)
    fetch_log = service.merged_fetch_log()
    bounds = check_bounds(metrics, fetch_log)

    proxy_errors = []
    for metric in metrics:
        record = fetch_log.get(metric.session.query_id)
        if record is None or record.tfetch is None or record.tfetch <= 0:
            continue
        error = abs(metric.tdynamic - record.tfetch) / record.tfetch
        proxy_errors.append((metric.rtt, error))
    return ValidationResult(service=service_name, bounds=bounds,
                            proxy_errors=proxy_errors)
