"""Experiment runners: one per figure/section of the paper.

==============  ==========================================================
Paper item      Runner
==============  ==========================================================
Figure 3        :func:`repro.experiments.fig3.run_fig3`
Figure 4        :func:`repro.experiments.fig4.run_fig4`
Figure 5        :func:`repro.experiments.fig5.run_fig5`
Figure 6        :func:`repro.experiments.dataset_a.run_fig6`
Figure 7        :func:`repro.experiments.dataset_a.run_fig7`
Figure 8        :func:`repro.experiments.dataset_a.run_fig8`
Figure 9        :func:`repro.experiments.fig9.run_fig9`
Section 3       :func:`repro.experiments.caching.run_caching_experiment`
Section 2 Eq.1  :func:`repro.experiments.validation.run_validation`
Section 6       :func:`repro.experiments.interactive.run_interactive`
Ablations       :mod:`repro.experiments.ablation`
==============  ==========================================================
"""

from repro.experiments.ablation import (
    run_cache_ablation,
    run_idle_reset_ablation,
    run_loss_ablation,
    run_placement_ablation,
    run_split_tcp_ablation,
)
from repro.experiments.cache_lab import run_cache_lab
from repro.experiments.caching import run_caching_experiment
from repro.experiments.common import ExperimentScale, build_scenario
from repro.experiments.dataset_a import (
    run_dataset_a_experiment,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.fig3 import run_fig3
from repro.experiments.keyword_effects import run_keyword_effects
from repro.experiments.load_sensitivity import run_load_sensitivity
from repro.experiments.residential import run_residential
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig9 import run_fig9
from repro.experiments.interactive import run_interactive
from repro.experiments.validation import run_validation
from repro.experiments.whatif import run_whatif

__all__ = [
    "ExperimentScale",
    "build_scenario",
    "run_cache_ablation",
    "run_cache_lab",
    "run_caching_experiment",
    "run_dataset_a_experiment",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_idle_reset_ablation",
    "run_interactive",
    "run_keyword_effects",
    "run_load_sensitivity",
    "run_loss_ablation",
    "run_placement_ablation",
    "run_residential",
    "run_split_tcp_ablation",
    "run_validation",
    "run_whatif",
]
