"""Section 6: the interactive "search as you type" feature.

The paper's preliminary finding: with interactive search, every letter
typed triggers a *separate query on a new TCP connection*, so each
delivery still fits the basic model; back-end processing is likely
cheaper for the later queries because successive prefixes are highly
correlated.

The runner emulates a user typing a phrase letter by letter: one query
per prefix, each on a fresh connection, with the back-end giving
correlated follow-up prefixes a processing discount (rising effective
popularity).  It verifies that every per-letter session still satisfies
the model's timeline and bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.content.keywords import Keyword
from repro.core.bounds import BoundsReport, check_bounds
from repro.core.metrics import QueryMetrics, extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.emulator import QueryEmulator
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario

#: Seconds between keystrokes (a fast typist).
KEYSTROKE_INTERVAL = 0.180


def prefix_keywords(phrase: str, *, base_popularity: float = 0.3,
                    correlation_discount: float = 0.6) -> List[Keyword]:
    """One keyword per typed prefix of ``phrase``.

    Later prefixes get higher effective popularity: the back-end has
    just computed a highly correlated query, so its caches are hot —
    the mechanism the paper hypothesises for reduced processing times.
    """
    prefixes = []
    words_typed = ""
    for index, char in enumerate(phrase):
        words_typed += char
        if char == " ":
            continue
        progress = index / max(1, len(phrase) - 1)
        popularity = min(1.0, base_popularity
                         + correlation_discount * progress)
        prefixes.append(Keyword(text=words_typed,
                                popularity=popularity,
                                complexity=0.3,
                                granularity=max(1, len(words_typed.split()))))
    return prefixes


@dataclass
class InteractiveResult:
    """Per-keystroke metrics of one interactive search session."""

    service: str
    phrase: str
    metrics: List[QueryMetrics] = field(default_factory=list)
    bounds: Optional[BoundsReport] = None

    @property
    def queries(self) -> int:
        return len(self.metrics)

    def distinct_connections(self) -> int:
        return len({m.session.local_port for m in self.metrics})

    def tdynamic_trend(self) -> float:
        """Late-half minus early-half median Tdynamic (negative = the
        correlated follow-ups got faster, the paper's hypothesis)."""
        values = [m.tdynamic for m in self.metrics]
        half = len(values) // 2
        early = sorted(values[:half])[half // 2]
        late = sorted(values[half:])[(len(values) - half) // 2]
        return late - early


def run_interactive(scale: Optional[ExperimentScale] = None, *,
                    service_name: str = Scenario.GOOGLE,
                    phrase: str = "dynamic content distribution"
                    ) -> InteractiveResult:
    """Emulate typing ``phrase`` and measure every per-letter query."""
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale)
    service = scenario.service(service_name)
    vp = scenario.vantage_points[0]
    frontend = scenario.default_frontend(service_name, vp)
    scenario.link_client_to_frontend(vp, frontend, service)
    calibration = calibrate_service(scenario, service_name, [frontend], vp)

    keywords = prefix_keywords(phrase)
    emulator = QueryEmulator(scenario, vp)
    sessions = []

    def typist():
        for keyword in keywords:
            sessions.append(emulator.submit(service_name, frontend,
                                            keyword))
            yield Sleep(KEYSTROKE_INTERVAL)

    spawn(scenario.sim, typist())
    scenario.sim.run()

    metrics = extract_all_calibrated(sessions, calibration)
    result = InteractiveResult(service=service_name, phrase=phrase,
                               metrics=metrics)
    result.bounds = check_bounds(metrics, service.merged_fetch_log())
    return result
