"""Figure 3: effect of keyword type on Tstatic and Tdynamic.

The paper submits 500 queries for each of four keywords of different
types (popularity / granularity / complexity) from a fixed client to the
Bing service and plots the moving median (window 10) of Tstatic and
Tdynamic in chronological order.  The observation: **Tdynamic separates
clearly by keyword type while Tstatic does not** — back-end processing
cost is query-dependent, front-end static delivery is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.stats import moving_median, summary
from repro.content.keywords import Keyword, KeywordCatalog
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.emulator import QueryEmulator
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario


@dataclass
class KeywordSeries:
    """Per-keyword chronological metric series (seconds)."""

    keyword: Keyword
    tstatic: List[float] = field(default_factory=list)
    tdynamic: List[float] = field(default_factory=list)

    def smoothed(self, window: int = 10) -> "KeywordSeries":
        """The paper's moving-median view."""
        out = KeywordSeries(self.keyword)
        out.tstatic = moving_median(self.tstatic, window)
        out.tdynamic = moving_median(self.tdynamic, window)
        return out


@dataclass
class Fig3Result:
    """Data behind Figure 3 (left panel Tstatic, right Tdynamic)."""

    service: str
    series: Dict[str, KeywordSeries]

    def tdynamic_medians(self) -> Dict[str, float]:
        return {text: summary(s.tdynamic)["median"]
                for text, s in self.series.items()}

    def tstatic_medians(self) -> Dict[str, float]:
        return {text: summary(s.tstatic)["median"]
                for text, s in self.series.items()}

    def separation_ratio(self) -> float:
        """How much more keyword type moves Tdynamic than Tstatic.

        Ratio of the across-keyword spread (max - min of medians) for
        Tdynamic versus Tstatic.  The paper's Figure 3 shows this >> 1.
        """
        dyn = self.tdynamic_medians().values()
        sta = self.tstatic_medians().values()
        dyn_spread = max(dyn) - min(dyn)
        sta_spread = max(sta) - min(sta)
        if sta_spread <= 0:
            return float("inf")
        return dyn_spread / sta_spread


def run_fig3(scale: ExperimentScale = None, *,
             service_name: str = Scenario.BING) -> Fig3Result:
    """Run the Figure-3 experiment and return its data series."""
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale)
    keywords = KeywordCatalog(seed=scale.seed).figure3_set()

    vp = scenario.vantage_points[0]
    frontend = scenario.default_frontend(service_name, vp)
    service = scenario.service(service_name)
    scenario.link_client_to_frontend(vp, frontend, service)
    service.register_keywords(keywords)
    calibration = calibrate_service(scenario, service_name, [frontend], vp)

    emulator = QueryEmulator(scenario, vp)
    sessions_by_keyword = {k.text: [] for k in keywords}

    def driver():
        for _ in range(scale.fig3_samples):
            for keyword in keywords:
                session = emulator.submit(service_name, frontend, keyword)
                sessions_by_keyword[keyword.text].append(session)
            yield Sleep(scale.interval)

    spawn(scenario.sim, driver())
    scenario.sim.run()

    series = {}
    for keyword in keywords:
        metrics = extract_all_calibrated(sessions_by_keyword[keyword.text],
                                         calibration)
        entry = KeywordSeries(keyword)
        for m in metrics:
            entry.tstatic.append(m.tstatic)
            entry.tdynamic.append(m.tdynamic)
        series[keyword.text] = entry
    return Fig3Result(service=service_name, series=series)
