"""Front-end load sensitivity (Section 4.2's speculation, made testable).

The paper *speculates* why Bing's Tstatic is higher and more variable:
"may be due to the higher and more variable loads at the Akamai FE
servers, as they are shared with a number of other services; while
Google FE servers ... are likely dedicated".  The simulator implements
that mechanism (``FrontEndLoadModel.per_concurrent_delay``), so this
experiment can exhibit it directly: a fixed probe client measures
Tstatic against one FE while a crowd of background clients sweeps the
offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.stats import median, percentile
from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
    colocated_vantage_point,
)
from repro.measure.emulator import QueryEmulator
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario
from repro.testbed.sites import METROS

PROBE_KEYWORD = Keyword(text="load probe query", popularity=0.5,
                        complexity=0.5)
BACKGROUND_KEYWORD = Keyword(text="background traffic query",
                             popularity=0.5, complexity=0.5)


@dataclass
class LoadPoint:
    """One offered-load level."""

    background_clients: int
    peak_concurrency: int
    tstatic_median: float
    tstatic_p90: float
    tdynamic_median: float


@dataclass
class LoadSensitivityResult:
    """Tstatic as a function of FE load."""

    service: str
    fe_name: str
    points: List[LoadPoint] = field(default_factory=list)

    def tstatic_inflation(self) -> float:
        """Median Tstatic increase from the lightest to heaviest load."""
        return (self.points[-1].tstatic_median
                - self.points[0].tstatic_median)

    def variability_grows(self) -> bool:
        """p90-median spread widens with load."""
        spreads = [p.tstatic_p90 - p.tstatic_median
                   for p in self.points]
        return spreads[-1] > spreads[0]


def run_load_sensitivity(scale: Optional[ExperimentScale] = None, *,
                         service_name: str = Scenario.BING,
                         background_levels: Sequence[int] = (0, 8, 18),
                         probe_queries: int = 36,
                         background_interval: float = 0.6
                         ) -> LoadSensitivityResult:
    """Sweep background load on one FE; measure a co-located probe."""
    scale = scale or ExperimentScale.small()
    result = LoadSensitivityResult(service=service_name, fe_name="")
    for level in background_levels:
        point, fe_name = _run_level(scale, service_name, level,
                                    probe_queries, background_interval)
        result.points.append(point)
        result.fe_name = fe_name
    return result


def _run_level(scale: ExperimentScale, service_name: str,
               background_clients: int, probe_queries: int,
               background_interval: float):
    scenario = build_scenario(scale)
    service = scenario.service(service_name)
    frontend = service.frontends[0]
    calibration = calibrate_service(scenario, service_name, [frontend])

    metro = min(METROS, key=lambda m: m.location.distance_miles(
        frontend.location))

    # Background crowd: sustained queries at a fixed interval.
    for index in range(background_clients):
        vp = colocated_vantage_point(scenario, metro, "bg-%d" % index)
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp)

        def pump(emulator=emulator, index=index):
            yield Sleep(index * background_interval / max(
                1, background_clients))
            for _ in range(probe_queries * 2):
                emulator.submit(service_name, frontend,
                                BACKGROUND_KEYWORD)
                yield Sleep(background_interval)

        spawn(scenario.sim, pump())

    # The probe client.
    probe = colocated_vantage_point(scenario, metro, "probe")
    scenario.link_client_to_frontend(probe, frontend, service)
    probe_emulator = QueryEmulator(scenario, probe)
    probe_sessions = []

    def probe_loop():
        yield Sleep(background_interval * 2)  # let the crowd ramp up
        for _ in range(probe_queries):
            probe_sessions.append(probe_emulator.submit(
                service_name, frontend, PROBE_KEYWORD))
            yield Sleep(background_interval * 2)

    spawn(scenario.sim, probe_loop())
    scenario.sim.run()

    metrics = extract_all_calibrated(probe_sessions, calibration)
    if not metrics:
        raise RuntimeError("probe produced no metrics at load %d"
                           % background_clients)
    tstatics = [m.tstatic for m in metrics]
    point = LoadPoint(
        background_clients=background_clients,
        peak_concurrency=frontend.peak_concurrency,
        tstatic_median=median(tstatics),
        tstatic_p90=percentile(tstatics, 90),
        tdynamic_median=median([m.tdynamic for m in metrics]))
    return point, frontend.node.name


def render_load_sensitivity(result: LoadSensitivityResult) -> str:
    """Text report of the load sweep."""
    from repro.sim import units

    lines = ["FE load sensitivity (%s @ %s)"
             % (result.service, result.fe_name)]
    lines.append("  %-12s %8s %14s %12s %14s"
                 % ("background", "peak", "Tstatic med", "Tstatic p90",
                    "Tdynamic med"))
    for point in result.points:
        lines.append("  %-12d %8d %12.1fms %10.1fms %12.1fms"
                     % (point.background_clients, point.peak_concurrency,
                        units.seconds_to_ms(point.tstatic_median),
                        units.seconds_to_ms(point.tstatic_p90),
                        units.seconds_to_ms(point.tdynamic_median)))
    lines.append("  Tstatic inflation under load: %.1f ms; "
                 "variability grows: %s"
                 % (units.seconds_to_ms(result.tstatic_inflation()),
                    result.variability_grows()))
    return "\n".join(lines)
