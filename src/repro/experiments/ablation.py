"""Ablation experiments for the design choices DESIGN.md calls out.

1. **Split TCP vs direct-to-back-end** — the FE's reason to exist
   (paper Sec. 1/2; cf. Pathak et al. [9]).
2. **FE static caching on/off** — the FE's first role.
3. **FE placement density** — the paper's placement-vs-fetch-time
   trade-off: beyond the RTT threshold, denser placement stops helping.
4. **Last-hop loss sweep** — the paper's Sec. 6 discussion: split TCP's
   advantage grows in lossy (e.g. wireless) access networks.

All ablations compare *user-perceived* times (connection open to last
byte, or time-to-first-byte) from the application viewpoint, so they
need no boundary calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.stats import median
from repro.content.keywords import Keyword
from repro.experiments.common import ExperimentScale, build_scenario
from repro.http.client import HttpFetch, RequestHooks
from repro.http.message import HttpRequest, build_query_path
from repro.measure.emulator import QueryEmulator
from repro.net.address import Endpoint
from repro.services.backend import BACKEND_PORT
from repro.sim import units
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.testbed.vantage import VantagePoint

ABLATION_KEYWORD = Keyword(text="ablation probe query", popularity=0.5,
                           complexity=0.5)


# ---------------------------------------------------------------------------
# 1. split TCP vs direct-to-BE
# ---------------------------------------------------------------------------
@dataclass
class SplitTcpAblationResult:
    """Median response times with and without the front-end proxy."""

    service: str
    split_median: float
    direct_median: float
    samples: int

    @property
    def speedup(self) -> float:
        """direct / split (> 1 means split TCP wins)."""
        if self.split_median <= 0:
            return float("inf")
        return self.direct_median / self.split_median


def run_split_tcp_ablation(scale: Optional[ExperimentScale] = None, *,
                           service_name: str = Scenario.GOOGLE,
                           loss_rate: float = 0.0
                           ) -> SplitTcpAblationResult:
    """Same queries through the FE versus straight to the back-end."""
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale, client_loss_rate=loss_rate)
    service = scenario.service(service_name)
    vp = _split_friendly_vantage_point(scenario, service_name)
    frontend = scenario.default_frontend(service_name, vp)
    scenario.link_client_to_frontend(vp, frontend, service)
    backend = service.backend_for_frontend(frontend)
    _link_client_to_backend(scenario, vp, backend)
    service.register_keywords([ABLATION_KEYWORD])

    emulator = QueryEmulator(scenario, vp)
    split_sessions = []
    direct_durations: List[float] = []

    def driver():
        for index in range(scale.repeats):
            split_sessions.append(emulator.submit(
                service_name, frontend, ABLATION_KEYWORD))
            yield Sleep(scale.interval)
            direct_durations.append((yield _direct_query(
                scenario, vp, backend, index)))
            yield Sleep(scale.interval)

    spawn(scenario.sim, driver())
    scenario.sim.run()

    split_durations = [s.duration for s in split_sessions if s.complete]
    direct_durations = [d for d in direct_durations if d is not None]
    if not split_durations or not direct_durations:
        raise RuntimeError("ablation produced no complete samples")
    return SplitTcpAblationResult(
        service=service_name,
        split_median=median(split_durations),
        direct_median=median(direct_durations),
        samples=min(len(split_durations), len(direct_durations)))


def _split_friendly_vantage_point(scenario: Scenario,
                                  service_name: str) -> VantagePoint:
    """A controlled client where split TCP's textbook win shows.

    Split TCP pays off when the client sits next to an FE but far from
    every back-end (the FE terminates the short leg and runs the long
    slow-start-free leg itself).  Co-locate a probe client with the FE
    whose back-end is farthest — e.g. an Asian/Oceanian edge site
    fetching from a US data center.
    """
    from repro.experiments.common import colocated_vantage_point
    from repro.testbed.sites import METROS

    service = scenario.service(service_name)
    frontend = max(service.frontends,
                   key=lambda fe: fe.location.distance_miles(
                       service.backend_for_frontend(fe).location))
    metro = min(METROS, key=lambda m: m.location.distance_miles(
        frontend.location))
    return colocated_vantage_point(scenario, metro, "split-ablation")


def _link_client_to_backend(scenario: Scenario, vp: VantagePoint,
                            backend) -> None:
    key = (vp.name, backend.node.name)
    if key in scenario._links_built:
        return
    delay = vp.one_way_delay_to(backend.location, None)
    scenario.topology.connect(vp.name, backend.node.name, delay=delay,
                              bandwidth=scenario.config.client_bandwidth,
                              loss_rate=scenario.config.client_loss_rate)
    scenario._links_built.add(key)


def _direct_query(scenario: Scenario, vp: VantagePoint, backend,
                  index: int):
    """Sub-process: one direct-to-BE fetch; returns its duration."""
    from repro.sim.process import Signal, WaitEvent

    start = scenario.sim.now
    finished = Signal("direct-query")
    path = build_query_path("/search", {
        "q": ABLATION_KEYWORD.text,
        "id": "direct-%s-%04d" % (vp.name, index)})
    hooks = RequestHooks(
        on_complete=lambda response: finished.fire(scenario.sim.now),
        on_failure=lambda message: finished.fire(None))
    HttpFetch(scenario.client_host(vp),
              Endpoint(backend.node.name, BACKEND_PORT),
              HttpRequest(path=path, headers={"X-Full-Page": "1"}),
              hooks)
    end_time = yield WaitEvent(finished, timeout=120.0)
    if end_time is None:
        return None
    return end_time - start


# ---------------------------------------------------------------------------
# 2. FE static caching on/off
# ---------------------------------------------------------------------------
@dataclass
class CacheAblationResult:
    """Time-to-first-byte and overall delay with/without the FE cache."""

    service: str
    ttfb_cached: float
    ttfb_uncached: float
    overall_cached: float
    overall_uncached: float

    @property
    def ttfb_improvement(self) -> float:
        """Seconds of first-byte latency the static cache saves."""
        return self.ttfb_uncached - self.ttfb_cached


def run_cache_ablation(scale: Optional[ExperimentScale] = None, *,
                       service_name: str = Scenario.BING
                       ) -> CacheAblationResult:
    """Compare TTFB and overall delay with the FE cache on vs off."""
    scale = scale or ExperimentScale.small()
    medians = {}
    for cached in (True, False):
        scenario = build_scenario(scale, cache_static=cached)
        service = scenario.service(service_name)
        vp = scenario.vantage_points[0]
        frontend = scenario.default_frontend(service_name, vp)
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp)
        sessions = []

        def driver():
            for _ in range(scale.repeats):
                sessions.append(emulator.submit(service_name, frontend,
                                                ABLATION_KEYWORD))
                yield Sleep(scale.interval)

        spawn(scenario.sim, driver())
        scenario.sim.run()
        complete = [s for s in sessions if s.complete]
        if not complete:
            raise RuntimeError("no complete sessions (cached=%s)" % cached)
        ttfbs = [s.inbound_data_events()[0].time - s.started_at
                 for s in complete]
        overalls = [s.duration for s in complete]
        medians[cached] = (median(ttfbs), median(overalls))
    return CacheAblationResult(
        service=service_name,
        ttfb_cached=medians[True][0], ttfb_uncached=medians[False][0],
        overall_cached=medians[True][1],
        overall_uncached=medians[False][1])


# ---------------------------------------------------------------------------
# 3. FE placement density
# ---------------------------------------------------------------------------
@dataclass
class PlacementPoint:
    """One coverage level of the placement sweep."""

    coverage: float
    median_rtt: float
    median_overall: float


@dataclass
class PlacementAblationResult:
    """The placement-vs-fetch-time trade-off curve."""

    service: str
    points: List[PlacementPoint] = field(default_factory=list)

    def rtt_gain(self) -> float:
        """RTT reduction from sparsest to densest coverage (seconds)."""
        return self.points[0].median_rtt - self.points[-1].median_rtt

    def overall_gain(self) -> float:
        """Overall-delay reduction over the same sweep (seconds)."""
        return (self.points[0].median_overall
                - self.points[-1].median_overall)


def run_placement_ablation(scale: Optional[ExperimentScale] = None, *,
                           service_name: str = Scenario.BING,
                           coverages: Sequence[float] = (0.3, 0.6, 0.95)
                           ) -> PlacementAblationResult:
    """Sweep FE density; RTT improves but overall delay saturates."""
    scale = scale or ExperimentScale.small()
    result = PlacementAblationResult(service=service_name)
    for coverage in coverages:
        scenario = build_scenario(scale, akamai_coverage=coverage)
        service = scenario.service(service_name)
        rtts, overalls = [], []
        sessions = []
        for vp in scenario.vantage_points[:max(10, scale.vantage_count
                                               // 3)]:
            frontend, rtt = scenario.connect_default(service_name, vp)
            rtts.append(rtt)
            emulator = QueryEmulator(scenario, vp)
            sessions.append(emulator.submit(service_name, frontend,
                                            ABLATION_KEYWORD))
        scenario.sim.run()
        overalls = [s.duration for s in sessions if s.complete]
        result.points.append(PlacementPoint(
            coverage=coverage,
            median_rtt=median(rtts),
            median_overall=median(overalls)))
    return result


# ---------------------------------------------------------------------------
# 4. persistent-connection warmth (RFC 2861 idle reset)
# ---------------------------------------------------------------------------
@dataclass
class IdleResetAblationResult:
    """Fetch times with warm vs idle-resetting FE-BE connections.

    The paper's split-TCP argument rests on the FE's *persistent*
    back-end connection having no slow-start ramp.  2011 Linux defaults
    (RFC 2861) collapse an idle connection's window back to the initial
    window — so a provider that left the default on would lose the
    benefit for sparse query arrivals.  This ablation measures exactly
    that: median ground-truth Tfetch with the idle reset off (warm)
    versus on (cold after every idle gap).
    """

    service: str
    warm_tfetch_median: float
    cold_tfetch_median: float
    samples: int

    @property
    def idle_penalty(self) -> float:
        """Seconds of fetch time the idle reset costs per query."""
        return self.cold_tfetch_median - self.warm_tfetch_median


def run_idle_reset_ablation(scale: Optional[ExperimentScale] = None, *,
                            service_name: str = Scenario.GOOGLE,
                            idle_gap: float = 5.0
                            ) -> IdleResetAblationResult:
    """Sparse queries over Reno FE-BE connections, idle reset on/off."""
    from repro.services.deployment import google_like_profile, \
        bing_akamai_profile
    from repro.tcp.config import TcpConfig

    scale = scale or ExperimentScale.small()
    medians = {}
    samples = 0
    for reset in (False, True):
        backend_tcp = TcpConfig(slow_start_after_idle=reset)
        base = (google_like_profile() if service_name == Scenario.GOOGLE
                else bing_akamai_profile())
        profile = base.with_overrides(backend_window_bytes=None,
                                      backend_tcp=backend_tcp)
        kwargs = ({"google_profile": profile}
                  if service_name == Scenario.GOOGLE
                  else {"bing_profile": profile})
        scenario = Scenario(
            ScenarioConfig(seed=scale.seed,
                           vantage_count=scale.vantage_count), **kwargs)
        service = scenario.service(service_name)
        # The FE farthest from its back-end shows the ramp most clearly.
        frontend = max(service.frontends,
                       key=lambda fe: fe.location.distance_miles(
                           service.backend_for_frontend(fe).location))
        service.register_keywords([ABLATION_KEYWORD])
        from repro.testbed.sites import METROS
        metro = min(METROS, key=lambda m: m.location.distance_miles(
            frontend.location))
        from repro.experiments.common import colocated_vantage_point
        vp = colocated_vantage_point(scenario, metro, "idle-reset")
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp)
        sessions = []

        def driver():
            for _ in range(max(6, scale.repeats)):
                sessions.append(emulator.submit(service_name, frontend,
                                                ABLATION_KEYWORD))
                yield Sleep(idle_gap)

        spawn(scenario.sim, driver())
        scenario.sim.run()
        tfetches = sorted(
            record.tfetch for record in frontend.fetch_log.values()
            if record.tfetch is not None)
        # Skip the very first query: both variants are cold there.
        tfetches = tfetches[1:] if len(tfetches) > 2 else tfetches
        medians[reset] = median(tfetches)
        samples = len(tfetches)
    return IdleResetAblationResult(
        service=service_name,
        warm_tfetch_median=medians[False],
        cold_tfetch_median=medians[True],
        samples=samples)


# ---------------------------------------------------------------------------
# 5. last-hop loss sweep
# ---------------------------------------------------------------------------
@dataclass
class LossSweepPoint:
    """One loss-rate level of the last-hop sweep."""

    loss_rate: float
    split_median: float
    direct_median: float

    @property
    def split_advantage(self) -> float:
        return self.direct_median - self.split_median


@dataclass
class LossAblationResult:
    """Split-TCP benefit as a function of last-hop loss."""

    service: str
    points: List[LossSweepPoint] = field(default_factory=list)

    def advantage_grows_with_loss(self) -> bool:
        advantages = [p.split_advantage for p in self.points]
        return advantages[-1] > advantages[0]


def run_loss_ablation(scale: Optional[ExperimentScale] = None, *,
                      service_name: str = Scenario.GOOGLE,
                      loss_rates: Sequence[float] = (0.0, 0.01, 0.03)
                      ) -> LossAblationResult:
    """Sweep last-hop loss; split TCP's advantage should grow."""
    scale = scale or ExperimentScale.small()
    # Loss recovery times are high-variance; triple the samples.
    scale = scale.with_overrides(repeats=max(scale.repeats * 3, 15))
    result = LossAblationResult(service=service_name)
    for loss in loss_rates:
        ablation = run_split_tcp_ablation(scale, service_name=service_name,
                                          loss_rate=loss)
        result.points.append(LossSweepPoint(
            loss_rate=loss,
            split_median=ablation.split_median,
            direct_median=ablation.direct_median))
    return result
