"""Figure 5: Tstatic, Tdynamic and Tdelta versus client-FE RTT.

The paper's Dataset-B analysis: every vantage point repeatedly queries
one fixed front-end per service; per-node medians of the three metrics
are plotted against the node's RTT to that FE.  Expected shapes:

* ``Tstatic`` — roughly flat in RTT (FE-side effect only);
* ``Tdynamic`` — constant at small RTT (fetch-bound), linear at large
  RTT (delivery-bound);
* ``Tdelta`` — decreasing ~linearly, reaching zero at a threshold RTT
  (50-100 ms for the google-like service, 100-200 ms for the
  bing-akamai-like one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import binned_medians, median
from repro.content.keywords import Keyword
from repro.core.metrics import QueryMetrics, extract_all_calibrated
from repro.core.threshold import (
    RegimeSplit,
    ThresholdEstimate,
    estimate_tdelta_threshold,
    split_tdynamic_regimes,
)
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.driver import run_dataset_b
from repro.testbed.scenario import Scenario

#: The fixed-FE query keyword (the paper used one keyword per run).
FIG5_KEYWORD = Keyword(text="fixed frontend probe", popularity=0.5,
                       complexity=0.5)


@dataclass
class ServiceCurves:
    """Per-node medians against RTT for one service."""

    service: str
    fe_name: str
    #: (rtt, median) scatter points, one per vantage point.
    tstatic: List[Tuple[float, float]] = field(default_factory=list)
    tdynamic: List[Tuple[float, float]] = field(default_factory=list)
    tdelta: List[Tuple[float, float]] = field(default_factory=list)
    threshold: Optional[ThresholdEstimate] = None
    regimes: Optional[RegimeSplit] = None

    def binned(self, which: str, bin_width: float = 0.020):
        points = getattr(self, which)
        return binned_medians([p[0] for p in points],
                              [p[1] for p in points], bin_width)


@dataclass
class Fig5Result:
    """Both services' curves (the paper's three panels x two colors)."""

    curves: Dict[str, ServiceCurves]

    def thresholds_ms(self) -> Dict[str, float]:
        return {name: curve.threshold.threshold_rtt * 1000.0
                for name, curve in self.curves.items()
                if curve.threshold is not None}


def run_fig5(scale: Optional[ExperimentScale] = None, *,
             services: Tuple[str, ...] = (Scenario.GOOGLE, Scenario.BING)
             ) -> Fig5Result:
    """Run the Dataset-B campaign for each service and build the curves."""
    scale = scale or ExperimentScale.small()
    result = Fig5Result(curves={})
    for service_name in services:
        # Independent scenarios keep the campaigns from interfering.
        scenario = build_scenario(scale)
        service = scenario.service(service_name)
        frontend = _representative_frontend(scenario, service_name)
        calibration = calibrate_service(scenario, service_name, [frontend])
        dataset = run_dataset_b(scenario, service_name, frontend,
                                FIG5_KEYWORD, repeats=scale.repeats,
                                interval=scale.interval)
        metrics = extract_all_calibrated(dataset.sessions, calibration)
        result.curves[service_name] = _build_curves(
            service_name, frontend.node.name, metrics)
    return result


def _representative_frontend(scenario: Scenario, service_name: str):
    """A fixed FE with a wide spread of client RTTs (a central-US site)."""
    service = scenario.service(service_name)
    for preferred in ("chicago", "dallas", "washington-dc"):
        for frontend in service.frontends:
            if preferred in frontend.node.name:
                return frontend
    return service.frontends[0]


def _build_curves(service_name: str, fe_name: str,
                  metrics: List[QueryMetrics]) -> ServiceCurves:
    curves = ServiceCurves(service=service_name, fe_name=fe_name)
    by_vp: Dict[str, List[QueryMetrics]] = {}
    for metric in metrics:
        by_vp.setdefault(metric.session.vp_name, []).append(metric)
    for vp_name, group in sorted(by_vp.items()):
        rtt = median([m.rtt for m in group])
        curves.tstatic.append((rtt, median([m.tstatic for m in group])))
        curves.tdynamic.append((rtt, median([m.tdynamic for m in group])))
        curves.tdelta.append((rtt, median([m.tdelta for m in group])))
    rtts = [p[0] for p in curves.tdelta]
    tdeltas = [p[1] for p in curves.tdelta]
    if len(set(rtts)) >= 2:
        curves.threshold = estimate_tdelta_threshold(rtts, tdeltas)
        curves.regimes = split_tdynamic_regimes(
            [p[0] for p in curves.tdynamic],
            [p[1] for p in curves.tdynamic])
    return curves
