"""The cache-policy laboratory: finite FE caches under the microscope.

The paper treats the front-end cache as a black box that always hits
for static content, so the repo's static/dynamic inference had never
met a cache that can actually *miss*.  This experiment makes the FE
cache a laboratory instrument:

* **Sweep** — (policy, capacity, Zipf alpha, tier depth) cells, each
  replaying a skewed keyword stream against one front-end with a finite
  :class:`~repro.cache.CacheTier`, reporting the ground-truth hit rate
  (from the per-tier hit/miss log), the hit rate *inferred from the
  landmark timeline alone*, and the landmark impact (Tstatic/Tdynamic
  medians split by ground-truth hit vs miss).

* **Validation** — ``core.cache_detect`` run against deployments whose
  result-caching behaviour is known from server-side logs: no caching,
  an unbounded result cache, and a result cache too small to admit a
  single response.  The detector's verdict must match the log-derived
  ground truth in every case.

The outside-view hit classifier uses the paper's own Tdelta logic: on
a static-cache hit the static prefix arrives a back-end fetch *before*
the dynamic part (Tdelta large), while on a miss both ride one
full-page response (Tdelta collapses to the dynamic transfer time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import median
from repro.cache import (
    CacheHierarchySpec,
    CacheSpec,
    CacheTier,
    ContentCache,
)
from repro.content.keywords import Keyword
from repro.core.cache_detect import (
    CacheDetectionResult,
    detect_result_caching,
)
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    calibrate_service,
)
from repro.measure.driver import run_single_queries
from repro.sim.randomness import derive_seed
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload.popularity import ZipfPopularity, zipf_universe

#: Outside-view hit classifier: a session whose Tdelta exceeds this is
#: inferred to have had its static prefix served from FE cache (on a
#: miss, static and dynamic share one response and Tdelta collapses to
#: the dynamic-part transfer time, well under this).  Half the
#: google-like back-end's base processing time.
TDELTA_HIT_THRESHOLD = 0.015  # simlint: unit[s]

#: Keyword universe size for the sweep streams.
UNIVERSE_SIZE = 24


@dataclass
class CacheLabPoint:
    """One sweep cell: a (policy, capacity, alpha, depth) campaign."""

    policy: str
    capacity_objects: int
    capacity_bytes: int
    alpha: float
    tier_depth: int
    fill: str
    queries: int
    #: Ground truth from the per-tier hit/miss log.
    fe_hits: int
    regional_hits: int
    origin_fetches: int
    evictions: int
    #: Hit rate inferred from landmark timelines alone (Tdelta test).
    measured_hit_rate: float
    #: Landmark medians split by ground-truth FE verdict (seconds;
    #: None when a side has no samples).
    hit_tstatic: Optional[float]
    miss_tstatic: Optional[float]
    hit_tdynamic: Optional[float]
    miss_tdynamic: Optional[float]

    @property
    def ground_truth_hit_rate(self) -> float:
        """FE-level hit fraction from the server-side log."""
        if self.queries == 0:
            return 0.0
        return self.fe_hits / self.queries

    @property
    def classifier_agrees(self) -> bool:
        """Does the outside-view hit rate track the ground truth
        within 10 points?"""
        return abs(self.measured_hit_rate
                   - self.ground_truth_hit_rate) <= 0.10


@dataclass
class CacheValidationCase:
    """One ``cache_detect`` validation: detector vs server-side logs."""

    name: str
    #: Did the FE actually serve dynamic results from cache?  Derived
    #: from ``result_cache_hits`` in the server log, not from config.
    ground_truth_caching: bool
    result_cache_hits: int
    detection: CacheDetectionResult

    @property
    def detector_correct(self) -> bool:
        return self.detection.caching_detected == self.ground_truth_caching


@dataclass
class CacheLabResult:
    """Everything the cache laboratory measured."""

    service: str
    static_object_bytes: int
    points: List[CacheLabPoint] = field(default_factory=list)
    validations: List[CacheValidationCase] = field(default_factory=list)

    def points_by(self, **attrs) -> List[CacheLabPoint]:
        """Sweep cells matching all given attribute values."""
        out = []
        for point in self.points:
            if all(getattr(point, key) == value
                   for key, value in attrs.items()):
                out.append(point)
        return out

    @property
    def hit_rate_monotone_in_alpha(self) -> bool:
        """Does the measured LRU hit rate rise with Zipf skew?"""
        cells = sorted(self.points_by(policy="lru", tier_depth=1,
                                      capacity_objects=8),
                       key=lambda p: p.alpha)
        rates = [p.ground_truth_hit_rate for p in cells]
        return len(rates) >= 2 and all(a <= b for a, b in
                                       zip(rates, rates[1:]))

    @property
    def all_validations_correct(self) -> bool:
        return all(case.detector_correct for case in self.validations)


def _zipf_stream(universe: Sequence[Keyword], alpha: float, count: int,
                 seed: int, label: str) -> List[Keyword]:
    """A deterministic Zipf-distributed keyword stream."""
    popularity = ZipfPopularity(universe, alpha)
    rng = random.Random(derive_seed(seed, "cache-lab/stream/%s" % label))
    return [popularity.sample(rng) for _ in range(count)]


def _install_tier(frontend, spec: CacheHierarchySpec,
                  seed: int, label: str) -> CacheTier:
    """Swap a fresh cache hierarchy into a front-end between cells.

    The experiment reuses one scenario (deployments are the expensive
    part) and re-equips the probed FE per sweep cell; the hit/miss log
    is cleared with it so each cell's ground truth starts empty.
    """
    # "cache-lab/tier/" keeps this namespace disjoint from the
    # keyword-stream seeds ("cache-lab/stream/"): RNG002 flags the
    # previous "cache-lab/%s" form, which could collide with any
    # label of the shape "stream/<x>".
    tier = CacheTier(spec, name="%s/%s" % (frontend.node.name, label),
                     seed=derive_seed(seed, "cache-lab/tier/%s" % label))
    frontend.cache_spec = spec
    frontend.static_cache = tier
    frontend.static_hit_log.clear()
    return tier


def run_cache_lab(scale: Optional[ExperimentScale] = None, *,
                  service_name: str = Scenario.GOOGLE) -> CacheLabResult:
    """Run the sweep and the detector-validation cases."""
    scale = scale or ExperimentScale.small()
    scenario = Scenario(ScenarioConfig(
        seed=scale.seed, vantage_count=scale.vantage_count))
    service = scenario.service(service_name)
    frontend = service.frontends[0]
    # Calibrate with the degenerate infinite cache installed: the
    # static/dynamic boundary is a property of the page content, not of
    # the cache, and calibration queries must not pollute cell state.
    calibration = calibrate_service(scenario, service_name, [frontend])
    size = len(service.pages.static_content())
    result = CacheLabResult(service=service_name,
                            static_object_bytes=size)

    vp = min(scenario.vantage_points,
             key=lambda v: scenario.client_fe_rtt(v, frontend, service))
    universe = zipf_universe(scale.seed + 13, UNIVERSE_SIZE)
    # Long enough that the steady-state hit rate dominates the cold
    # start (universe 24, capacities 4-16 objects).
    queries = max(80, scale.fig3_samples)

    cells: List[Dict] = []
    for policy in ("lru", "lfu", "fifo", "random"):
        cells.append(dict(policy=policy, objects=8, alpha=0.9, depth=1))
    for objects in (4, 16):
        cells.append(dict(policy="lru", objects=objects, alpha=0.9,
                          depth=1))
    for alpha in (0.6, 1.0, 1.4):
        cells.append(dict(policy="lru", objects=8, alpha=alpha, depth=1))
    for fill in ("lce", "lcd"):
        cells.append(dict(policy="lru", objects=4, alpha=0.9, depth=2,
                          fill=fill))

    for cell in cells:
        result.points.append(_run_cell(
            scenario, service_name, frontend, vp, calibration, universe,
            queries, size, scale.seed, **cell))

    # The detector validations run on the bing-like service: its large
    # back-end processing share gives the clearest same/distinct
    # separation, matching the section-3 caching experiment.
    validation_service = Scenario.BING
    v_frontend = scenario.service(validation_service).frontends[0]
    v_calibration = calibrate_service(scenario, validation_service,
                                      [v_frontend])
    result.validations.extend(_run_validations(
        scenario, validation_service, v_frontend, v_calibration, scale))

    # Leave the scenario the way we found it.
    _install_tier(frontend, CacheHierarchySpec(), scale.seed, "restore")
    _install_tier(v_frontend, CacheHierarchySpec(), scale.seed,
                  "restore-validation")
    return result


def _run_cell(scenario, service_name, frontend, vp, calibration,
              universe, queries, size, seed, *, policy, objects, alpha,
              depth, fill="lce") -> CacheLabPoint:
    label = "%s-c%d-a%.1f-d%d-%s" % (policy, objects, alpha, depth, fill)
    static = CacheSpec(policy, capacity_bytes=objects * size)
    regional = None
    if depth >= 2:
        # The regional tier holds 4x the FE working set.
        regional = CacheSpec(policy, capacity_bytes=4 * objects * size)
    spec = CacheHierarchySpec(static=static, regional=regional,
                              fill=fill)
    tier = _install_tier(frontend, spec, seed, label)

    stream = _zipf_stream(universe, alpha, queries, seed, label)
    sessions = run_single_queries(
        scenario, service_name, frontend,
        [(vp, keyword) for keyword in stream], spacing=0.5)
    metrics = extract_all_calibrated(sessions, calibration)

    hit_levels = [frontend.static_hit_log[s.query_id] for s in sessions]
    fe_hits = sum(1 for level in hit_levels if level == 0)
    regional_hits = sum(1 for level in hit_levels if level == 1)
    inferred_hits = sum(1 for m in metrics
                        if m.tdelta > TDELTA_HIT_THRESHOLD)

    split: Dict[bool, List] = {True: [], False: []}
    for level, metric in zip(hit_levels, metrics):
        split[level >= 0].append(metric)

    def med(samples, attr):
        if not samples:
            return None
        return median([getattr(m, attr) for m in samples])

    return CacheLabPoint(
        policy=policy, capacity_objects=objects,
        capacity_bytes=objects * size, alpha=alpha, tier_depth=depth,
        fill=fill, queries=len(sessions),
        fe_hits=fe_hits, regional_hits=regional_hits,
        origin_fetches=tier.origin_fetches,
        evictions=sum(c.evictions for c in tier.levels),
        measured_hit_rate=(inferred_hits / len(metrics)
                           if metrics else 0.0),
        hit_tstatic=med(split[True], "tstatic"),
        miss_tstatic=med(split[False], "tstatic"),
        hit_tdynamic=med(split[True], "tdynamic"),
        miss_tdynamic=med(split[False], "tdynamic"))


def _run_validations(scenario, service_name, frontend, calibration,
                     scale) -> List[CacheValidationCase]:
    """``cache_detect`` against log-derived ground truth.

    Three deployments: no result caching, an unbounded result cache,
    and a result cache whose capacity cannot admit a single response.
    Ground truth is whether ``result_cache_hits`` moved — what the FE
    *did*, not what it was configured to attempt.
    """
    service = scenario.service(service_name)
    vps = sorted(scenario.vantage_points,
                 key=lambda v: scenario.client_fe_rtt(v, frontend,
                                                      service))
    vps = vps[:max(8, scale.vantage_count // 3)]
    shared = Keyword(text="cache lab shared probe", popularity=0.8,
                     complexity=0.4)
    distinct = zipf_universe(scale.seed + 29, len(vps))

    cases = []
    setups = [
        ("no-result-caching", False, CacheSpec()),
        ("result-cache-unbounded", True, CacheSpec()),
        # One byte of capacity: insertion is attempted and rejected, so
        # the cache *exists* but can never serve — ground truth False.
        ("result-cache-too-small", True,
         CacheSpec("lru", capacity_bytes=1)),
    ]
    for name, cache_results, result_spec in setups:
        _install_tier(frontend, CacheHierarchySpec(result=result_spec),
                      scale.seed, "validate-%s" % name)
        frontend.cache_results = cache_results
        frontend.result_cache = ContentCache(
            result_spec, name="%s/validate-%s" % (frontend.node.name,
                                                  name),
            seed=scale.seed, metric_prefix="fe.result_cache_")
        hits_before = frontend.result_cache_hits

        same = run_single_queries(
            scenario, service_name, frontend,
            [(vp, shared) for vp in vps], spacing=0.5)
        distinct_sessions = run_single_queries(
            scenario, service_name, frontend,
            list(zip(vps, distinct)), spacing=0.5)

        same_metrics = extract_all_calibrated(same, calibration)
        distinct_metrics = extract_all_calibrated(distinct_sessions,
                                                  calibration)
        detection = detect_result_caching(
            [m.tdynamic for m in same_metrics],
            [m.tdynamic for m in distinct_metrics])
        served = frontend.result_cache_hits - hits_before
        cases.append(CacheValidationCase(
            name=name, ground_truth_caching=served > 0,
            result_cache_hits=served, detection=detection))
        frontend.cache_results = False
    # Restore the default (infinite, never-admitting-config) cache.
    frontend.result_cache = ContentCache(
        CacheSpec(), name="%s/result" % frontend.node.name,
        seed=scale.seed, metric_prefix="fe.result_cache_")
    return cases
