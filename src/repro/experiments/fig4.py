"""Figure 4: packet-event timelines at five client-FE RTTs.

The paper plots send/receive events of five clients (RTTs 10.7, 30,
86.6, 160.4 and 243.3 ms) querying one Bing front-end.  At small RTT
the temporal clusters — handshake, static delivery, dynamic delivery —
are clearly visible; "as the RTT increases, the gap between the end of
the second and the beginning of the third clusters decreases, and
eventually the two are lumped together, as predicted exactly by our
model".

The gap is identified the way the paper did it: "correlating with the
application-layer packet payloads" — i.e. the static/dynamic boundary
comes from content analysis (payload capture + boundary calibration),
and the reported gap is ``t5 - t4`` of each timeline.  The raw burst
structure (for the dot-array rendering) uses plain temporal clustering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.boundary import BoundaryCalibration
from repro.analysis.clustering import EventCluster, cluster_by_gap
from repro.content.keywords import Keyword
from repro.core.metrics import QueryMetrics, extract_metrics
from repro.experiments.common import (
    CALIBRATION_KEYWORDS,
    ExperimentScale,
    build_scenario,
)
from repro.measure.emulator import QueryEmulator
from repro.measure.session import QuerySession
from repro.sim import units
from repro.testbed.scenario import Scenario
from repro.testbed.sites import METROS
from repro.testbed.vantage import VantagePoint

#: The five RTTs (seconds) on the paper's Figure 4 y-axis.
PAPER_FIG4_RTTS = (units.ms(10.656), units.ms(30.003), units.ms(86.647),
                   units.ms(160.38), units.ms(243.25))

#: Display clustering gap for the dot-array rendering (the paper's
#: figure resolves bursts at roughly this granularity).
DISPLAY_CLUSTER_GAP = units.ms(60)

FIG4_KEYWORD = Keyword(text="figure four probe", popularity=0.5,
                       complexity=0.5)

#: Tdelta below this counts as "lumped together" (one MSS serialization
#: plus scheduling noise).
MERGE_EPSILON = units.ms(3)


@dataclass
class TimelineRow:
    """One client's timeline: the Figure-4 horizontal dot array."""

    target_rtt: float
    session: QuerySession
    metrics: QueryMetrics
    display_bursts: List[EventCluster]

    @property
    def gap(self) -> float:
        """The static-to-dynamic gap (t5 - t4), content-correlated."""
        return self.metrics.tdelta

    @property
    def merged(self) -> bool:
        """True when static and dynamic deliveries lumped together."""
        return self.gap <= MERGE_EPSILON

    def event_offsets(self) -> List[Tuple[float, str]]:
        """(elapsed_seconds, direction) pairs since the session start."""
        start = self.session.started_at
        return [(e.time - start, e.direction) for e in self.session.events]


@dataclass
class Fig4Result:
    """All five timelines, ordered by increasing RTT."""

    service: str
    rows: List[TimelineRow] = field(default_factory=list)

    def gaps(self) -> List[Tuple[float, float]]:
        """(rtt, static-to-dynamic gap) pairs."""
        return [(row.target_rtt, row.gap) for row in self.rows]

    def gap_shrinks_with_rtt(self) -> bool:
        """The model's prediction: larger RTT, smaller (or merged) gap."""
        gaps = [row.gap for row in self.rows]
        return all(gaps[i] >= gaps[i + 1] - 0.010
                   for i in range(len(gaps) - 1))


def run_fig4(scale: Optional[ExperimentScale] = None, *,
             service_name: str = Scenario.BING,
             rtts: Sequence[float] = PAPER_FIG4_RTTS,
             repeats: int = 7) -> Fig4Result:
    """Run the Figure-4 experiment.

    Each controlled-RTT client issues ``repeats`` queries (spaced so
    they never contend for the FE's back-end connection pool); the
    reported gap is the per-client *median* ``t5 - t4``, and the
    rendered timeline is the client's median-gap session.
    """
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale)
    service = scenario.service(service_name)
    frontend = service.frontends[0]

    probes: Dict[int, List[QuerySession]] = {i: [] for i in
                                             range(len(rtts))}
    calibration_sessions: List[QuerySession] = []
    spacing = 5.0
    next_slot = 0.0
    for index, rtt in enumerate(rtts):
        vp = VantagePoint(
            name="fig4-client-%02d" % index,
            metro=_metro_near(frontend.location),
            location=frontend.location,
            access_delay=rtt / 2.0,  # entire one-way delay via access
            peering_penalty=0.0)
        scenario.add_vantage_point(vp)
        scenario.link_client_to_frontend(vp, frontend, service)
        emulator = QueryEmulator(scenario, vp, store_payload=True)
        for _ in range(repeats):
            scenario.sim.call_at(
                next_slot, lambda e=emulator, i=index: probes[i].append(
                    e.submit(service_name, frontend, FIG4_KEYWORD)))
            next_slot += spacing
        if index == 0:
            # Two more keywords from the nearest client, for the content
            # analysis that locates the static/dynamic boundary.
            for keyword in CALIBRATION_KEYWORDS[:2]:
                scenario.sim.call_at(
                    next_slot,
                    lambda e=emulator, k=keyword:
                    calibration_sessions.append(
                        e.submit(service_name, frontend, k)))
                next_slot += spacing
    scenario.sim.run()

    for sessions in probes.values():
        for session in sessions:
            if not session.complete:
                raise RuntimeError("figure-4 session failed: %s"
                                   % session.failed)
    calibration = BoundaryCalibration.from_sessions(
        calibration_sessions + [probes[0][0]])
    boundary = calibration.boundary_for(probes[0][0])

    result = Fig4Result(service=service_name)
    for index, rtt in enumerate(rtts):
        metrics = [extract_metrics(s, boundary) for s in probes[index]]
        metrics.sort(key=lambda m: m.tdelta)
        representative = metrics[len(metrics) // 2]
        session = representative.session
        result.rows.append(TimelineRow(
            target_rtt=rtt,
            session=session,
            metrics=representative,
            display_bursts=cluster_by_gap(session.inbound_data_events(),
                                          DISPLAY_CLUSTER_GAP)))
    return result


def _metro_near(location):
    best, best_distance = None, float("inf")
    for metro in METROS:
        distance = metro.location.distance_miles(location)
        if distance < best_distance:
            best, best_distance = metro, distance
    return best


def render_timelines(result: Fig4Result, width: int = 78) -> str:
    """ASCII rendering of Figure 4: one row per client, time left-to-right."""
    lines = []
    horizon = max(row.event_offsets()[-1][0] for row in result.rows)
    for row in result.rows:
        cells = [" "] * width
        for offset, direction in row.event_offsets():
            column = min(width - 1, int(offset / horizon * (width - 1)))
            mark = "x" if direction == "out" else "o"
            cells[column] = mark if cells[column] == " " else "*"
        label = "%7.2fms |" % units.seconds_to_ms(row.target_rtt)
        lines.append(label + "".join(cells))
    lines.append("%10s +%s" % ("", "-" * width))
    lines.append("%10s  0 ... elapsed ... %.0fms"
                 % ("", units.seconds_to_ms(horizon)))
    return "\n".join(lines)
