"""What-if placement advice for both services (paper's closing claim).

Fits the Section-2 model to Dataset-B measurements of each service and
prints the operator-facing placement advice from
:mod:`repro.core.whatif` — the "guide ... better content placement and
delivery strategies" step the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.core.whatif import FittedModel, PlacementAdvice, advise_placement, fit_model
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.driver import run_dataset_b
from repro.sim import units
from repro.testbed.scenario import Scenario

WHATIF_KEYWORD = Keyword(text="placement advice probe", popularity=0.5,
                         complexity=0.5)


@dataclass
class WhatIfResult:
    """Fitted models and advice per service."""

    fitted: Dict[str, FittedModel]
    advice: Dict[str, PlacementAdvice]


def run_whatif(scale: Optional[ExperimentScale] = None) -> WhatIfResult:
    """Measure both services and fit the placement model to each."""
    scale = scale or ExperimentScale.small()
    fitted, advice = {}, {}
    for service_name in (Scenario.GOOGLE, Scenario.BING):
        scenario = build_scenario(scale)
        service = scenario.service(service_name)
        frontend = service.frontends[0]
        calibration = calibrate_service(scenario, service_name,
                                        [frontend])
        dataset = run_dataset_b(scenario, service_name, frontend,
                                WHATIF_KEYWORD,
                                repeats=max(4, scale.repeats // 2),
                                interval=scale.interval)
        metrics = extract_all_calibrated(dataset.sessions, calibration)
        fitted[service_name] = fit_model(metrics)
        advice[service_name] = advise_placement(metrics)
    return WhatIfResult(fitted=fitted, advice=advice)


def render_whatif(result: WhatIfResult) -> str:
    """Text report of the fitted models and placement advice."""
    lines = ["What-if placement analysis (Section-2 model fitted to "
             "measurements)"]
    for service_name in sorted(result.fitted):
        fitted = result.fitted[service_name]
        advice = result.advice[service_name]
        model = fitted.model
        lines.append("[%s]" % service_name)
        lines.append("  fitted: fe_delay=%.1fms  Tfetch=%.1fms  "
                     "k=%d windows  (n=%d)"
                     % (units.seconds_to_ms(model.fe_delay),
                        units.seconds_to_ms(model.tfetch),
                        model.static_windows, fitted.samples))
        lines.append("  placement threshold: %.0f ms RTT; "
                     "fetch-bound clients: %.0f%%"
                     % (units.seconds_to_ms(advice.threshold_rtt),
                        advice.fraction_fetch_bound * 100))
        lines.append("  advice: %s" % advice.recommendation)
    return "\n".join(lines)
