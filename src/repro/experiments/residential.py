"""Beyond PlanetLab: residential and mobile access (reviewers' critique).

The summary reviews press on the paper's testbed bias: PlanetLab nodes
sit in campus networks near Akamai clusters, so 80% seeing <20 ms is
"certainly not realistic" for DSL or mobile users.  This experiment
re-runs the default-FE campaign over three access populations — campus
(the paper's), residential DSL, and 3G mobile — and reports how the
paper's conclusions shift:

* RTT CDFs move right (far fewer nodes under 20 ms);
* more users sit *above* the Tdelta-extinction threshold, where FE
  placement no longer matters and the FE-BE fetch time fully determines
  Tdynamic — i.e. the paper's central trade-off grows *stronger* for
  real users;
* with lossy last hops, split TCP's local recovery keeps overall
  delays from exploding (the paper's Section-6 argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.stats import fraction_below, median
from repro.content.keywords import Keyword
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    calibrate_frontends_used,
)
from repro.measure.driver import run_dataset_a
from repro.sim import units
from repro.testbed.residential import (
    CAMPUS,
    MOBILE_3G,
    RESIDENTIAL_DSL,
    AccessProfile,
    scenario_with_access_profile,
)
from repro.testbed.scenario import Scenario

PROBE_KEYWORD = Keyword(text="access profile probe", popularity=0.5,
                        complexity=0.5)


@dataclass
class AccessProfileRow:
    """One population's measurements for one service."""

    profile: str
    service: str
    median_rtt: float
    fraction_under_20ms: float
    median_tdynamic: float
    median_overall: float
    #: Fraction of queries still below the threshold (Tdelta > 0),
    #: i.e. users for whom moving the FE closer would still help.
    fraction_below_threshold: float


@dataclass
class ResidentialResult:
    """The campus / DSL / mobile comparison."""

    service: str
    rows: List[AccessProfileRow] = field(default_factory=list)

    def row(self, profile_name: str) -> AccessProfileRow:
        for row in self.rows:
            if row.profile == profile_name:
                return row
        raise KeyError(profile_name)

    def rtts_degrade(self) -> bool:
        """Campus < DSL < mobile in median RTT."""
        rtts = [row.median_rtt for row in self.rows]
        return rtts == sorted(rtts)

    def placement_relevance_shrinks(self) -> bool:
        """Fewer and fewer users below the threshold as access worsens."""
        fractions = [row.fraction_below_threshold for row in self.rows]
        return fractions[0] >= fractions[-1]


def run_residential(scale: Optional[ExperimentScale] = None, *,
                    service_name: str = Scenario.BING
                    ) -> ResidentialResult:
    """Run the three-population comparison for one service."""
    scale = scale or ExperimentScale.small()
    result = ResidentialResult(service=service_name)
    for profile in (CAMPUS, RESIDENTIAL_DSL, MOBILE_3G):
        result.rows.append(_run_population(scale, profile, service_name))
    return result


def _run_population(scale: ExperimentScale, profile: AccessProfile,
                    service_name: str) -> AccessProfileRow:
    scenario = scenario_with_access_profile(
        profile, seed=scale.seed, vantage_count=scale.vantage_count)
    dataset = run_dataset_a(scenario, [PROBE_KEYWORD],
                            repeats=scale.repeats,
                            interval=scale.interval,
                            services=[service_name])
    sessions = dataset.for_service(service_name)
    calibration = calibrate_frontends_used(scenario, service_name,
                                           sessions)
    metrics = extract_all_calibrated(sessions, calibration)
    if not metrics:
        raise RuntimeError("population %r produced no metrics"
                           % profile.name)
    rtts = [rtt for (vp, svc), (fe, rtt) in dataset.default_fe.items()
            if svc == service_name]
    tdeltas = [m.tdelta for m in metrics]
    return AccessProfileRow(
        profile=profile.name,
        service=service_name,
        median_rtt=median(rtts),
        fraction_under_20ms=fraction_below(rtts, units.ms(20)),
        median_tdynamic=median([m.tdynamic for m in metrics]),
        median_overall=median([m.overall_delay for m in metrics]),
        fraction_below_threshold=fraction_below(
            [-t for t in tdeltas], -units.ms(5)))


def render_residential(result: ResidentialResult) -> str:
    """Text report for the access-profile comparison."""
    lines = ["Access-profile study (%s) — the reviewers' critique"
             % result.service]
    lines.append("  %-16s %10s %10s %12s %12s %18s"
                 % ("population", "RTT med", "<20ms", "Tdyn med",
                    "overall", "below threshold"))
    for row in result.rows:
        lines.append("  %-16s %8.1fms %9.0f%% %10.1fms %10.1fms %17.0f%%"
                     % (row.profile,
                        units.seconds_to_ms(row.median_rtt),
                        row.fraction_under_20ms * 100,
                        units.seconds_to_ms(row.median_tdynamic),
                        units.seconds_to_ms(row.median_overall),
                        row.fraction_below_threshold * 100))
    lines.append("  RTTs degrade campus -> mobile: %s"
                 % result.rtts_degrade())
    lines.append("  placement relevance shrinks: %s"
                 % result.placement_relevance_shrinks())
    return "\n".join(lines)
