"""Keyword-effect study (reviewer #2's request).

The summary review asks the authors to "evaluate if there is a
correlation between the fetching time and the number of words used in
the query" and to contrast popular (likely back-end-cached) queries with
complex ones.  This experiment quantifies both against a fixed front
end:

* Spearman correlation between per-keyword median Tdynamic and the
  keyword's word count / complexity (expected positive);
* Spearman correlation with popularity (expected negative — hot
  back-end caches);
* the popular-vs-complex extremes the reviewers asked to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from scipy import stats as scipy_stats

from repro.analysis.stats import median
from repro.content.keywords import Keyword, KeywordCatalog
from repro.core.metrics import extract_all_calibrated
from repro.experiments.common import (
    ExperimentScale,
    build_scenario,
    calibrate_service,
)
from repro.measure.emulator import QueryEmulator
from repro.sim.process import Sleep, spawn
from repro.testbed.scenario import Scenario


@dataclass(frozen=True)
class KeywordEffect:
    """One keyword's aggregated fetch-time proxy."""

    keyword: Keyword
    tdynamic_median: float
    samples: int


@dataclass
class KeywordEffectsResult:
    """Correlations between keyword attributes and fetch time."""

    service: str
    effects: List[KeywordEffect] = field(default_factory=list)
    word_count_rho: float = 0.0
    word_count_p: float = 1.0
    complexity_rho: float = 0.0
    complexity_p: float = 1.0
    popularity_rho: float = 0.0
    popularity_p: float = 1.0

    def extremes(self) -> Tuple[KeywordEffect, KeywordEffect]:
        """(cheapest, costliest) keywords by median Tdynamic."""
        ordered = sorted(self.effects, key=lambda e: e.tdynamic_median)
        return ordered[0], ordered[-1]


def run_keyword_effects(scale: Optional[ExperimentScale] = None, *,
                        service_name: str = Scenario.BING,
                        keywords_per_class: int = 6,
                        repeats: int = 8) -> KeywordEffectsResult:
    """Query a spread of keywords and correlate attributes vs Tdynamic."""
    scale = scale or ExperimentScale.small()
    scenario = build_scenario(scale)
    service = scenario.service(service_name)

    catalog = KeywordCatalog(seed=scale.seed)
    keywords: List[Keyword] = []
    keywords += catalog.popular(keywords_per_class)
    keywords += catalog.mixed(keywords_per_class)
    keywords += catalog.refined(keywords_per_class)
    keywords += catalog.complex(keywords_per_class)
    # De-duplicate by text (catalog classes can collide at small sizes).
    unique: Dict[str, Keyword] = {}
    for keyword in keywords:
        unique.setdefault(keyword.text, keyword)
    keywords = list(unique.values())

    # A low-RTT probe client so Tdynamic ~ Tfetch.
    vp = min(scenario.vantage_points,
             key=lambda candidate: scenario.client_fe_rtt(
                 candidate, scenario.default_frontend(service_name,
                                                      candidate),
                 service))
    frontend = scenario.default_frontend(service_name, vp)
    scenario.link_client_to_frontend(vp, frontend, service)
    calibration = calibrate_service(scenario, service_name, [frontend],
                                    vp)

    emulator = QueryEmulator(scenario, vp)
    sessions_by_keyword: Dict[str, list] = {k.text: [] for k in keywords}

    def driver():
        for _ in range(repeats):
            for keyword in keywords:
                sessions_by_keyword[keyword.text].append(
                    emulator.submit(service_name, frontend, keyword))
                yield Sleep(scale.interval / 2)

    spawn(scenario.sim, driver())
    scenario.sim.run()

    result = KeywordEffectsResult(service=service_name)
    for keyword in keywords:
        metrics = extract_all_calibrated(
            sessions_by_keyword[keyword.text], calibration)
        if not metrics:
            continue
        result.effects.append(KeywordEffect(
            keyword=keyword,
            tdynamic_median=median([m.tdynamic for m in metrics]),
            samples=len(metrics)))

    tdyn = [e.tdynamic_median for e in result.effects]
    for attribute, rho_field, p_field in (
            ("word_count", "word_count_rho", "word_count_p"),
            ("complexity", "complexity_rho", "complexity_p"),
            ("popularity", "popularity_rho", "popularity_p")):
        values = [getattr(e.keyword, attribute) for e in result.effects]
        rho, p = scipy_stats.spearmanr(values, tdyn)
        setattr(result, rho_field, float(rho))
        setattr(result, p_field, float(p))
    return result


def render_keyword_effects(result: KeywordEffectsResult) -> str:
    """Text report for the keyword-effect study."""
    from repro.sim import units

    lines = ["Keyword-effect study (%s) — reviewer #2's correlation"
             % result.service]
    lines.append("  %d keywords, per-keyword median Tdynamic:"
                 % len(result.effects))
    cheapest, costliest = result.extremes()
    lines.append("    cheapest:  %-38r %7.1f ms"
                 % (cheapest.keyword.text,
                    units.seconds_to_ms(cheapest.tdynamic_median)))
    lines.append("    costliest: %-38r %7.1f ms"
                 % (costliest.keyword.text,
                    units.seconds_to_ms(costliest.tdynamic_median)))
    lines.append("  Spearman rho vs Tdynamic:")
    lines.append("    word count:  %+.2f (p=%.3g)"
                 % (result.word_count_rho, result.word_count_p))
    lines.append("    complexity:  %+.2f (p=%.3g)"
                 % (result.complexity_rho, result.complexity_p))
    lines.append("    popularity:  %+.2f (p=%.3g)"
                 % (result.popularity_rho, result.popularity_p))
    return "\n".join(lines)
