"""Textual rendering of experiment results.

Each ``render_*`` function prints the rows/series the corresponding
paper figure reports, in plain text, so benchmark runs regenerate a
readable version of the evaluation.  All times are printed in
milliseconds (the paper's unit).
"""

from __future__ import annotations

from repro.experiments.ablation import (
    CacheAblationResult,
    IdleResetAblationResult,
    LossAblationResult,
    PlacementAblationResult,
    SplitTcpAblationResult,
)
from repro.experiments.cache_lab import CacheLabResult
from repro.experiments.caching import CachingExperimentResult
from repro.experiments.dataset_a import Fig6Result, Fig7Result, Fig8Result
from repro.experiments.fig3 import Fig3Result
from repro.experiments.fig4 import Fig4Result, render_timelines
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig9 import Fig9Result
from repro.experiments.interactive import InteractiveResult
from repro.experiments.validation import ValidationResult
from repro.analysis.charts import cdf_plot, hbox_plot, scatter
from repro.sim import units


def _ms(seconds: float) -> str:
    return "%.1f" % units.seconds_to_ms(seconds)


def render_fig3(result: Fig3Result) -> str:
    """Figure 3 rows: per-keyword Tstatic/Tdynamic medians."""
    lines = ["Figure 3 — keyword-type effect on Tstatic / Tdynamic "
             "(%s)" % result.service]
    lines.append("%-40s %14s %14s" % ("keyword", "Tstatic(ms)",
                                      "Tdynamic(ms)"))
    tsta = result.tstatic_medians()
    tdyn = result.tdynamic_medians()
    for text in result.series:
        lines.append("%-40s %14s %14s"
                     % (text[:40], _ms(tsta[text]), _ms(tdyn[text])))
    lines.append("separation ratio (dyn spread / static spread): %.1f"
                 % result.separation_ratio())
    return "\n".join(lines)


def render_fig4(result: Fig4Result) -> str:
    """Figure 4: ASCII timelines plus the per-RTT gap table."""
    lines = ["Figure 4 — packet-event timelines (%s)" % result.service]
    lines.append(render_timelines(result))
    lines.append("RTT(ms)   static→dynamic gap(ms)   merged?")
    for row in result.rows:
        lines.append("%7.1f   %22s   %s"
                     % (units.seconds_to_ms(row.target_rtt),
                        _ms(row.gap), "yes" if row.merged else "no"))
    return "\n".join(lines)


def render_fig5(result: Fig5Result) -> str:
    """Figure 5: binned medians, thresholds, Tdelta scatter."""
    lines = ["Figure 5 — Tstatic / Tdynamic / Tdelta vs RTT"]
    for name, curves in sorted(result.curves.items()):
        lines.append("[%s]  fixed FE: %s" % (name, curves.fe_name))
        lines.append("  %-12s %12s %12s %12s"
                     % ("RTT bin(ms)", "Tstatic", "Tdynamic", "Tdelta"))
        tsta = dict(curves.binned("tstatic"))
        tdyn = dict(curves.binned("tdynamic"))
        tdel = dict(curves.binned("tdelta"))
        for center in sorted(tdyn):
            lines.append("  %-12.0f %12s %12s %12s"
                         % (units.seconds_to_ms(center),
                            _ms(tsta.get(center, float("nan")))
                            if center in tsta else "-",
                            _ms(tdyn[center]),
                            _ms(tdel.get(center, 0.0))))
        if curves.threshold is not None:
            lines.append("  Tdelta extinction threshold: ~%.0f ms"
                         % units.seconds_to_ms(
                             curves.threshold.threshold_rtt))
    series = {name: [(units.seconds_to_ms(x), units.seconds_to_ms(y))
                     for x, y in curves.tdelta]
              for name, curves in sorted(result.curves.items())}
    if any(series.values()):
        lines.append("Tdelta vs RTT (per-node medians, ms):")
        lines.append(scatter(series, xlabel="RTT ms", ylabel="Tdelta ms"))
    return "\n".join(lines)


def render_fig6(result: Fig6Result) -> str:
    """Figure 6: under-20ms fractions, quartiles, RTT CDFs."""
    lines = ["Figure 6 — RTT to default front-end (CDF)"]
    for service, fraction in sorted(result.under_20ms.items()):
        lines.append("  %-16s: %4.0f%% of nodes under 20 ms"
                     % (service, fraction * 100))
    for service, cdf in sorted(result.cdfs.items()):
        deciles = [cdf[int(len(cdf) * q) - 1][0]
                   for q in (0.25, 0.5, 0.75, 0.9)] if cdf else []
        lines.append("  %-16s  RTT quartiles (ms): %s"
                     % (service, ", ".join(_ms(v) for v in deciles)))
    series = {service: [(units.seconds_to_ms(x), f) for x, f in cdf]
              for service, cdf in sorted(result.cdfs.items())}
    if any(series.values()):
        lines.append(cdf_plot(series, xlabel="RTT ms"))
    return "\n".join(lines)


def render_fig7(result: Fig7Result) -> str:
    """Figure 7 comparison rows and the placement paradox."""
    lines = ["Figure 7 — Tstatic / Tdynamic with default front-ends"]
    lines.append("%-16s %10s %12s %12s %12s %12s"
                 % ("service", "rtt_med", "tsta_med", "tsta_std",
                    "tdyn_med", "tdyn_std"))
    for row in result.comparison.rows():
        lines.append("%-16s %10.1f %12.1f %12.1f %12.1f %12.1f"
                     % (row["service"], row["rtt_median_ms"],
                        row["tstatic_median_ms"], row["tstatic_std_ms"],
                        row["tdynamic_median_ms"],
                        row["tdynamic_std_ms"]))
    lines.append("closer FEs: %s; faster overall: %s; paradox: %s"
                 % (result.comparison.closer_frontends(),
                    result.comparison.faster_overall(),
                    result.comparison.paradox_present))
    return "\n".join(lines)


def render_fig8(result: Fig8Result) -> str:
    """Figure 8: per-node overall-delay box plots."""
    from repro.analysis.stats import BoxStats

    lines = ["Figure 8 — overall delay per vantage point (box stats, ms)"]
    for service, boxes in sorted(result.boxes.items()):
        lines.append("[%s] (%d nodes)" % (service, len(boxes)))
        shown = [(vp_name, BoxStats(*(units.seconds_to_ms(v) for v in
                                      (box.low_whisker, box.q1,
                                       box.median, box.q3,
                                       box.high_whisker))))
                 for vp_name, box in boxes[:10]]
        lines.append(hbox_plot(shown, value_format="%.0fms"))
        if len(boxes) > 10:
            lines.append("  ... (%d more nodes)" % (len(boxes) - 10))
    lines.append("more variable service: %s"
                 % result.comparison.more_variable())
    return "\n".join(lines)


def render_fig9(result: Fig9Result) -> str:
    """Figure 9: per-FE points, fits, and the intercept ratio."""
    lines = ["Figure 9 — Tdynamic vs FE-BE distance (regression)"]
    for service, panel in sorted(result.panels.items()):
        fit = panel.factoring.fit
        lines.append("[%s] backend=%s" % (service, panel.backend_name))
        lines.append("  fit: y = %.3f ms/mile * x + %.0f ms  (r2=%.2f, "
                     "%d FEs)" % (panel.slope_ms_per_mile,
                                  panel.intercept_ms, fit.r_squared,
                                  len(panel.factoring.points)))
        for point in panel.factoring.points:
            lines.append("    %-36s %6.0f mi  Tdyn=%7s ms (n=%d)"
                         % (point.fe_name, point.distance_miles,
                            _ms(point.tdynamic_median), point.samples))
    series = {}
    for service, panel in sorted(result.panels.items()):
        series[service] = [(p.distance_miles,
                            units.seconds_to_ms(p.tdynamic_median))
                           for p in panel.factoring.points]
    lines.append(scatter(series, xlabel="FE-BE miles",
                         ylabel="Tdynamic ms"))
    lines.append("intercept ratio (bing/google): %.1fx"
                 % result.intercept_ratio())
    lines.append("slopes similar: %s" % result.slopes_similar())
    return "\n".join(lines)


def render_caching(result: CachingExperimentResult) -> str:
    """Section-3 caching verdict for one deployment."""
    lines = ["Section 3 — FE result-caching detection (%s)"
             % result.service]
    lines.append("  simulator caching enabled: %s"
                 % result.caching_enabled_in_simulator)
    lines.append("  same-query median Tdynamic:     %s ms"
                 % _ms(result.detection.median_same))
    lines.append("  distinct-query median Tdynamic: %s ms"
                 % _ms(result.detection.median_distinct))
    lines.append("  " + result.detection.verdict())
    lines.append("  detector correct: %s" % result.detector_correct)
    return "\n".join(lines)


def render_cache_lab(result: CacheLabResult) -> str:
    """Cache-laboratory sweep table and detector validations."""
    lines = ["Cache lab — finite FE caches vs the static/dynamic "
             "inference (%s)" % result.service]
    lines.append("  static object: %d bytes" % result.static_object_bytes)
    lines.append("  %-7s %4s %5s %6s %5s | %7s %7s %5s | %8s %8s"
                 % ("policy", "cap", "alpha", "tiers", "fill",
                    "gt-hit%", "ext-hit%", "evict",
                    "Tsta hit", "Tsta miss"))
    for p in result.points:
        lines.append(
            "  %-7s %4d %5.1f %6d %5s | %6.1f%% %6.1f%% %5d | %8s %8s"
            % (p.policy, p.capacity_objects, p.alpha, p.tier_depth,
               p.fill, p.ground_truth_hit_rate * 100,
               p.measured_hit_rate * 100, p.evictions,
               _ms(p.hit_tstatic) if p.hit_tstatic is not None else "-",
               _ms(p.miss_tstatic) if p.miss_tstatic is not None
               else "-"))
    lines.append("  sweep totals: %d queries, %d origin fetches "
                 "(misses), %d evictions"
                 % (sum(p.queries for p in result.points),
                    sum(p.origin_fetches for p in result.points),
                    sum(p.evictions for p in result.points)))
    lines.append("  hit rate monotone in Zipf alpha (lru/cap 8): %s"
                 % result.hit_rate_monotone_in_alpha)
    lines.append("  cache_detect validation (ground truth from server "
                 "logs):")
    for case in result.validations:
        lines.append("    %-26s served=%-4d truth=%-5s detected=%-5s "
                     "ratio=%.2f %s"
                     % (case.name, case.result_cache_hits,
                        case.ground_truth_caching,
                        case.detection.caching_detected,
                        case.detection.median_ratio,
                        "OK" if case.detector_correct else "WRONG"))
    lines.append("  all validations correct: %s"
                 % result.all_validations_correct)
    return "\n".join(lines)


def render_validation(result: ValidationResult) -> str:
    """Eq. 1 bound-validity and proxy-error summary."""
    lines = ["Eq. 1 validation — Tdelta <= Tfetch <= Tdynamic (%s)"
             % result.service]
    lines.append("  samples: %d" % result.bounds.n)
    lines.append("  lower bound holds: %5.1f%%"
                 % (result.bounds.lower_fraction * 100))
    lines.append("  upper bound holds: %5.1f%%"
                 % (result.bounds.upper_fraction * 100))
    lines.append("  mean bound gap: %s ms" % _ms(result.bounds.mean_gap))
    lines.append("  Tdynamic-as-Tfetch proxy, median rel. error at "
                 "RTT<40ms: %.1f%%"
                 % (result.proxy_error_below_rtt(0.040) * 100))
    return "\n".join(lines)


def render_interactive(result: InteractiveResult) -> str:
    """Section-6 search-as-you-type summary."""
    lines = ["Section 6 — search-as-you-type (%s)" % result.service]
    lines.append("  phrase: %r (%d per-letter queries, %d connections)"
                 % (result.phrase, result.queries,
                    result.distinct_connections()))
    lines.append("  bounds hold on every keystroke: %s"
                 % (result.bounds.both_fraction == 1.0))
    lines.append("  Tdynamic trend late-vs-early: %+0.1f ms"
                 % units.seconds_to_ms(result.tdynamic_trend()))
    return "\n".join(lines)


def render_split_tcp(result: SplitTcpAblationResult) -> str:
    """One-line split-TCP ablation summary."""
    return ("Ablation — split TCP (%s): split=%sms direct=%sms "
            "speedup=%.2fx (n=%d)"
            % (result.service, _ms(result.split_median),
               _ms(result.direct_median), result.speedup, result.samples))


def render_cache_ablation(result: CacheAblationResult) -> str:
    """One-line FE-static-cache ablation summary."""
    return ("Ablation — FE static cache (%s): TTFB %sms -> %sms, "
            "overall %sms -> %sms (cache off)"
            % (result.service, _ms(result.ttfb_cached),
               _ms(result.ttfb_uncached), _ms(result.overall_cached),
               _ms(result.overall_uncached)))


def render_placement(result: PlacementAblationResult) -> str:
    """Placement-density sweep table."""
    lines = ["Ablation — FE placement density (%s)" % result.service]
    lines.append("  %-10s %14s %16s" % ("coverage", "median RTT",
                                        "median overall"))
    for point in result.points:
        lines.append("  %-10.2f %12s ms %14s ms"
                     % (point.coverage, _ms(point.median_rtt),
                        _ms(point.median_overall)))
    lines.append("  RTT gained: %s ms; overall gained: %s ms"
                 % (_ms(result.rtt_gain()), _ms(result.overall_gain())))
    return "\n".join(lines)


def render_loss(result: LossAblationResult) -> str:
    """Last-hop loss sweep table."""
    lines = ["Ablation — last-hop loss sweep (%s)" % result.service]
    lines.append("  %-10s %12s %12s %14s"
                 % ("loss", "split(ms)", "direct(ms)", "advantage(ms)"))
    for point in result.points:
        lines.append("  %-10.3f %12s %12s %14s"
                     % (point.loss_rate, _ms(point.split_median),
                        _ms(point.direct_median),
                        _ms(point.split_advantage)))
    lines.append("  advantage grows with loss: %s"
                 % result.advantage_grows_with_loss())
    return "\n".join(lines)


def render_idle_reset(result: IdleResetAblationResult) -> str:
    """One-line RFC 2861 idle-reset ablation summary."""
    return ("Ablation — RFC 2861 idle reset on FE-BE connections (%s): "
            "warm Tfetch=%sms, idle-reset Tfetch=%sms, penalty=%sms "
            "per query (n=%d)"
            % (result.service, _ms(result.warm_tfetch_median),
               _ms(result.cold_tfetch_median), _ms(result.idle_penalty),
               result.samples))
