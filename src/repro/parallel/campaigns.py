"""Sharded versions of the two measurement campaigns.

Each shard process rebuilds the *full* scenario from its
:class:`~repro.testbed.scenario.ScenarioConfig` (construction is
deterministic, so every shard sees the identical universe: same VP
placement, same deployments, same content) and then runs the campaign
for only its slice of vantage points.  Start times come from each VP's
index in the full fleet (see :func:`repro.measure.driver._fleet_staggers`)
and the load/processing RNG draws are keyed per query
(``ScenarioConfig(keyed_service_draws=True)``, which this module
requires), so a query executes identically no matter which process
hosts it.

The merge is order-independent: sessions are regrouped by the fleet
order of their vantage points, reproducing exactly the session list the
serial driver builds.

Only config-built scenarios can be sharded — the worker has nothing but
the config to rebuild from, so scenarios constructed with custom
service profiles are rejected.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.content.keywords import Keyword
from repro.measure.driver import (
    DatasetA,
    DatasetB,
    run_dataset_a,
    run_dataset_b,
)
from repro.measure.session import QuerySession
from repro.measure.streaming import (
    StreamingCampaignResult,
    run_streaming_campaign,
)
from repro.parallel.partition import (
    fe_sharing_components,
    partition_components,
    partition_round_robin,
)
from repro.parallel.pool import map_shards
from repro.testbed.scenario import Scenario, ScenarioConfig
from repro.workload.generator import OpenLoopWorkload, WorkloadSpec


@dataclass(frozen=True)
class _DatasetAShard:
    """Picklable work order for one Dataset-A shard."""

    config: ScenarioConfig
    keywords: Tuple[Keyword, ...]
    vp_names: Tuple[str, ...]
    repeats: int
    interval: float
    services: Optional[Tuple[str, ...]]
    store_payload: bool
    run_timeout: Optional[float]
    #: None (env default) or a bool; each worker builds its own private
    #: per-shard ReplayCache, so cache objects never cross processes.
    replay_cache: Optional[bool] = None
    #: Mirror of the parent's repro.obs enabled flag: workers re-assert
    #: it so tracing survives any process start method (fork inherits
    #: it anyway) and per-shard captures come back on the dataset.
    observe: bool = False
    #: Execution tier (None = env default; see repro.sim.analytic).
    #: Tier decisions are stratum-local and the partition keeps strata
    #: whole, so per-shard tiering reproduces the serial run.
    tier: Optional[str] = None


@dataclass(frozen=True)
class _DatasetBShard:
    """Picklable work order for one Dataset-B shard."""

    config: ScenarioConfig
    service_name: str
    frontend_name: str
    keyword: Keyword
    vp_names: Tuple[str, ...]
    repeats: int
    interval: float
    store_payload: bool
    run_timeout: Optional[float]
    replay_cache: Optional[bool] = None
    observe: bool = False
    #: Execution tier, as on :class:`_DatasetAShard`.
    tier: Optional[str] = None


def _select_vps(scenario: Scenario, names: Sequence[str]):
    by_name = {vp.name: vp for vp in scenario.vantage_points}
    return [by_name[name] for name in names]


def _run_dataset_a_shard(shard: _DatasetAShard) -> DatasetA:
    if shard.observe:
        obs.enable()
    scenario = Scenario(shard.config)
    return run_dataset_a(
        scenario, list(shard.keywords),
        repeats=shard.repeats, interval=shard.interval,
        services=list(shard.services) if shard.services else None,
        vantage_points=_select_vps(scenario, shard.vp_names),
        store_payload=shard.store_payload,
        run_timeout=shard.run_timeout,
        replay_cache=shard.replay_cache,
        tier=shard.tier)


def _run_dataset_b_shard(shard: _DatasetBShard) -> DatasetB:
    if shard.observe:
        obs.enable()
    scenario = Scenario(shard.config)
    service = scenario.service(shard.service_name)
    frontend = service.frontend_by_name(shard.frontend_name)
    return run_dataset_b(
        scenario, shard.service_name, frontend, shard.keyword,
        repeats=shard.repeats, interval=shard.interval,
        vantage_points=_select_vps(scenario, shard.vp_names),
        store_payload=shard.store_payload,
        run_timeout=shard.run_timeout,
        replay_cache=shard.replay_cache,
        tier=shard.tier)


def _merged_replay_stats(results: Sequence[object]):
    """Sum per-shard replay stats (None when every shard had cache off).

    Per-shard caches are correctness-preserving without coordination:
    a shard records and replays only its own sessions, each of which is
    bit-identical to its simulated counterpart, so the merged dataset
    equals the serial run regardless of which shard got which hit.
    """
    stats = [result.replay for result in results
             if result.replay is not None]
    if not stats:
        return None
    return sum(stats)


def _merged_tier_stats(results: Sequence[object]):
    """Sum per-shard tier stats (None when every shard ran packet-only).

    Tier decisions are per-stratum and the Dataset-A partition keeps
    each stratum inside one shard, so the merged counters equal the
    serial run's exactly.
    """
    stats = [result.tier for result in results
             if result.tier is not None]
    if not stats:
        return None
    return sum(stats)


#: Histogram bounds for per-shard session counts.
_SHARD_SESSION_BOUNDS = (10, 30, 100, 300, 1_000, 3_000, 10_000)


def _merge_observability(obs_mark, results: Sequence[object],
                         merged) -> None:
    """Fold per-shard observability captures into the merged dataset.

    The runner first rolls the live runtime back to ``obs_mark``: when
    :func:`~repro.parallel.pool.map_shards` fell back to inline
    execution, the shard campaigns recorded straight into this
    process's tracer/registry, and absorbing their snapshots too would
    double-count.  (With real worker processes the rollback is a
    no-op.)  Sim-scope metrics and spans merge to exactly the serial
    campaign's capture; host-scope metrics add up across shards.
    """
    if obs_mark is None:
        return
    obs.rollback(obs_mark)
    merged.trace = obs.merge_traces(
        [result.trace for result in results])
    merged.obs_metrics = obs.merge_metrics(
        [result.obs_metrics for result in results])
    obs.absorb(merged.trace, merged.obs_metrics)
    registry = obs.runtime.metrics
    registry.inc("campaign.shards", len(results))
    for result in results:
        registry.observe("shard.sessions", len(result.sessions),
                         _SHARD_SESSION_BOUNDS)


def _check_default_profiles(scenario: Scenario,
                            service_names: Sequence[str]) -> None:
    from repro.testbed.scenario import scenario_profiles

    # Compare against the profiles a worker rebuilding from the config
    # would construct — config-level transforms (deterministic_services)
    # are shardable, hand-passed custom profiles are not.  Only the
    # services this campaign runs are checked (and thus built — the
    # scenario constructs deployments lazily).
    defaults = scenario_profiles(scenario.config)
    for name in service_names:
        if defaults.get(name) != scenario.service(name).profile:
            raise ValueError(
                "sharding requires a config-built scenario; service %r "
                "uses a custom profile the worker processes cannot "
                "rebuild" % name)


def _check_shardable(scenario: Scenario,
                     service_names: Sequence[str]) -> None:
    _check_default_profiles(scenario, service_names)
    if not scenario.config.keyed_service_draws:
        raise ValueError(
            "sharded campaigns require a scenario built with "
            "ScenarioConfig(keyed_service_draws=True): with the default "
            "shared sequential RNG streams, a shard's service-delay "
            "draws would depend on queries running in other shards")
    if scenario.config.fe_cache.shared_regional:
        raise ValueError(
            "sharded campaigns cannot use a shared regional cache "
            '(fe_cache.regional_scope="shared"): its contents depend on '
            "the interleaved miss streams of every front-end homed on a "
            "back-end, and front-ends land in different shards; use "
            'regional_scope="per-fe" or run serially')


def _sessions_in_fleet_order(scenario: Scenario,
                             results: Sequence[object]
                             ) -> List[QuerySession]:
    by_vp: Dict[str, List[QuerySession]] = {}
    for result in results:
        for session in result.sessions:
            by_vp.setdefault(session.vp_name, []).append(session)
    merged: List[QuerySession] = []
    for vp in scenario.vantage_points:
        merged.extend(by_vp.get(vp.name, []))
    return merged


def run_dataset_a_sharded(scenario: Scenario,
                          keywords: Sequence[Keyword], *,
                          repeats: int = 10,
                          interval: float = 10.0,
                          services: Optional[Sequence[str]] = None,
                          shards: int = 2,
                          processes: int = 0,
                          store_payload: bool = False,
                          run_timeout: Optional[float] = None,
                          replay_cache: Optional[bool] = None,
                          tier: Optional[str] = None) -> DatasetA:
    """Sharded :func:`~repro.measure.driver.run_dataset_a`.

    ``scenario`` is used only to partition the fleet and to carry the
    config; it is *not* run (workers rebuild their own copy).  The
    partition keeps FE-sharing vantage points together, which makes the
    merged dataset bit-identical to the serial run for the same seed.

    ``replay_cache`` (None = env default, or a bool) is forwarded to
    every worker; each builds its own per-shard cache.  ``tier`` is
    forwarded too; tier decisions are per-stratum (service, FE, VP) and
    strata never span shards, so sharded tiering is bit-identical to
    serial.
    """
    service_names = tuple(services or scenario.services)
    _check_shardable(scenario, service_names)
    components = fe_sharing_components(scenario, service_names)
    partition = partition_components(components, shards)
    shard_specs = [
        _DatasetAShard(config=scenario.config,
                       keywords=tuple(keywords),
                       vp_names=tuple(vp.name for vp in part),
                       repeats=repeats, interval=interval,
                       services=service_names,
                       store_payload=store_payload,
                       run_timeout=run_timeout,
                       replay_cache=replay_cache,
                       observe=obs.enabled(),
                       tier=tier)
        for part in partition]
    obs_mark = obs.fork_mark() if obs.enabled() else None
    results = map_shards(_run_dataset_a_shard, shard_specs, processes)

    merged = DatasetA()
    merged.replay = _merged_replay_stats(results)
    merged.tier = _merged_tier_stats(results)
    merged.sessions = _sessions_in_fleet_order(scenario, results)
    default_fe: Dict[Tuple[str, str], Tuple[str, float]] = {}
    for result in results:
        default_fe.update(result.default_fe)
    # Re-insert in the serial driver's (vp, service) iteration order so
    # even dict ordering matches the serial run.
    for vp in scenario.vantage_points:
        for service_name in service_names:
            key = (vp.name, service_name)
            if key in default_fe:
                merged.default_fe[key] = default_fe[key]
    _merge_observability(obs_mark, results, merged)
    return merged


class HighFrontEndLoadError(ValueError):
    """A Dataset-B sharding request would not be serial-equivalent.

    Raised by :func:`run_dataset_b_sharded` when the campaign schedule
    keeps the shared front-end busy enough that concurrent sessions
    would overlap there.  Pass ``allow_high_fe_load=True`` to downgrade
    this error to a :class:`UserWarning` and shard anyway (accepting
    that the merged dataset may diverge from the serial run).
    """


def _estimated_fe_busy_time(scenario: Scenario, service_name: str,
                            frontend_name: str) -> float:
    """Rough per-session busy time at the shared Dataset-B front-end.

    Two client RTTs (connection setup plus request/response) bracket the
    FE's own work: its median load delay and the back-end's base
    processing time.  This is an intentionally *low* estimate — real
    sessions also pay transfer time and load noise — so the guard only
    fires on schedules that are clearly too dense.
    """
    service = scenario.service(service_name)
    frontend = service.frontend_by_name(frontend_name)
    rtts = [scenario.client_fe_rtt(vp, frontend, service)
            for vp in scenario.vantage_points]
    mean_rtt = sum(rtts) / len(rtts)  # simlint: unit[s]
    profile = service.profile
    return (2.0 * mean_rtt + profile.fe_load.median_delay
            + profile.processing.base)


def _guard_dataset_b_fe_load(scenario: Scenario, service_name: str,
                             frontend_name: str, interval: float,
                             allow_high_fe_load: bool) -> None:
    """Refuse (or warn about) sharding a high-FE-load Dataset-B config.

    Sharded Dataset B is serial-equivalent only while the shared
    front-end never serves two sessions at once (its concurrency-
    dependent load draws then see ``concurrency == 1`` in every shard,
    exactly as in the serial run).  The fleet submits one session every
    ``interval / len(fleet)`` seconds; when that gap undercuts the
    estimated per-session FE busy time *and* the service actually
    charges for concurrency, shards would disagree with the serial
    schedule's overlaps.
    """
    profile = scenario.service(service_name).profile
    if profile.fe_load.per_concurrent_delay <= 0.0:
        return  # FE load is concurrency-independent: overlap is harmless
    gap = interval / max(1, len(scenario.vantage_points))
    busy = _estimated_fe_busy_time(scenario, service_name, frontend_name)
    if gap >= busy:
        return
    message = (
        "Dataset-B sharding is only serial-equivalent at low front-end "
        "load, but this schedule is dense: the fleet submits to %r "
        "every %.3fs while a session keeps it busy for ~%.3fs, and the "
        "%r profile charges per-concurrent delay. Raise `interval`, "
        "shrink the fleet, or pass allow_high_fe_load=True to shard "
        "anyway (the merged dataset may then diverge from the serial "
        "run)." % (frontend_name, gap, busy, service_name))
    if not allow_high_fe_load:
        raise HighFrontEndLoadError(message)
    warnings.warn(message, UserWarning, stacklevel=3)


def run_dataset_b_sharded(scenario: Scenario, service_name: str,
                          frontend_name: str, keyword: Keyword, *,
                          repeats: int = 10,
                          interval: float = 10.0,
                          shards: int = 2,
                          processes: int = 0,
                          store_payload: bool = False,
                          run_timeout: Optional[float] = None,
                          replay_cache: Optional[bool] = None,
                          tier: Optional[str] = None,
                          allow_high_fe_load: bool = False) -> DatasetB:
    """Sharded :func:`~repro.measure.driver.run_dataset_b`.

    Every Dataset-B vantage point targets the *same* fixed front-end,
    so all of them form one FE-sharing component: the partition here is
    plain round-robin and the merged result reproduces the serial run
    only when concurrent load on that FE is negligible (large
    ``interval`` relative to session durations).  Schedules dense
    enough to overlap sessions at the FE raise
    :class:`HighFrontEndLoadError` up front; pass
    ``allow_high_fe_load=True`` to downgrade the refusal to a
    :class:`UserWarning` and shard anyway.  See ``docs/PERFORMANCE.md``
    for the validity discussion.

    For the same reason, Dataset-B sharding splits (service, FE, VP)
    strata across shards only when VPs are split — it never is: each VP
    is wholly in one shard, and tier strata are per-VP.  ``tier`` is
    therefore safe to forward here too.
    """
    _check_shardable(scenario, (service_name,))
    if scenario.config.fe_cache.finite:
        # Round-robin splits the shared FE's request stream across
        # workers, so a finite (evicting) cache would see a different
        # request order in each shard and diverge from serial state.
        # Dataset-A/streaming sharding is safe (FE-sharing components
        # keep each FE's whole stream in one shard) — only Dataset B
        # shares one FE across shards.
        raise ValueError(
            "Dataset-B sharding is not serial-equivalent with a finite "
            "front-end content cache (fe_cache.static policy %r): all "
            "vantage points share one FE, and splitting its request "
            "stream across shards would evolve different cache states; "
            "run run_dataset_b serially instead"
            % scenario.config.fe_cache.static.policy)
    resolved = scenario.service(service_name).frontend_by_name(
        frontend_name).node.name
    _guard_dataset_b_fe_load(scenario, service_name, resolved,
                             interval, allow_high_fe_load)
    partition = partition_round_robin(scenario.vantage_points, shards)
    shard_specs = [
        _DatasetBShard(config=scenario.config,
                       service_name=service_name,
                       frontend_name=resolved,
                       keyword=keyword,
                       vp_names=tuple(vp.name for vp in part),
                       repeats=repeats, interval=interval,
                       store_payload=store_payload,
                       run_timeout=run_timeout,
                       replay_cache=replay_cache,
                       observe=obs.enabled(),
                       tier=tier)
        for part in partition]
    obs_mark = obs.fork_mark() if obs.enabled() else None
    results = map_shards(_run_dataset_b_shard, shard_specs, processes)

    merged = DatasetB(service=service_name, fe_name=resolved)
    merged.replay = _merged_replay_stats(results)
    merged.tier = _merged_tier_stats(results)
    merged.sessions = _sessions_in_fleet_order(scenario, results)
    _merge_observability(obs_mark, results, merged)
    return merged


# ----------------------------------------------------------------------
# Streaming (open-loop workload) campaigns
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _StreamingShard:
    """Picklable work order for one streaming-campaign shard.

    The worker rebuilds the scenario *and* the workload from their
    specs; the workload's determinism contract (sequential arrival
    stream + per-session RNGs, see :mod:`repro.workload.generator`)
    guarantees every shard regenerates the identical global stream and
    filters it to its own vantage points.
    """

    config: ScenarioConfig
    spec: WorkloadSpec
    vp_names: Tuple[str, ...]
    batch_events: int
    lookahead: float
    replay_cache: Optional[bool] = None
    observe: bool = False
    tier: Optional[str] = None


def _run_streaming_shard(shard: _StreamingShard
                         ) -> StreamingCampaignResult:
    if shard.observe:
        obs.enable()
    scenario = Scenario(shard.config)
    workload = OpenLoopWorkload(
        shard.spec, [vp.name for vp in scenario.vantage_points])
    return run_streaming_campaign(
        scenario, workload,
        vantage_points=_select_vps(scenario, shard.vp_names),
        batch_events=shard.batch_events,
        lookahead=shard.lookahead,
        tier=shard.tier,
        replay_cache=shard.replay_cache)


def _merge_streaming_observability(obs_mark,
                                   results: Sequence[
                                       StreamingCampaignResult],
                                   merged: StreamingCampaignResult
                                   ) -> None:
    """Streaming analogue of :func:`_merge_observability`.

    Streaming results carry metrics only (``trace`` would grow with the
    event count), so the merge rolls back inline double-counting,
    combines the per-shard metric snapshots, and re-absorbs them.
    """
    if obs_mark is None:
        return
    obs.rollback(obs_mark)
    merged.obs_metrics = obs.merge_metrics(
        [result.obs_metrics for result in results])
    obs.absorb(None, merged.obs_metrics)
    registry = obs.runtime.metrics
    registry.inc("campaign.shards", len(results))
    for result in results:
        registry.observe("shard.sessions", result.sessions,
                         _SHARD_SESSION_BOUNDS)


def run_streaming_sharded(scenario: Scenario, spec: WorkloadSpec, *,
                          shards: int = 2,
                          processes: int = 0,
                          batch_events: int = 2048,
                          lookahead: float = 30.0,
                          replay_cache: Optional[bool] = None,
                          tier: Optional[str] = None
                          ) -> StreamingCampaignResult:
    """Sharded :func:`~repro.measure.streaming.run_streaming_campaign`.

    The fleet is partitioned by FE-sharing components (as Dataset A is)
    so every front-end's full submission schedule lives inside exactly
    one shard; with keyed service draws the merged result is then
    bit-identical to the serial streaming run — same counters, same
    quantile-sketch fingerprints — at any shard count.

    Only spec-built workloads shard: a worker regenerates the stream
    from the picklable :class:`~repro.workload.generator.WorkloadSpec`.
    Replay traces (:class:`~repro.workload.trace.TraceWorkload`) run
    serially instead.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    _check_shardable(scenario, spec.services)
    components = fe_sharing_components(scenario, spec.services)
    partition = partition_components(components, shards)
    shard_specs = [
        _StreamingShard(config=scenario.config,
                        spec=spec,
                        vp_names=tuple(vp.name for vp in part),
                        batch_events=batch_events,
                        lookahead=lookahead,
                        replay_cache=replay_cache,
                        observe=obs.enabled(),
                        tier=tier)
        for part in partition]
    obs_mark = obs.fork_mark() if obs.enabled() else None
    results = map_shards(_run_streaming_shard, shard_specs, processes)

    merged = StreamingCampaignResult.merged(results)
    merged.spec = spec
    merged.shards = len(results)
    _merge_streaming_observability(obs_mark, results, merged)
    return merged
