"""Process-pool plumbing shared by all sharded runners.

Kept deliberately thin: a single :func:`map_shards` that preserves
submission order (results come back positionally, so merges never
depend on completion order) and falls back to an inline loop when a
pool would not help — one shard, one process, or a worker that is
already running inside a daemon process.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_processes() -> int:
    """Default pool size: the machine's CPU count."""
    return os.cpu_count() or 1


def map_shards(worker: Callable[[T], R], shard_args: Sequence[T],
               processes: int = 0) -> List[R]:
    """Run ``worker`` over ``shard_args``; results in submission order.

    ``processes`` caps the pool size (0 means one per CPU).  With a
    single shard, a single process, or when called from a process that
    cannot fork workers (a daemonic pool child), the work runs inline —
    same results, no pool.  ``worker`` must be a module-level function
    and every argument/result picklable; shard specs in
    :mod:`repro.parallel.campaigns` are plain frozen dataclasses for
    exactly this reason.
    """
    shard_args = list(shard_args)
    if not shard_args:
        return []
    if processes <= 0:
        processes = default_processes()
    processes = min(processes, len(shard_args))
    if processes <= 1 or _in_daemon():
        return [worker(arg) for arg in shard_args]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(worker, shard_args)


def _in_daemon() -> bool:
    """True when already inside a pool worker (workers can't fork)."""
    return multiprocessing.current_process().daemon
