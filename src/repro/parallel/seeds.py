"""Seed-level sharding: repeat a figure experiment across seeds.

Different seeds are fully independent universes (every stream derives
from the root seed), so any experiment runner can fan out one process
per seed with no equivalence caveats at all.  The one exception is by
policy, not correctness: load-sensitivity runners are rejected to keep
the "measure cross-client FE load" family clearly outside the parallel
layer (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence, Union

from repro.experiments.common import ExperimentScale
from repro.parallel.pool import map_shards

#: Runner names that must not go through the parallel layer.  Their
#: results are *about* in-simulator concurrency, so readers should
#: never wonder whether process-level parallelism touched them.
OPT_OUT = frozenset({
    "repro.experiments.load_sensitivity:run_load_sensitivity",
})

RunnerRef = Union[str, Callable[..., Any]]


@dataclass(frozen=True)
class _SeedTask:
    runner: str  # "package.module:function"
    scale: ExperimentScale
    seed: int


def _resolve_runner(runner: RunnerRef) -> str:
    if callable(runner):
        return "%s:%s" % (runner.__module__, runner.__qualname__)
    return runner


def _run_seed_task(task: _SeedTask) -> Any:
    module_name, _, func_name = task.runner.partition(":")
    module = importlib.import_module(module_name)
    func = getattr(module, func_name)
    return func(task.scale.with_overrides(seed=task.seed))


def run_over_seeds(runner: RunnerRef, scale: ExperimentScale,
                   seeds: Sequence[int],
                   processes: int = 0) -> List[Any]:
    """Run ``runner(scale_with_seed)`` for every seed, in parallel.

    ``runner`` is a module-level experiment function (or its
    ``"module:name"`` string) taking an :class:`ExperimentScale`;
    results come back in seed order.
    """
    name = _resolve_runner(runner)
    if name in OPT_OUT:
        raise ValueError(
            "%s studies cross-client FE load and opts out of the "
            "parallel layer" % name)
    tasks = [_SeedTask(runner=name, scale=scale, seed=seed)
             for seed in seeds]
    return map_shards(_run_seed_task, tasks, processes)
