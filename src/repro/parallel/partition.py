"""Vantage-point partitioning for sharded campaigns.

The validity argument for running a campaign's vantage points in
separate simulators is that VPs interact *only* through shared
front-end servers: an FE's load model adds delay per concurrent
request, its pool of warm back-end connections is picked by queue
depth, and its FE-BE link owns the sequential jitter/loss RNG streams.
Two VPs that never touch the same FE exchange no packets, share no
queues, and (with keyed per-query draws, see
:meth:`~repro.sim.randomness.RandomStreams.keyed`) consume no common
RNG stream.

:func:`fe_sharing_components` therefore groups VPs into the connected
components of the "shares a default FE (of any service)" graph; a shard
made of whole components reproduces every interaction of the serial
run exactly.  Campaigns that aim *all* VPs at one fixed FE (Dataset B)
collapse into a single component — for those
:func:`partition_round_robin` trades exactness for speed (see
``docs/PERFORMANCE.md`` for when that is acceptable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.testbed.scenario import Scenario
from repro.testbed.vantage import VantagePoint


def fe_sharing_components(scenario: Scenario,
                          services: Optional[Sequence[str]] = None,
                          vps: Optional[Sequence[VantagePoint]] = None
                          ) -> List[List[VantagePoint]]:
    """Group ``vps`` into components sharing any default front-end.

    Components (and the VPs inside them) come back in fleet order, so
    the grouping is deterministic for a fixed scenario config.
    """
    services = list(services or scenario.services)
    vps = list(vps if vps is not None else scenario.vantage_points)
    parent: Dict[str, str] = {vp.name: vp.name for vp in vps}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    owner_by_fe: Dict[str, str] = {}
    for vp in vps:
        for service_name in services:
            fe_name = scenario.default_frontend(service_name, vp).node.name
            owner = owner_by_fe.setdefault(fe_name, vp.name)
            root_a, root_b = find(owner), find(vp.name)
            if root_a != root_b:
                parent[root_b] = root_a

    grouped: Dict[str, List[VantagePoint]] = {}
    for vp in vps:
        grouped.setdefault(find(vp.name), []).append(vp)
    # Fleet order of each component's first member fixes the order.
    return list(grouped.values())


def partition_components(components: Sequence[List[VantagePoint]],
                         shard_count: int) -> List[List[VantagePoint]]:
    """Pack whole components into at most ``shard_count`` shards.

    Greedy balanced binning: biggest component first, always into the
    currently lightest shard (ties to the lowest shard index), so the
    result depends only on the component list.  Empty shards are
    dropped.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    shards: List[List[VantagePoint]] = [[] for _ in range(shard_count)]
    order = sorted(range(len(components)),
                   key=lambda index: (-len(components[index]), index))
    for index in order:
        target = min(range(shard_count), key=lambda s: (len(shards[s]), s))
        shards[target].extend(components[index])
    return [shard for shard in shards if shard]


def partition_round_robin(vps: Sequence[VantagePoint],
                          shard_count: int) -> List[List[VantagePoint]]:
    """Deal VPs across shards round-robin (Dataset B's partition)."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    shards: List[List[VantagePoint]] = [[] for _ in range(shard_count)]
    for index, vp in enumerate(vps):
        shards[index % shard_count].append(vp)
    return [shard for shard in shards if shard]
