"""Parallel campaign execution.

Campaigns are embarrassingly parallel *almost* everywhere: vantage
points interact only through the front-end servers they share (FE load
is concurrency-dependent and the FE-BE links carry the shared jitter /
loss RNG streams).  This package shards that independent work across a
:mod:`multiprocessing` pool, one :class:`~repro.sim.engine.Simulator`
per shard, and merges the results deterministically:

* :func:`run_dataset_a_sharded` / :func:`run_dataset_b_sharded` — the
  two measurement campaigns, sharded by vantage-point partition.  For
  Dataset A the partition keeps every group of FE-sharing vantage
  points in one shard (:func:`fe_sharing_components`), which together
  with keyed per-query RNG draws (:meth:`RandomStreams.keyed`) makes
  the sharded run *bit-identical* to the serial one.
* :func:`run_streaming_sharded` — the open-loop streaming campaign
  (:mod:`repro.measure.streaming`), sharded with the Dataset-A
  partition; the merged aggregates (counters and quantile sketches)
  are bit-identical to the serial streaming run at any shard count.
* :func:`run_over_seeds` — repeat a whole figure experiment across
  seeds, one process per seed.

Load-sensitivity experiments deliberately opt out: their entire point
is cross-client interaction through FE load, so splitting their clients
across simulators would change the phenomenon being measured (see
``docs/PERFORMANCE.md``).
"""

from repro.parallel.campaigns import (
    HighFrontEndLoadError,
    run_dataset_a_sharded,
    run_dataset_b_sharded,
    run_streaming_sharded,
)
from repro.parallel.partition import (
    fe_sharing_components,
    partition_components,
    partition_round_robin,
)
from repro.parallel.pool import map_shards
from repro.parallel.seeds import run_over_seeds

__all__ = [
    "HighFrontEndLoadError",
    "fe_sharing_components",
    "map_shards",
    "partition_components",
    "partition_round_robin",
    "run_dataset_a_sharded",
    "run_dataset_b_sharded",
    "run_over_seeds",
    "run_streaming_sharded",
]
