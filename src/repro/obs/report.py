"""Plain-text campaign summaries and the ``repro report`` subcommand.

Two entry points:

* :func:`render_summary` — format the live runtime's spans + metrics
  (used by the CLI's ``--metrics`` flag right after a run);
* :func:`main` — ``python -m repro report TRACE.jsonl``: load a JSONL
  export (:mod:`repro.obs.export`) and print the same summary from the
  serialized records, so a trace file is self-describing without
  re-running anything.

Output is deterministic: names sorted, no timestamps of the host run.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.obs import runtime
from repro.obs.export import read_jsonl
from repro.obs.metrics import MetricsSnapshot


def _span_name_counts(flat_records: List[dict]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in flat_records:
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    return counts


def _format_value(value) -> str:
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def _render(span_counts: Dict[str, int], session_failures: int,
            metric_records: List[dict], title: str) -> str:
    lines = [title, "=" * len(title)]
    lines.append("")
    lines.append("spans")
    lines.append("-----")
    if span_counts:
        width = max(len(name) for name in span_counts)
        for name in sorted(span_counts):
            lines.append("  %-*s %6d" % (width, name, span_counts[name]))
        if session_failures:
            lines.append("  (%d session span(s) marked failed)"
                         % session_failures)
    else:
        lines.append("  (none recorded)")
    lines.append("")
    lines.append("metrics")
    lines.append("-------")
    if not metric_records:
        lines.append("  (none recorded)")
    for record in metric_records:
        if record["type"] == "counter" or record["type"] == "gauge":
            lines.append("  %-38s %14s  [%s %s]"
                         % (record["name"],
                            _format_value(record["value"]),
                            record["scope"], record["type"]))
        else:
            mean = (record["sum"] / record["count"]
                    if record["count"] else 0.0)
            lines.append("  %-38s n=%-6d mean=%s min=%s max=%s  [%s "
                         "histogram]"
                         % (record["name"], record["count"],
                            _format_value(mean),
                            _format_value(record["min"]),
                            _format_value(record["max"]),
                            record["scope"]))
    return "\n".join(lines)


def render_summary(snapshot: Optional[MetricsSnapshot] = None,
                   span_dicts: Optional[List[dict]] = None,
                   title: str = "observability summary") -> str:
    """Summarize the live runtime (or explicit snapshot/spans)."""
    from repro.obs.export import flatten_spans
    if snapshot is None:
        snapshot = runtime.metrics.snapshot()
    if span_dicts is None:
        span_dicts = runtime.tracer.snapshot_since(0)
    flat = flatten_spans(span_dicts)
    failures = sum(1 for record in flat
                   if record["name"] == "session"
                   and record["attrs"].get("failed"))
    return _render(_span_name_counts(flat), failures,
                   snapshot.as_records(), title)


def summarize_export(payload: dict, path: str) -> str:
    """Summary text for a parsed JSONL export (see ``read_jsonl``)."""
    spans = payload["spans"]
    failures = sum(1 for record in spans
                   if record["name"] == "session"
                   and record.get("attrs", {}).get("failed"))
    title = "observability summary — %s (schema %s v%d)" % (
        path, payload["header"]["schema"], payload["header"]["version"])
    return _render(_span_name_counts(spans), failures,
                   payload["metrics"], title)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro report TRACE.jsonl`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Summarize a repro.obs JSONL trace export: span "
                    "counts, campaign metrics, replay-cache hit rates.")
    parser.add_argument("trace", help="JSONL file written by --trace "
                                      "or REPRO_TRACE")
    args = parser.parse_args(argv)
    try:
        payload = read_jsonl(args.trace)
    except (OSError, ValueError) as error:
        print("repro report: %s" % error)
        return 2
    print(summarize_export(payload, args.trace))
    return 0
