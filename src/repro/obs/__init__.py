"""Observability: structured tracing + metrics for simulated campaigns.

The paper's method is instrumentation — decomposing each query's packet
timeline into the t1..te landmarks to attribute delay to the FE versus
the BE.  This package applies the same discipline to the simulator
itself: campaigns produce a span per query session (with the landmark
events and FE/BE ground-truth child spans), a metrics registry counts
engine/TCP/replay work, and exporters write JSONL (schema v1), Chrome
trace-event JSON, and plain-text summaries.  docs/OBSERVABILITY.md is
the reference.

Design rules:

* **Zero cost when disabled.**  All instrumentation is guarded by the
  module-level flag in :mod:`repro.obs.runtime`, and every guard sits
  on a rare path; spans are built post hoc from data the simulation
  records anyway.
* **Sim-time only, deterministic.**  Span timestamps are simulated
  seconds; exports are canonically ordered; a serial campaign and a
  sharded run of it (``repro.parallel``) serialize byte-identically
  for sim-scope data.
* **No import cycles.**  This module (which instrumented code imports)
  pulls in only :mod:`~repro.obs.runtime`, :mod:`~repro.obs.trace` and
  :mod:`~repro.obs.metrics` — none of which import the simulator.
  Recording/export helpers load lazily.

Typical use::

    from repro import obs
    obs.enable()
    dataset = run_dataset_a(scenario, keywords)
    obs.export_jsonl("campaign.jsonl")
    print(obs.render_summary())
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import runtime
from repro.obs.metrics import (
    SCOPE_HOST,
    SCOPE_SIM,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import Span, Tracer, merge_span_dicts

__all__ = [
    "SCOPE_HOST", "SCOPE_SIM", "MetricsRegistry", "MetricsSnapshot",
    "Span", "Tracer", "annotate_boundaries", "absorb",
    "campaign_begin", "campaign_end", "configure_from_env", "disable",
    "enable", "enabled", "env_trace_path", "export_chrome",
    "export_jsonl", "fork_mark", "merge_metrics", "merge_span_dicts",
    "merge_traces", "render_summary", "reset", "rollback", "runtime",
]


def enabled() -> bool:
    return runtime.enabled


def enable() -> None:
    runtime.enable()


def disable() -> None:
    runtime.disable()


def reset() -> None:
    runtime.reset()


def configure_from_env() -> None:
    runtime.configure_from_env()


def env_trace_path() -> Optional[str]:
    return runtime.env_trace_path()


# ----------------------------------------------------------------------
# campaign bracketing (drivers)
# ----------------------------------------------------------------------
def campaign_begin(scenario):
    """Mark a campaign start; returns None when tracing is disabled."""
    if not runtime.enabled:
        return None
    from repro.obs.record import begin
    return begin(scenario)


def campaign_end(mark, kind: str, scenario, dataset) -> None:
    """Record a finished campaign (no-op when ``mark`` is None)."""
    if mark is None:
        return
    from repro.obs.record import end
    end(mark, kind, scenario, dataset)


def annotate_boundaries(metrics_list) -> None:
    """Add t4/t5 + static/dynamic phases after calibration."""
    if not runtime.enabled:
        return
    from repro.obs.record import annotate_boundaries as annotate
    annotate(metrics_list)


# ----------------------------------------------------------------------
# shard merge protocol (parallel.campaigns, CLI --jobs)
# ----------------------------------------------------------------------
def fork_mark():
    """State mark taken before fanning work out to shard workers."""
    return (runtime.tracer.mark(), runtime.metrics.snapshot())


def rollback(mark) -> None:
    """Undo everything recorded since ``fork_mark`` (inline dedup)."""
    runtime.tracer.rollback(mark[0])
    runtime.metrics.restore(mark[1])


def absorb(trace: Optional[List[dict]],
           snapshot: Optional[MetricsSnapshot]) -> None:
    """Fold a worker's trace/metrics delta into the live runtime."""
    if trace:
        runtime.tracer.absorb(trace)
    if snapshot is not None:
        runtime.metrics.absorb(snapshot)


def merge_traces(traces: List[Optional[List[dict]]]) -> List[dict]:
    """Combine per-shard span snapshots into one canonical list."""
    return merge_span_dicts([trace for trace in traces if trace])


def merge_metrics(snapshots: List[Optional[MetricsSnapshot]]
                  ) -> MetricsSnapshot:
    """Order-independent aggregate of per-shard metric snapshots."""
    present = [snap for snap in snapshots if snap is not None]
    if not present:
        return MetricsSnapshot.empty()
    return MetricsSnapshot.merge(present)


# ----------------------------------------------------------------------
# exports (CLI)
# ----------------------------------------------------------------------
def export_jsonl(path: str) -> None:
    """Write everything currently recorded as JSONL schema v1."""
    from repro.obs.export import write_jsonl
    write_jsonl(path, runtime.tracer.snapshot_since(0),
                runtime.metrics.snapshot())


def export_chrome(path: str) -> None:
    """Write everything currently recorded as Chrome trace JSON."""
    from repro.obs.export import write_chrome_trace
    write_chrome_trace(path, runtime.tracer.snapshot_since(0))


def render_summary(title: str = "observability summary") -> str:
    """Plain-text summary of everything currently recorded."""
    from repro.obs.report import render_summary as render
    return render(title=title)
