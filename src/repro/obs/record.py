"""Campaign recording: turn finished sessions into spans and metrics.

The drivers (:mod:`repro.measure.driver`) bracket each campaign with
:func:`begin`/:func:`end`.  Everything is derived *post hoc* from data
the simulation produced anyway — the session's captured packet events,
the FE fetch log, and the BE query log — so tracing adds no work to
the hot simulation path and automatically covers replayed sessions
(the replay cache replicates the ground-truth logs bit-exactly; see
``repro.sim.replay``).

Span model (docs/OBSERVABILITY.md):

* ``session`` — one top-level span per query session, ``[started_at,
  completed_at]``, with the boundary-free packet landmarks ``tb, t1,
  t2, t3, te`` as point events (the same scan as
  :func:`repro.core.metrics.extract_timeline`, minus the landmarks
  that need the content-analysis boundary).
* children ``phase.connect`` ``[tb, t1]``, ``phase.request``
  ``[t1, t2]``, ``phase.response`` ``[t3, te]``;
* children ``fe.fetch`` (FE forwarded_at -> completed_at) and
  ``be.query`` (BE arrival -> completion, tproc attribute) from the
  service ground-truth logs;
* after content-analysis calibration, :func:`annotate_boundaries` adds
  the boundary landmarks ``t4``/``t5`` and the ``phase.static``
  ``[t3, t4]`` / ``phase.dynamic`` ``[t5, te]`` children.

Every timestamp is simulated seconds; nothing here reads the host.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.stream import TraceError, inbound_byte_arrivals
from repro.obs import runtime
from repro.obs.metrics import SCOPE_HOST, SCOPE_SIM
from repro.obs.trace import Span

#: Histogram bounds: session durations (seconds) and response sizes.
DURATION_BOUNDS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 5.0)
SIZE_BOUNDS = (4_096, 16_384, 32_768, 65_536, 131_072, 262_144)


class CampaignMark:
    """Where a campaign started, for delta extraction at its end."""

    __slots__ = ("trace_mark", "metrics_base", "engine_events",
                 "engine_compactions")

    def __init__(self, trace_mark, metrics_base, engine_events,
                 engine_compactions):
        self.trace_mark = trace_mark
        self.metrics_base = metrics_base
        self.engine_events = engine_events
        self.engine_compactions = engine_compactions


def begin(scenario) -> CampaignMark:
    """Mark the start of a campaign on ``scenario`` (tracing enabled)."""
    sim = scenario.sim
    return CampaignMark(runtime.tracer.mark(),
                        runtime.metrics.snapshot(),
                        sim.events_processed,
                        getattr(sim, "compactions", 0))


def end(mark: CampaignMark, kind: str, scenario, dataset) -> None:
    """Record a finished campaign: session spans + campaign metrics.

    Attaches the per-campaign deltas to ``dataset.trace`` (canonical
    serialized spans) and ``dataset.obs_metrics``
    (:class:`~repro.obs.metrics.MetricsSnapshot`).
    """
    for session in dataset.sessions:
        runtime.tracer.add(session_span(scenario, session))
    _campaign_metrics(mark, kind, scenario, dataset)
    dataset.trace = runtime.tracer.snapshot_since(mark.trace_mark)
    dataset.obs_metrics = \
        runtime.metrics.snapshot().subtract(mark.metrics_base)


# ----------------------------------------------------------------------
# span construction
# ----------------------------------------------------------------------
def session_span(scenario, session) -> Span:
    """Build the span tree of one finished query session."""
    end_time = session.completed_at  # simlint: unit[s]
    if end_time is None:
        end_time = session.events[-1].time if session.events \
            else session.started_at
    attrs: Dict[str, object] = {
        "query_id": session.query_id,
        "service": session.service,
        "vp": session.vp_name,
        "fe": session.fe_name,
        "keyword": session.keyword.text,
        "bytes": session.response_size,
    }
    if session.failed:
        attrs["failed"] = session.failed
    span = Span("session", session.started_at, end_time, attrs)

    marks = landmarks(session)
    for name in ("tb", "t1", "t2", "t3", "te"):
        if name in marks:
            span.event(marks[name], name)
    if "tb" in marks and "t1" in marks:
        span.child("phase.connect", marks["tb"], marks["t1"])
    if "t1" in marks and "t2" in marks:
        span.child("phase.request", marks["t1"], marks["t2"])
    if "t3" in marks and "te" in marks:
        span.child("phase.response", marks["t3"], marks["te"])
    _attach_ground_truth(scenario, session, span)
    return span


def landmarks(session) -> Dict[str, float]:
    """Boundary-free packet landmarks of one session.

    Mirrors :func:`repro.core.metrics.extract_timeline` exactly for the
    landmarks that need no static/dynamic boundary (tb, t1, t2, t3,
    te); returns whichever subset the trace supports instead of
    raising, so failed sessions still get partial spans.
    """
    events = session.events
    out: Dict[str, float] = {}
    tb = syn_ack_time = t1 = None
    get_event = None
    for event in events:
        if event.direction == "out" and event.syn and tb is None:
            tb = event.time
        elif (event.direction == "in" and event.syn and event.ack_flag
              and syn_ack_time is None):
            syn_ack_time = event.time
        elif (event.direction == "out" and event.payload_len > 0
              and t1 is None):
            t1 = event.time
            get_event = event
    if tb is not None:
        out["tb"] = tb
    if syn_ack_time is not None and tb is not None:
        out["rtt"] = syn_ack_time - tb
    if t1 is None:
        return out
    out["t1"] = t1

    get_end_seq = get_event.seq + get_event.payload_len
    for event in events:
        if (event.direction == "in" and event.ack_flag
                and event.ack >= get_end_seq and event.time >= t1):
            out["t2"] = event.time
            break

    try:
        arrivals = inbound_byte_arrivals(events)
    except TraceError:
        return out
    if arrivals:
        out["t3"] = arrivals[0].time
        out["te"] = arrivals[-1].time
    return out


def _attach_ground_truth(scenario, session, span: Span) -> None:
    """Add fe.fetch / be.query children from the service logs."""
    try:
        deployment = scenario.service(session.service)
        frontend = deployment.frontend_by_name(session.fe_name)
    except (KeyError, AttributeError):
        return
    fetch = frontend.fetch_log.get(session.query_id)
    if fetch is not None and fetch.completed_at is not None:
        span.child("fe.fetch", fetch.forwarded_at, fetch.completed_at,
                   {"query_id": session.query_id,
                    "bytes": fetch.response_size})
    backend = deployment.backend_for_frontend(frontend)
    query = backend.query_log.get(session.query_id)
    if query is not None and query.completed_time is not None:
        span.child("be.query", query.arrival_time, query.completed_time,
                   {"query_id": session.query_id,
                    "tproc": query.tproc,
                    "bytes": query.response_size})


def annotate_boundaries(metrics_list: Iterable) -> None:
    """Add boundary landmarks t4/t5 + static/dynamic phase children.

    Called after content-analysis calibration with the extracted
    :class:`repro.core.metrics.QueryMetrics`; finds each query's
    ``session`` span in the global tracer and completes its timeline.
    Idempotent per span.
    """
    if not runtime.enabled:
        return
    by_query = runtime.tracer.session_spans()
    for qm in metrics_list:
        span = by_query.get(qm.session.query_id)
        if span is None:
            continue
        if any(name == "t4" for _, name in span.events):
            continue
        timeline = qm.timeline
        span.event(timeline.t4, "t4")
        span.event(timeline.t5, "t5")
        span.events.sort()
        span.child("phase.static", timeline.t3, timeline.t4)
        span.child("phase.dynamic", timeline.t5, timeline.te)
        span.children.sort(key=lambda s: s.sort_key())


# ----------------------------------------------------------------------
# campaign metrics
# ----------------------------------------------------------------------
def _campaign_metrics(mark: CampaignMark, kind: str, scenario,
                      dataset) -> None:
    m = runtime.metrics
    sessions = dataset.sessions
    completed = [s for s in sessions if s.complete]

    # sim scope: functions of the simulated world, bit-identical
    # between a serial campaign and any sharding of it.
    m.inc("campaign.sessions.completed", len(completed), SCOPE_SIM)
    m.inc("campaign.sessions.failed",
          len(sessions) - len(completed), SCOPE_SIM)
    for session in completed:
        m.observe("campaign.session.duration_s", session.duration,
                  DURATION_BOUNDS, SCOPE_SIM)
        m.observe("campaign.response.bytes", session.response_size,
                  SIZE_BOUNDS, SCOPE_SIM)
    for service, fe_name in sorted({(s.service, s.fe_name)
                                    for s in sessions}):
        try:
            frontend = scenario.service(service).frontend_by_name(fe_name)
        except (KeyError, AttributeError):
            continue
        m.gauge_max("fe.peak_concurrency", frontend.peak_concurrency,
                    SCOPE_SIM)

    # host scope: this process's work (differs per shard by design —
    # warm-up is re-simulated, caches are per-process).
    m.inc("campaign.runs.%s" % kind, 1, SCOPE_HOST)
    sim = scenario.sim
    m.inc("engine.events_processed",
          sim.events_processed - mark.engine_events, SCOPE_HOST)
    m.inc("engine.compactions",
          getattr(sim, "compactions", 0) - mark.engine_compactions,
          SCOPE_HOST)
    replay = getattr(dataset, "replay", None)
    if replay is not None:
        record_replay_stats(replay)


def record_replay_stats(stats) -> None:
    """Surface a campaign's ReplayStats through the registry."""
    m = runtime.metrics
    m.inc("replay.hits", stats.hits, SCOPE_HOST)
    m.inc("replay.misses", stats.misses, SCOPE_HOST)
    m.inc("replay.recorded", stats.recorded, SCOPE_HOST)
    m.inc("replay.validations", stats.validations, SCOPE_HOST)
    m.inc("replay.validation_failures", stats.validation_failures,
          SCOPE_HOST)
    m.inc("replay.evictions", stats.evictions, SCOPE_HOST)
    for reason in sorted(stats.bypasses):
        m.inc("replay.bypass.%s" % reason, stats.bypasses[reason],
              SCOPE_HOST)
