"""Process-wide observability switch and singletons.

Instrumentation sites throughout the stack (engine, TCP, links,
services, drivers) are guarded by one module-level boolean::

    from repro.obs import runtime as _obs
    ...
    if _obs.enabled:
        _obs.metrics.inc("tcp.retransmissions")

Reading a module attribute is the cheapest guard Python offers, and
every guard sits on a *rare* path (a retransmit, a loss, a completed
request) — never inside the per-event dispatch loop — so the disabled
configuration adds no measurable overhead (benchmarked in
``benchmarks/test_bench_microperf.py``).

The switch initialises from the ``REPRO_TRACE`` environment variable
(same falsy convention as ``REPRO_REPLAY_CACHE``): unset/``0``/``off``/
``false``/``no`` leave tracing disabled; any other value enables it,
and a value that is not simply ``1``/``on``/``true``/``yes`` is also
taken as the JSONL export path by the CLI.  Worker processes created
by :mod:`repro.parallel` inherit the flag via fork and additionally
re-assert it from their shard spec (see ``parallel.campaigns``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

_FALSY = ("", "0", "off", "false", "no")
_BARE_TRUTHY = ("1", "on", "true", "yes")


def env_setting() -> Optional[str]:
    """The raw ``REPRO_TRACE`` value, or None when unset/falsy."""
    value = os.environ.get("REPRO_TRACE", "")
    if value.strip().lower() in _FALSY:
        return None
    return value


def env_trace_path() -> Optional[str]:
    """A JSONL export path carried in ``REPRO_TRACE``, if any.

    Bare truthy values ("1", "on", ...) enable tracing without implying
    an export file; anything else names the file to write.
    """
    value = env_setting()
    if value is None or value.strip().lower() in _BARE_TRUTHY:
        return None
    return value


#: Master switch.  Mutable module attribute, read (not imported) at
#: every instrumentation site so enable()/disable() take effect
#: everywhere immediately.
enabled: bool = env_setting() is not None

#: Process-wide singletons.  They exist even while disabled (cheap:
#: empty dicts/lists) so guards stay one-line.
tracer = Tracer()
metrics = MetricsRegistry()


def enable() -> None:
    global enabled
    # Shard workers re-assert the flag on purpose: the switch is
    # per-process, and parallel/campaigns merges recorded data through
    # the snapshot/absorb protocol, never through this module's state.
    enabled = True  # simlint: ignore[SHARD001]


def disable() -> None:
    global enabled
    enabled = False


def reset() -> None:
    """Drop all recorded spans and metrics (keeps the switch as-is)."""
    tracer.clear()
    metrics.clear()


def configure_from_env() -> None:
    """Re-read ``REPRO_TRACE`` (e.g. after the CLI mutates environ)."""
    global enabled
    enabled = env_setting() is not None
