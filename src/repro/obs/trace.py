"""Tracing core: sim-time spans with deterministic serialization.

A :class:`Span` is a named ``[start, end]`` interval in *simulated*
seconds, with string-keyed attributes, point ``(time, name)`` events
(the paper's packet landmarks t1..te live here), and child spans (the
connect/request/response and static/dynamic phases).

Determinism contract: spans carry no wall-clock stamps, no process
ids, and no allocation-order identifiers.  Serialization canonicalises
everything — events sorted by ``(time, name)``, children and top-level
spans sorted by ``(start, end, name, query_id)`` — so a serial
campaign and any sharded run of it produce byte-identical snapshots.
Span ids exist only in the exporters, assigned by DFS preorder over the
canonical order (:mod:`repro.obs.export`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Span:
    """One named interval of simulated time."""

    __slots__ = ("name", "start", "end", "attrs", "events", "children")

    def __init__(self, name: str, start: float,
                 end: Optional[float] = None,
                 attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.start = start
        self.end = end
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.events: List[Tuple[float, str]] = []
        self.children: List["Span"] = []

    def event(self, time: float, name: str) -> None:
        """Record a point event (e.g. a packet landmark) on this span."""
        self.events.append((time, name))

    def child(self, name: str, start: float, end: float,
              attrs: Optional[Dict[str, object]] = None) -> "Span":
        span = Span(name, start, end, attrs)
        self.children.append(span)
        return span

    def finish(self, end: float) -> None:
        self.end = end

    # -- canonical serialization ---------------------------------------
    def sort_key(self) -> tuple:
        return (self.start,
                self.end if self.end is not None else self.start,
                self.name, str(self.attrs.get("query_id", "")))

    def as_dict(self) -> dict:
        """Canonical dict form (sorted events/children, JSON-ready)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": self.attrs,
            "events": [[time, name]
                       for time, name in sorted(self.events)],
            "children": [child.as_dict() for child in
                         sorted(self.children,
                                key=lambda s: s.sort_key())],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(data["name"], data["start"], data["end"],
                   data.get("attrs"))
        span.events = [(time, name)
                       for time, name in data.get("events", [])]
        span.children = [cls.from_dict(child)
                         for child in data.get("children", [])]
        return span


def span_dict_key(data: dict) -> tuple:
    """Canonical ordering key for serialized spans (dict form)."""
    return (data["start"], data["end"], data["name"],
            str(data.get("attrs", {}).get("query_id", "")))


def merge_span_dicts(snapshots: List[List[dict]]) -> List[dict]:
    """Combine per-shard span snapshots into one canonical list."""
    merged: List[dict] = []
    for snapshot in snapshots:
        merged.extend(snapshot)
    merged.sort(key=span_dict_key)
    return merged


class Tracer:
    """An append-only buffer of top-level spans.

    The ``mark``/``rollback``/``snapshot_since`` trio implements the
    delta protocol used by drivers and shard runners: take a mark, run
    a campaign, snapshot what was added since — and, when the same work
    arrives back merged from shard workers, roll back to the mark
    before absorbing it (exact dedup whether the shards actually ran in
    other processes or inline in this one).
    """

    def __init__(self):
        self.spans: List[Span] = []

    def add(self, span: Span) -> Span:
        self.spans.append(span)
        return span

    def span(self, name: str, start: float,
             end: Optional[float] = None,
             attrs: Optional[Dict[str, object]] = None) -> Span:
        return self.add(Span(name, start, end, attrs))

    def mark(self) -> int:
        return len(self.spans)

    def rollback(self, mark: int) -> None:
        del self.spans[mark:]

    def snapshot_since(self, mark: int) -> List[dict]:
        """Canonical serialized copies of spans recorded after ``mark``."""
        recent = sorted(self.spans[mark:], key=lambda s: s.sort_key())
        return [span.as_dict() for span in recent]

    def absorb(self, span_dicts: List[dict]) -> None:
        for data in span_dicts:
            self.add(Span.from_dict(data))

    def session_spans(self) -> Dict[str, Span]:
        """query_id -> session span, over the whole buffer."""
        return {str(span.attrs.get("query_id", "")): span
                for span in self.spans if span.name == "session"}

    def clear(self) -> None:
        del self.spans[:]
