"""Exporters: JSONL span/metric log and Chrome trace-event JSON.

**JSONL schema v1** (locked by ``tests/test_obs_export.py``, the same
way the lint CLI locks its JSON schema).  One JSON object per line:

* line 1 — header: ``{"kind": "header", "schema": "repro.obs",
  "version": 1, "span_count": N, "metric_count": M}``;
* span records, flattened DFS preorder over the canonical span order:
  ``{"kind": "span", "id": int, "parent": int|null, "name": str,
  "start": float, "end": float, "attrs": {...},
  "events": [[time, name], ...]}`` — ids are dense preorder indexes,
  so the tree is reconstructable and, crucially, *deterministic*:
  a serial campaign and a sharded run export byte-identical files;
* metric records (see ``MetricsSnapshot.as_records``):
  ``{"kind": "metric", "type": "counter"|"gauge"|"histogram", ...}``.

**Chrome trace-event JSON** follows the trace-event format understood
by ``about:tracing`` and Perfetto: complete ("X") events for spans,
instant ("i") events for packet landmarks, metadata ("M") records
naming one thread per vantage point.  Timestamps are simulated
microseconds — the sim's t=0 is the trace's t=0.

Everything is serialized with sorted keys and compact separators; no
wall clocks, no entropy, no ids from memory addresses.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from repro.obs.metrics import MetricsSnapshot

SCHEMA_NAME = "repro.obs"
SCHEMA_VERSION = 1

#: Fields every flattened span record carries (schema v1).
SPAN_FIELDS = ("kind", "id", "parent", "name", "start", "end", "attrs",
               "events")


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def flatten_spans(span_dicts: List[dict]) -> List[dict]:
    """DFS-preorder flat records with dense ids and parent pointers."""
    records: List[dict] = []

    def walk(data: dict, parent: Optional[int]) -> None:
        span_id = len(records)
        records.append({"kind": "span", "id": span_id, "parent": parent,
                        "name": data["name"], "start": data["start"],
                        "end": data["end"],
                        "attrs": data.get("attrs", {}),
                        "events": data.get("events", [])})
        for child in data.get("children", []):
            walk(child, span_id)

    for data in span_dicts:
        walk(data, None)
    return records


def jsonl_lines(span_dicts: List[dict],
                snapshot: MetricsSnapshot) -> List[str]:
    """The full JSONL export as a list of lines (schema v1)."""
    span_records = flatten_spans(span_dicts)
    metric_records = snapshot.as_records()
    header = {"kind": "header", "schema": SCHEMA_NAME,
              "version": SCHEMA_VERSION,
              "span_count": len(span_records),
              "metric_count": len(metric_records)}
    return ([_dumps(header)]
            + [_dumps(record) for record in span_records]
            + [_dumps(record) for record in metric_records])


def write_jsonl(target: Union[str, IO[str]], span_dicts: List[dict],
                snapshot: MetricsSnapshot) -> None:
    lines = jsonl_lines(span_dicts, snapshot)
    if hasattr(target, "write"):
        target.write("\n".join(lines) + "\n")
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")


def read_jsonl(path: str) -> dict:
    """Parse an export back into header/span/metric record lists."""
    header = None
    spans: List[dict] = []
    metrics: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                header = record
            elif kind == "span":
                spans.append(record)
            elif kind == "metric":
                metrics.append(record)
    if header is None:
        raise ValueError("%s: not a repro.obs export (no header line)"
                         % path)
    if (header.get("schema") != SCHEMA_NAME
            or header.get("version") != SCHEMA_VERSION):
        raise ValueError(
            "%s: unsupported schema %r v%r (this build reads %s v%d)"
            % (path, header.get("schema"), header.get("version"),
               SCHEMA_NAME, SCHEMA_VERSION))
    return {"header": header, "spans": spans, "metrics": metrics}


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace_events(span_dicts: List[dict]) -> List[dict]:
    """Trace-event records for about:tracing / Perfetto."""
    vps = sorted({str(span.get("attrs", {}).get("vp", ""))
                  for span in span_dicts})
    tids = {vp: index + 1 for index, vp in enumerate(vps)}
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro simulated campaign"}},
    ]
    for vp in vps:
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": tids[vp],
                       "args": {"name": "vp %s" % vp if vp
                                else "(no vantage point)"}})

    def emit(data: dict, tid: int, cat: str) -> None:
        events.append({"name": data["name"], "cat": cat, "ph": "X",
                       "pid": 1, "tid": tid,
                       "ts": _us(data["start"]),
                       "dur": _us(data["end"] - data["start"]),
                       "args": data.get("attrs", {})})
        for time, name in data.get("events", []):
            events.append({"name": name, "cat": "landmark", "ph": "i",
                           "s": "t", "pid": 1, "tid": tid,
                           "ts": _us(time)})
        for child in data.get("children", []):
            emit(child, tid, "phase")

    for span in span_dicts:
        tid = tids[str(span.get("attrs", {}).get("vp", ""))]
        emit(span, tid, span["name"])
    return events


def write_chrome_trace(target: Union[str, IO[str]],
                       span_dicts: List[dict]) -> None:
    payload = {"traceEvents": chrome_trace_events(span_dicts),
               "displayTimeUnit": "ms"}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if hasattr(target, "write"):
        target.write(text + "\n")
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
