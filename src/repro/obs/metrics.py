"""Deterministic metrics: counters, gauges, and histograms.

The registry is the numeric half of the observability subsystem
(:mod:`repro.obs`): instrumentation sites increment named counters,
record high-watermark gauges, and feed histograms; campaigns snapshot
the registry and shard workers ship snapshots back for merging.

Two properties drive the design:

* **Exact, order-independent merging.**  Counters and histogram bucket
  counts are integers; histogram sums accumulate as
  :class:`fractions.Fraction` so that ``merge([a, b])`` and
  ``merge([b, a])`` — and a serial run versus any sharding of it —
  export bit-identical values.  (Float addition is not associative;
  exact rationals are.)
* **Scopes.**  Every metric is tagged ``sim`` or ``host``.  Sim-scope
  metrics are functions of the simulated world only (session counts,
  durations, FE peaks) and must merge to the serial values under
  sharding; host-scope metrics describe *this process's* work (engine
  events, replay hits, TCP retransmits) and legitimately differ per
  shard — e.g. connection warm-up is re-simulated in every shard.

Nothing here reads clocks, entropy, or hash order; the module passes
the simlint determinism pack unsuppressed.
"""

from __future__ import annotations

from bisect import bisect_left
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

#: Metric scopes (see module docstring).
SCOPE_SIM = "sim"
SCOPE_HOST = "host"

#: Default histogram bounds: seconds, spanning RTT-ish to campaign-ish.
DEFAULT_BOUNDS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 5.0)


class Histogram:
    """Fixed-bound histogram with an exact (Fraction) sum.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow
    bucket catches the rest.  ``total`` is kept as an exact rational so
    merge order can never change the exported sum.
    """

    __slots__ = ("bounds", "counts", "count", "total", "minimum",
                 "maximum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = Fraction(0)
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += Fraction(value)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return float(self.total / self.count)

    def state(self) -> dict:
        """An immutable-ish, picklable copy of the histogram state."""
        return {"bounds": self.bounds, "counts": tuple(self.counts),
                "count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum}

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        hist = cls(state["bounds"])
        hist.counts = list(state["counts"])
        hist.count = state["count"]
        hist.total = Fraction(state["total"])
        hist.minimum = state["min"]
        hist.maximum = state["max"]
        return hist


def _merge_hist_states(states: Sequence[dict]) -> dict:
    bounds = states[0]["bounds"]
    for state in states[1:]:
        if state["bounds"] != bounds:
            raise ValueError("cannot merge histograms with different "
                             "bounds: %r vs %r" % (bounds, state["bounds"]))
    counts = [0] * (len(bounds) + 1)
    count, total = 0, Fraction(0)
    minimum = maximum = None
    for state in states:
        for i, c in enumerate(state["counts"]):
            counts[i] += c
        count += state["count"]
        total += state["total"]
        if state["min"] is not None:
            minimum = state["min"] if minimum is None \
                else min(minimum, state["min"])
        if state["max"] is not None:
            maximum = state["max"] if maximum is None \
                else max(maximum, state["max"])
    return {"bounds": bounds, "counts": tuple(counts), "count": count,
            "total": total, "min": minimum, "max": maximum}


class MetricsSnapshot:
    """A picklable copy of a registry's state at one instant.

    Snapshots are what crosses process boundaries: shard workers return
    them, :meth:`merge` aggregates them, and :meth:`subtract` turns two
    snapshots into a per-campaign delta.
    """

    __slots__ = ("counters", "gauges", "histograms", "scopes")

    def __init__(self, counters: Dict[str, int],
                 gauges: Dict[str, float],
                 histograms: Dict[str, dict],
                 scopes: Dict[str, str]):
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms
        self.scopes = scopes

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls({}, {}, {}, {})

    @classmethod
    def merge(cls, snapshots: Sequence["MetricsSnapshot"]
              ) -> "MetricsSnapshot":
        """Order-independent aggregate: counters add, gauges take the
        max (they are high-watermarks), histograms add exactly."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        hist_states: Dict[str, List[dict]] = {}
        scopes: Dict[str, str] = {}
        for snap in snapshots:
            for name, value in snap.counters.items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap.gauges.items():
                gauges[name] = max(gauges.get(name, value), value)
            for name, state in snap.histograms.items():
                hist_states.setdefault(name, []).append(state)
            scopes.update(snap.scopes)
        histograms = {name: _merge_hist_states(states)
                      for name, states in hist_states.items()}
        return cls(counters, gauges, histograms, scopes)

    def subtract(self, base: "MetricsSnapshot") -> "MetricsSnapshot":
        """The delta accumulated since ``base`` was taken.

        Counters and histogram bucket counts subtract exactly; a
        delta histogram's min/max are taken from the current totals
        (exact whenever the histogram was empty at ``base``, which is
        how campaign deltas use this).  Gauges keep their current
        values when they changed since ``base``.
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - base.counters.get(name, 0)
            if delta:
                counters[name] = delta
        gauges = {name: value for name, value in self.gauges.items()
                  if base.gauges.get(name) != value}
        histograms = {}
        for name, state in self.histograms.items():
            prior = base.histograms.get(name)
            if prior is None:
                if state["count"]:
                    histograms[name] = state
                continue
            count = state["count"] - prior["count"]
            if count <= 0:
                continue
            histograms[name] = {
                "bounds": state["bounds"],
                "counts": tuple(c - p for c, p in
                                zip(state["counts"], prior["counts"])),
                "count": count,
                "total": state["total"] - prior["total"],
                "min": state["min"], "max": state["max"]}
        scopes = {name: scope for name, scope in self.scopes.items()
                  if name in counters or name in gauges
                  or name in histograms}
        return MetricsSnapshot(counters, gauges, histograms, scopes)

    def scoped(self, scope: str) -> "MetricsSnapshot":
        """Only the metrics tagged with ``scope`` (``sim``/``host``)."""
        keep = lambda name: self.scopes.get(name) == scope
        return MetricsSnapshot(
            {n: v for n, v in self.counters.items() if keep(n)},
            {n: v for n, v in self.gauges.items() if keep(n)},
            {n: v for n, v in self.histograms.items() if keep(n)},
            {n: s for n, s in self.scopes.items() if keep(n)})

    def as_records(self) -> List[dict]:
        """JSON-ready metric records, sorted by (type, name).

        Histogram sums are exported as ``float(total)`` — the nearest
        double of an exact rational, hence identical no matter what
        order the underlying observations merged in.
        """
        records = []
        for name in sorted(self.counters):
            records.append({"kind": "metric", "type": "counter",
                            "name": name,
                            "scope": self.scopes.get(name, SCOPE_HOST),
                            "value": self.counters[name]})
        for name in sorted(self.gauges):
            records.append({"kind": "metric", "type": "gauge",
                            "name": name,
                            "scope": self.scopes.get(name, SCOPE_HOST),
                            "value": self.gauges[name]})
        for name in sorted(self.histograms):
            state = self.histograms[name]
            records.append({"kind": "metric", "type": "histogram",
                            "name": name,
                            "scope": self.scopes.get(name, SCOPE_HOST),
                            "count": state["count"],
                            "sum": float(state["total"]),
                            "min": state["min"], "max": state["max"],
                            "bounds": list(state["bounds"]),
                            "counts": list(state["counts"])})
        return records


class MetricsRegistry:
    """The live, mutable registry instrumentation sites write into."""

    def __init__(self):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._scopes: Dict[str, str] = {}

    # -- write paths ---------------------------------------------------
    def inc(self, name: str, value: int = 1,
            scope: str = SCOPE_HOST) -> None:
        self._counters[name] = self._counters.get(name, 0) + value
        self._scopes.setdefault(name, scope)

    def gauge_max(self, name: str, value: float,
                  scope: str = SCOPE_HOST) -> None:
        """Record a high-watermark gauge (merge semantics: max)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value
        self._scopes.setdefault(name, scope)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None,
                scope: str = SCOPE_HOST) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(bounds if bounds is not None
                             else DEFAULT_BOUNDS)
            self._histograms[name] = hist
            self._scopes.setdefault(name, scope)
        hist.observe(value)

    # -- snapshot protocol ---------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            dict(self._counters), dict(self._gauges),
            {name: hist.state()
             for name, hist in self._histograms.items()},
            dict(self._scopes))

    def restore(self, snapshot: MetricsSnapshot) -> None:
        """Reset the live state to ``snapshot`` (rollback)."""
        self._counters = dict(snapshot.counters)
        self._gauges = dict(snapshot.gauges)
        self._histograms = {name: Histogram.from_state(state)
                            for name, state in
                            snapshot.histograms.items()}
        self._scopes = dict(snapshot.scopes)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a (shard's) snapshot into the live state."""
        for name, value in snapshot.counters.items():
            self.inc(name, value, snapshot.scopes.get(name, SCOPE_HOST))
        for name, value in snapshot.gauges.items():
            self.gauge_max(name, value,
                           snapshot.scopes.get(name, SCOPE_HOST))
        for name, state in snapshot.histograms.items():
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = Histogram.from_state(state)
                self._scopes.setdefault(
                    name, snapshot.scopes.get(name, SCOPE_HOST))
            else:
                merged = _merge_hist_states([hist.state(), state])
                self._histograms[name] = Histogram.from_state(merged)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._scopes.clear()
