"""HTTP server on top of the simulated TCP stack.

Applications register a *handler* called as ``handler(request, responder)``
for every parsed request.  The :class:`Responder` supports the streaming
pattern at the heart of the paper: a front-end server calls
:meth:`Responder.send_head` + :meth:`Responder.send_body` with the cached
static portion immediately, then appends the dynamic portion whenever the
back-end delivers it, then :meth:`Responder.finish`.

Responses default to chunked transfer encoding (what the 2011 search
services used); a fixed Content-Length mode is available too.  Persistent
connections are supported; requests on one connection are served strictly
in order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.http.message import (
    HttpError,
    HttpRequest,
    HttpResponse,
    RequestParser,
    encode_chunk,
    encode_last_chunk,
)
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection, TcpApp
from repro.tcp.host import TcpHost

Handler = Callable[[HttpRequest, "Responder"], None]


class Responder:
    """Streams one HTTP response onto a connection.

    Created by the server machinery; handed to the application handler.
    The handler must eventually call either :meth:`respond` (one-shot) or
    the :meth:`send_head` / :meth:`send_body` / :meth:`finish` sequence.
    """

    def __init__(self, server_conn: "_ServerConnection",
                 request: HttpRequest):
        self.request = request
        self._server_conn = server_conn
        self._head_sent = False
        self._finished = False
        self._chunked = True

    @property
    def finished(self) -> bool:
        return self._finished

    def send_head(self, status: int = 200,
                  headers: Optional[Dict[str, str]] = None,
                  content_length: Optional[int] = None) -> None:
        """Send the status line and headers.

        With ``content_length`` the body is sent raw and must total
        exactly that many bytes; otherwise chunked encoding is used.
        """
        if self._head_sent:
            raise HttpError("response head already sent")
        self._head_sent = True
        response = HttpResponse(status=status, headers=dict(headers or {}))
        if content_length is not None:
            self._chunked = False
            response.headers.setdefault("Content-Length",
                                        str(content_length))
        else:
            response.headers.setdefault("Transfer-Encoding", "chunked")
        self._server_conn.write(response.encode_head())

    def send_body(self, data: bytes) -> None:
        """Send a piece of the response body."""
        if not self._head_sent:
            raise HttpError("send_head must precede send_body")
        if self._finished:
            raise HttpError("response already finished")
        if not data:
            return
        if self._chunked:
            self._server_conn.write(encode_chunk(data))
        else:
            self._server_conn.write(data)

    def finish(self) -> None:
        """Complete the response; the connection may serve the next request."""
        if not self._head_sent:
            raise HttpError("finish before send_head")
        if self._finished:
            return
        self._finished = True
        if self._chunked:
            self._server_conn.write(encode_last_chunk())
        self._server_conn.response_done(self)

    def respond(self, response: HttpResponse) -> None:
        """One-shot convenience: full response with Content-Length."""
        self.send_head(response.status, response.headers,
                       content_length=len(response.body))
        if response.body:
            self.send_body(response.body)
        self.finish()


class _ServerConnection(TcpApp):
    """Per-connection server state: request parsing and ordering."""

    def __init__(self, server: "HttpServer"):
        self.server = server
        self.parser = RequestParser()
        self.conn: Optional[Connection] = None
        self._queue: List[HttpRequest] = []
        self._active: Optional[Responder] = None
        self._closing = False

    # TcpApp interface -------------------------------------------------
    def on_established(self, conn: Connection) -> None:
        self.conn = conn
        self.server.connections_accepted += 1

    def on_data(self, conn: Connection, data: bytes) -> None:
        try:
            requests = self.parser.feed(data)
        except HttpError:
            self.server.protocol_errors += 1
            conn.abort("malformed request")
            return
        for request in requests:
            self._queue.append(request)
        self._serve_next()

    def on_close(self, conn: Connection) -> None:
        self._closing = True
        if self._active is None and not self._queue:
            conn.close()

    def on_error(self, conn: Connection, message: str) -> None:
        pass

    # response sequencing ----------------------------------------------
    def _serve_next(self) -> None:
        if self._active is not None or not self._queue:
            return
        request = self._queue.pop(0)
        responder = Responder(self, request)
        self._active = responder
        self.server.requests_served += 1
        self.server.handler(request, responder)

    def response_done(self, responder: Responder) -> None:
        if responder is not self._active:
            raise HttpError("out-of-order response completion")
        self._active = None
        if self._queue:
            self._serve_next()
        elif self._closing and self.conn is not None:
            self.conn.close()

    def write(self, data: bytes) -> None:
        if self.conn is None:
            raise HttpError("connection not established")
        self.conn.send(data)


class HttpServer:
    """Binds a handler to a port on a host's TCP stack."""

    def __init__(self, tcp_host: TcpHost, port: int, handler: Handler,
                 config: Optional[TcpConfig] = None):
        self.handler = handler
        self.port = port
        self.requests_served = 0
        self.connections_accepted = 0
        self.protocol_errors = 0
        tcp_host.listen(port, lambda: _ServerConnection(self),
                        config=config)
