"""HTTP/1.1 message framing.

The services measured by the paper spoke HTTP/1.1 with chunked transfer
encoding for dynamically generated bodies — the natural encoding when a
front-end server wants to flush a cached static prefix immediately and
append back-end content whenever it arrives.  This module implements:

* :class:`HttpRequest` / :class:`HttpResponse` value objects;
* wire encoding (request line / status line, headers, chunked framing);
* incremental parsers that accept arbitrary byte-stream fragmentation,
  because the TCP layer delivers whatever segment boundaries occurred.

Only what the reproduction needs is implemented: GET requests,
Content-Length and chunked bodies, and persistent connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

CRLF = b"\r\n"

#: Reason phrases for status codes used by the simulated services.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Raised on malformed HTTP wire data."""


def _encode_headers(headers: Dict[str, str]) -> bytes:
    lines = []
    for name, value in headers.items():
        if "\r" in name or "\n" in name or "\r" in str(value) or "\n" in str(value):
            raise HttpError("header injection attempt: %r" % name)
        lines.append(("%s: %s" % (name, value)).encode("latin-1"))
    return CRLF.join(lines)


def _parse_headers(block: bytes) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise HttpError("malformed header line %r" % line)
        name, _, value = line.partition(b":")
        headers[name.decode("latin-1").strip()] = \
            value.decode("latin-1").strip()
    return headers


@dataclass
class HttpRequest:
    """An HTTP request."""

    method: str = "GET"
    path: str = "/"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def encode(self) -> bytes:
        headers = dict(self.headers)
        if self.body:
            headers.setdefault("Content-Length", str(len(self.body)))
        head = "%s %s %s" % (self.method, self.path, self.version)
        parts = [head.encode("latin-1")]
        encoded_headers = _encode_headers(headers)
        if encoded_headers:
            parts.append(encoded_headers)
        return CRLF.join(parts) + CRLF + CRLF + self.body

    @property
    def query(self) -> Dict[str, str]:
        """Parsed query-string parameters of :attr:`path`."""
        if "?" not in self.path:
            return {}
        out = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            out[_url_unquote(key)] = _url_unquote(value)
        return out


@dataclass
class HttpResponse:
    """A fully reassembled HTTP response."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def encode_head(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        head = "%s %d %s" % (self.version, self.status, reason)
        parts = [head.encode("latin-1")]
        encoded_headers = _encode_headers(self.headers)
        if encoded_headers:
            parts.append(encoded_headers)
        return CRLF.join(parts) + CRLF + CRLF

    def encode(self) -> bytes:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        clone = HttpResponse(self.status, headers, b"", self.version)
        return clone.encode_head() + self.body


def encode_chunk(data: bytes) -> bytes:
    """Encode one chunk in chunked transfer encoding."""
    return b"%x\r\n%s\r\n" % (len(data), data)


def encode_last_chunk() -> bytes:
    """The zero-length terminating chunk."""
    return b"0\r\n\r\n"


def _url_quote(text: str) -> str:
    safe = ("abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_.~")
    out = []
    for ch in text:
        if ch in safe:
            out.append(ch)
        elif ch == " ":
            out.append("+")
        else:
            out.extend("%%%02X" % b for b in ch.encode("utf-8"))
    return "".join(out)


def _url_unquote(text: str) -> str:
    out = bytearray()
    i = 0
    raw = text.encode("latin-1")
    while i < len(raw):
        byte = raw[i:i + 1]
        if byte == b"+":
            out.extend(b" ")
            i += 1
        elif byte == b"%" and i + 2 < len(raw) + 1:
            try:
                out.append(int(raw[i + 1:i + 3], 16))
                i += 3
            except ValueError:
                out.extend(byte)
                i += 1
        else:
            out.extend(byte)
            i += 1
    return out.decode("utf-8", errors="replace")


def build_query_path(base: str, params: Dict[str, str]) -> str:
    """Build ``/search?q=...`` style paths with proper escaping."""
    if not params:
        return base
    encoded = "&".join("%s=%s" % (_url_quote(k), _url_quote(v))
                       for k, v in params.items())
    return "%s?%s" % (base, encoded)


# ---------------------------------------------------------------------------
# incremental parsers
# ---------------------------------------------------------------------------
class _HeadParser:
    """Shared machinery: accumulate bytes until the blank line."""

    MAX_HEAD = 64 * 1024

    def __init__(self):
        self._buffer = bytearray()

    def feed_until_head(self, data: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Add data; return (head_block, remainder) once complete."""
        self._buffer.extend(data)
        index = self._buffer.find(CRLF + CRLF)
        if index < 0:
            if len(self._buffer) > self.MAX_HEAD:
                raise HttpError("header block too large")
            return None
        head = bytes(self._buffer[:index])
        remainder = bytes(self._buffer[index + 4:])
        self._buffer.clear()
        return head, remainder


class RequestParser:
    """Incremental parser for a stream of requests on one connection."""

    def __init__(self):
        self._head = _HeadParser()
        self._pending: Optional[HttpRequest] = None
        self._body_remaining = 0
        self._body = bytearray()
        self._leftover = b""

    def feed(self, data: bytes) -> List[HttpRequest]:
        """Consume bytes; return any fully parsed requests."""
        complete: List[HttpRequest] = []
        data = self._leftover + data
        self._leftover = b""
        while data or self._ready_to_finish():
            if self._pending is None:
                result = self._head.feed_until_head(data)
                if result is None:
                    return complete
                head, data = result
                self._start_request(head)
            if self._body_remaining > 0:
                take = data[:self._body_remaining]
                self._body.extend(take)
                self._body_remaining -= len(take)
                data = data[len(take):]
            if self._body_remaining == 0 and self._pending is not None:
                self._pending.body = bytes(self._body)
                complete.append(self._pending)
                self._pending = None
                self._body.clear()
            elif not data:
                break
        self._leftover = data
        return complete

    def _ready_to_finish(self) -> bool:
        return self._pending is not None and self._body_remaining == 0

    def _start_request(self, head: bytes) -> None:
        lines = head.split(CRLF, 1)
        request_line = lines[0].decode("latin-1")
        fields = request_line.split(" ")
        if len(fields) != 3:
            raise HttpError("malformed request line %r" % request_line)
        method, path, version = fields
        headers = _parse_headers(lines[1]) if len(lines) > 1 else {}
        self._pending = HttpRequest(method=method, path=path,
                                    headers=headers, version=version)
        self._body_remaining = int(headers.get("Content-Length", "0"))


class ResponseParser:
    """Incremental parser for a stream of responses on one connection.

    Emits *events* rather than only complete messages, because the
    measurement layer needs to observe body bytes as they arrive (the
    static prefix of a search response arrives long before the dynamic
    part).  Events are ``("head", HttpResponse)``, ``("body", bytes)`` and
    ``("end", HttpResponse)`` — the response object in "end" carries the
    full body.
    """

    _IDLE, _BODY_LENGTH, _CHUNK_SIZE, _CHUNK_DATA, _CHUNK_TRAILER = range(5)

    def __init__(self):
        self._head = _HeadParser()
        self._state = self._IDLE
        self._response: Optional[HttpResponse] = None
        self._body = bytearray()
        self._remaining = 0
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[str, object]]:
        """Consume bytes and return parse events in order."""
        events: List[Tuple[str, object]] = []
        self._buffer.extend(data)
        progress = True
        while progress:
            progress = False
            if self._state == self._IDLE:
                result = self._head.feed_until_head(bytes(self._buffer))
                self._buffer.clear()
                if result is None:
                    break
                head, remainder = result
                self._buffer.extend(remainder)
                self._start_response(head)
                events.append(("head", self._response))
                progress = True
            elif self._state == self._BODY_LENGTH:
                progress = self._feed_length_body(events)
            elif self._state == self._CHUNK_SIZE:
                progress = self._feed_chunk_size()
            elif self._state == self._CHUNK_DATA:
                progress = self._feed_chunk_data(events)
            elif self._state == self._CHUNK_TRAILER:
                progress = self._feed_chunk_trailer(events)
        return events

    # ------------------------------------------------------------------
    def _start_response(self, head: bytes) -> None:
        lines = head.split(CRLF, 1)
        status_line = lines[0].decode("latin-1")
        fields = status_line.split(" ", 2)
        if len(fields) < 2:
            raise HttpError("malformed status line %r" % status_line)
        version, status = fields[0], int(fields[1])
        headers = _parse_headers(lines[1]) if len(lines) > 1 else {}
        self._response = HttpResponse(status=status, headers=headers,
                                      version=version)
        self._body = bytearray()
        if headers.get("Transfer-Encoding", "").lower() == "chunked":
            self._state = self._CHUNK_SIZE
        else:
            self._remaining = int(headers.get("Content-Length", "0"))
            self._state = self._BODY_LENGTH

    def _feed_length_body(self, events) -> bool:
        if self._remaining == 0:
            self._finish(events)
            return True
        if not self._buffer:
            return False
        take = bytes(self._buffer[:self._remaining])
        del self._buffer[:len(take)]
        self._remaining -= len(take)
        self._body.extend(take)
        events.append(("body", take))
        if self._remaining == 0:
            self._finish(events)
        return True

    def _feed_chunk_size(self) -> bool:
        index = self._buffer.find(CRLF)
        if index < 0:
            return False
        line = bytes(self._buffer[:index]).split(b";")[0].strip()
        del self._buffer[:index + 2]
        try:
            self._remaining = int(line, 16)
        except ValueError:
            raise HttpError("bad chunk size %r" % line)
        self._state = (self._CHUNK_TRAILER if self._remaining == 0
                       else self._CHUNK_DATA)
        return True

    def _feed_chunk_data(self, events) -> bool:
        if not self._buffer:
            return False
        if self._remaining > 0:
            take = bytes(self._buffer[:self._remaining])
            del self._buffer[:len(take)]
            self._remaining -= len(take)
            self._body.extend(take)
            events.append(("body", take))
            if self._remaining > 0:
                return True
        # Expect the CRLF after the chunk payload.
        if len(self._buffer) < 2:
            return False
        if bytes(self._buffer[:2]) != CRLF:
            raise HttpError("missing CRLF after chunk")
        del self._buffer[:2]
        self._state = self._CHUNK_SIZE
        return True

    def _feed_chunk_trailer(self, events) -> bool:
        # No trailer support: expect the final CRLF.
        if len(self._buffer) < 2:
            return False
        if bytes(self._buffer[:2]) != CRLF:
            raise HttpError("unsupported chunked trailer")
        del self._buffer[:2]
        self._finish(events)
        return True

    def _finish(self, events) -> None:
        response = self._response
        response.body = bytes(self._body)
        events.append(("end", response))
        self._response = None
        self._state = self._IDLE
        self._body = bytearray()
