"""HTTP client on top of the simulated TCP stack.

Two client shapes are provided:

* :class:`HttpFetch` — one request on a fresh connection, the shape of the
  paper's query emulator (every search query opened a new connection,
  including in the "search as you type" mode, see Section 6);
* :class:`PersistentHttpClient` — a long-lived connection issuing
  requests strictly in sequence, the shape of a front-end server's warm
  connection to its back-end data center.

Both expose callback hooks (``on_head``, ``on_body``, ``on_complete``,
``on_failure``) so callers can observe partial delivery — essential for
measuring when the first/last static and dynamic bytes arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.http.message import HttpError, HttpRequest, HttpResponse, ResponseParser
from repro.net.address import Endpoint
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import CongestionController
from repro.tcp.connection import Connection, TcpApp
from repro.tcp.host import TcpHost


@dataclass
class RequestHooks:
    """Callback bundle for one HTTP request."""

    on_head: Optional[Callable[[HttpResponse], None]] = None
    on_body: Optional[Callable[[bytes], None]] = None
    on_complete: Optional[Callable[[HttpResponse], None]] = None
    on_failure: Optional[Callable[[str], None]] = None

    def head(self, response: HttpResponse) -> None:
        if self.on_head:
            self.on_head(response)

    def body(self, data: bytes) -> None:
        if self.on_body:
            self.on_body(data)

    def complete(self, response: HttpResponse) -> None:
        if self.on_complete:
            self.on_complete(response)

    def failure(self, message: str) -> None:
        if self.on_failure:
            self.on_failure(message)


class HttpFetch(TcpApp):
    """One GET on a dedicated connection.

    The connection is opened immediately; the request goes out with the
    handshake ACK; the connection is closed once the response completes.
    """

    def __init__(self, tcp_host: TcpHost, remote: Endpoint,
                 request: HttpRequest, hooks: Optional[RequestHooks] = None,
                 config: Optional[TcpConfig] = None):
        self.request = request
        self.hooks = hooks or RequestHooks()
        self.parser = ResponseParser()
        self.response: Optional[HttpResponse] = None
        self.failed: Optional[str] = None
        self._complete = False
        self.conn: Connection = tcp_host.connect(remote, self,
                                                 config=config)

    @property
    def complete(self) -> bool:
        return self._complete

    # TcpApp interface -------------------------------------------------
    def on_established(self, conn: Connection) -> None:
        conn.send(self.request.encode())

    def on_data(self, conn: Connection, data: bytes) -> None:
        try:
            events = self.parser.feed(data)
        except HttpError as exc:
            self.failed = str(exc)
            self.hooks.failure(self.failed)
            conn.abort("malformed response")
            return
        for kind, payload in events:
            if kind == "head":
                self.hooks.head(payload)
            elif kind == "body":
                self.hooks.body(payload)
            elif kind == "end":
                self.response = payload
                self._complete = True
                self.hooks.complete(payload)
                conn.close()

    def on_close(self, conn: Connection) -> None:
        if not self._complete and self.failed is None:
            self.failed = "connection closed before response completed"
            self.hooks.failure(self.failed)

    def on_error(self, conn: Connection, message: str) -> None:
        if not self._complete and self.failed is None:
            self.failed = message
            self.hooks.failure(message)


@dataclass
class _PendingRequest:
    request: HttpRequest
    hooks: RequestHooks
    issued_at: Optional[float] = None


class PersistentHttpClient(TcpApp):
    """A persistent connection carrying sequential request/response pairs.

    This models the FE-BE leg of split TCP: the connection is established
    once (optionally warmed with an initial request) and its congestion
    window carries over between requests, eliminating slow-start ramp-up
    for every user query — the paper's "second key aspect".
    """

    def __init__(self, tcp_host: TcpHost, remote: Endpoint,
                 config: Optional[TcpConfig] = None,
                 controller: Optional[CongestionController] = None):
        self.remote = remote
        self.parser = ResponseParser()
        self._queue: List[_PendingRequest] = []
        self._inflight: Optional[_PendingRequest] = None
        self._established = False
        self.requests_completed = 0
        self.conn: Connection = tcp_host.connect(remote, self, config=config,
                                                 controller=controller)

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self._established

    @property
    def busy(self) -> bool:
        return self._inflight is not None

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._inflight else 0)

    def request(self, request: HttpRequest,
                hooks: Optional[RequestHooks] = None) -> None:
        """Enqueue a request; it is sent when the connection is free."""
        self._queue.append(_PendingRequest(request, hooks or RequestHooks()))
        self._pump()

    def _pump(self) -> None:
        if (not self._established or self._inflight is not None
                or not self._queue):
            return
        pending = self._queue.pop(0)
        pending.issued_at = self.conn.sim.now
        self._inflight = pending
        self.conn.send(pending.request.encode())

    # TcpApp interface -------------------------------------------------
    def on_established(self, conn: Connection) -> None:
        self._established = True
        self._pump()

    def on_data(self, conn: Connection, data: bytes) -> None:
        try:
            events = self.parser.feed(data)
        except HttpError as exc:
            self._fail("malformed response: %s" % exc)
            conn.abort("malformed response")
            return
        for kind, payload in events:
            if self._inflight is None:
                continue  # stray data after failure
            if kind == "head":
                self._inflight.hooks.head(payload)
            elif kind == "body":
                self._inflight.hooks.body(payload)
            elif kind == "end":
                done = self._inflight
                self._inflight = None
                self.requests_completed += 1
                done.hooks.complete(payload)
                self._pump()

    def on_close(self, conn: Connection) -> None:
        self._fail("peer closed persistent connection")

    def on_error(self, conn: Connection, message: str) -> None:
        self._fail(message)

    def _fail(self, message: str) -> None:
        self._established = False
        failed, self._inflight = self._inflight, None
        if failed is not None:
            failed.hooks.failure(message)
        for pending in self._queue:
            pending.hooks.failure(message)
        self._queue.clear()
