"""HTTP/1.1 over the simulated TCP stack (chunked streaming supported)."""

from repro.http.client import HttpFetch, PersistentHttpClient, RequestHooks
from repro.http.message import (
    HttpError,
    HttpRequest,
    HttpResponse,
    RequestParser,
    ResponseParser,
    build_query_path,
    encode_chunk,
    encode_last_chunk,
)
from repro.http.server import Handler, HttpServer, Responder

__all__ = [
    "Handler",
    "HttpError",
    "HttpFetch",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "PersistentHttpClient",
    "RequestHooks",
    "RequestParser",
    "Responder",
    "ResponseParser",
    "build_query_path",
    "encode_chunk",
    "encode_last_chunk",
]
