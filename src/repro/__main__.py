"""Command-line entry point: regenerate the paper's evaluation.

Runs every figure/section experiment at the requested scale and prints
the full report.

Usage::

    python -m repro                     # all experiments, tiny scale
    python -m repro --scale small       # larger campaign
    python -m repro fig5 fig9           # a subset
    python -m repro --jobs 4            # experiments in parallel
    python -m repro fig678 --shards 4   # shard the Dataset-A campaign
    python -m repro lint src/repro      # static analysis (simlint)
    python -m repro workload --users 10000 --shards 4   # open-loop
    python -m repro workload --sweep-alpha 0.6,0.8,1.0,1.2
    python -m repro fig678 --trace t.jsonl --metrics   # observability
    python -m repro report t.jsonl      # summarize a trace export
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.experiments import (
    ExperimentScale,
    run_cache_ablation,
    run_cache_lab,
    run_idle_reset_ablation,
    run_keyword_effects,
    run_residential,
    run_caching_experiment,
    run_dataset_a_experiment,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_interactive,
    run_loss_ablation,
    run_placement_ablation,
    run_split_tcp_ablation,
    run_validation,
)
from repro.experiments import report


def _dataset_a_bundle(scale):
    experiment = run_dataset_a_experiment(scale)
    return "\n\n".join([
        report.render_fig6(run_fig6(experiment=experiment)),
        report.render_fig7(run_fig7(experiment=experiment)),
        report.render_fig8(run_fig8(experiment=experiment)),
    ])


#: name -> callable(scale) -> rendered text
EXPERIMENTS = {
    "fig3": lambda scale: report.render_fig3(run_fig3(scale)),
    "fig4": lambda scale: report.render_fig4(run_fig4(scale)),
    "fig5": lambda scale: report.render_fig5(run_fig5(scale)),
    "fig678": _dataset_a_bundle,
    "fig9": lambda scale: report.render_fig9(run_fig9(scale)),
    "caching": lambda scale: "\n\n".join([
        report.render_caching(run_caching_experiment(scale)),
        report.render_caching(run_caching_experiment(
            scale, fe_caches_results=True))]),
    "cachelab": lambda scale: report.render_cache_lab(
        run_cache_lab(scale)),
    "bounds": lambda scale: report.render_validation(
        run_validation(scale)),
    "interactive": lambda scale: report.render_interactive(
        run_interactive(scale)),
    "ablations": lambda scale: "\n".join([
        report.render_split_tcp(run_split_tcp_ablation(scale)),
        report.render_cache_ablation(run_cache_ablation(scale)),
        report.render_placement(run_placement_ablation(scale)),
        report.render_idle_reset(run_idle_reset_ablation(scale)),
        report.render_loss(run_loss_ablation(scale))]),
    "residential": lambda scale: _render_residential(scale),
    "keywords": lambda scale: _render_keyword_effects(scale),
    "whatif": lambda scale: _render_whatif(scale),
    "load": lambda scale: _render_load(scale),
}


def _render_residential(scale):
    from repro.experiments.residential import render_residential
    return render_residential(run_residential(scale))


def _render_keyword_effects(scale):
    from repro.experiments.keyword_effects import render_keyword_effects
    return render_keyword_effects(run_keyword_effects(scale))


def _render_whatif(scale):
    from repro.experiments.whatif import render_whatif, run_whatif
    return render_whatif(run_whatif(scale))


def _render_load(scale):
    from repro.experiments.load_sensitivity import (
        render_load_sensitivity,
        run_load_sensitivity,
    )
    return render_load_sensitivity(run_load_sensitivity(scale))


def _experiment_worker(task):
    """Run one experiment (pool worker; must stay module-level)."""
    name, scale = task
    # Wall-clock here times the CLI itself, not the simulation.
    start = time.time()  # simlint: ignore[DET001]
    # The rollback for this mark happens in main(), which owns the
    # parent-side mark; the worker only ships its snapshot delta.
    mark = obs.fork_mark() if obs.enabled() else None  # simlint: ignore[SHARD003]
    text = EXPERIMENTS[name](scale)
    payload = None
    if mark is not None:
        # Ship this experiment's trace/metric delta back to the parent
        # (--jobs workers are separate processes; inline runs produce
        # the same payload and the parent dedups via rollback).
        payload = (obs.runtime.tracer.snapshot_since(mark[0]),
                   obs.runtime.metrics.snapshot().subtract(mark[1]))
    elapsed = time.time() - start  # simlint: ignore[DET001]
    return name, text, elapsed, payload


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "report":
        from repro.obs.report import main as report_main
        return report_main(argv[1:])
    if argv and argv[0] == "workload":
        from repro.workload.cli import main as workload_main
        return workload_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures from the simulated "
                    "measurement universe.  The `lint` subcommand runs "
                    "simlint instead (see `python -m repro lint --help`).")
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="subset to run (default: all); one of: %s"
                             % ", ".join(EXPERIMENTS))
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "paper"))
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run the selected experiments in up to N "
                             "worker processes (default: 1, inline)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="shard campaign simulations across N "
                             "processes where supported (Dataset A; "
                             "same results as serial, see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--no-replay-cache", action="store_true",
                        help="disable the session-replay cache "
                             "(repro.sim.replay), which memoizes "
                             "repeated query timelines; equivalent to "
                             "REPRO_REPLAY_CACHE=0.  The cache changes "
                             "no results, only wall-clock time (see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--tier", default=None,
                        choices=("analytic", "packet", "auto"),
                        help="campaign execution tier (repro.sim."
                             "analytic): 'packet' simulates every "
                             "session (default), 'auto' serves "
                             "admitted sessions from the closed-form "
                             "model with seeded packet-level validation "
                             "and divergence gating, 'analytic' trusts "
                             "the model outright; equivalent to "
                             "REPRO_TIER (see docs/PERFORMANCE.md)")
    parser.add_argument("--trace", metavar="PATH",
                        help="enable observability (repro.obs) and "
                             "write the JSONL span/metric export here; "
                             "equivalent to REPRO_TRACE=PATH (see "
                             "docs/OBSERVABILITY.md)")
    parser.add_argument("--trace-chrome", metavar="PATH",
                        help="enable observability and write a Chrome "
                             "trace-event JSON viewable in "
                             "about:tracing / Perfetto")
    parser.add_argument("--metrics", action="store_true",
                        help="enable observability and print the "
                             "plain-text campaign summary (span "
                             "counts, engine/TCP/replay-cache "
                             "metrics) after the experiments")
    args = parser.parse_args(argv)

    unknown = [name for name in args.experiments
               if name not in EXPERIMENTS]
    if unknown:
        parser.error("unknown experiment(s) %s; choose from %s"
                     % (", ".join(unknown), ", ".join(EXPERIMENTS)))
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        # Plumbed via the environment so every runner (and the worker
        # processes of --jobs) sees it without new signatures.
        os.environ["REPRO_CAMPAIGN_SHARDS"] = str(args.shards)
    if args.no_replay_cache:
        os.environ["REPRO_REPLAY_CACHE"] = "0"
    if args.tier is not None:
        # Plumbed via the environment so drivers and campaign shards
        # pick it up without new signatures on every runner.
        os.environ["REPRO_TIER"] = args.tier
    trace_path = args.trace or obs.env_trace_path()
    if args.trace or args.trace_chrome or args.metrics:
        # Plumbed via the environment too so worker processes of any
        # start method re-assert the flag (fork inherits it anyway).
        os.environ.setdefault("REPRO_TRACE", "1")
        obs.enable()
    scale = getattr(ExperimentScale, args.scale)(seed=args.seed)
    names = args.experiments or list(EXPERIMENTS)

    tasks = [(name, scale) for name in names]
    obs_mark = obs.fork_mark() if obs.enabled() else None
    if args.jobs > 1:
        from repro.parallel import map_shards
        results = map_shards(_experiment_worker, tasks,
                             processes=args.jobs)
    else:
        # Inline keeps output streaming as each experiment finishes.
        results = map(_experiment_worker, tasks)
    payloads = []
    for name, text, elapsed, payload in results:
        print("=" * 72)
        print(text)
        print("[%s completed in %.1fs]" % (name, elapsed))
        print()
        payloads.append(payload)
    if obs_mark is not None:
        # Same dedup protocol as parallel.campaigns: drop whatever was
        # recorded live (inline runs), then absorb every worker delta.
        obs.rollback(obs_mark)
        for payload in payloads:
            if payload is not None:
                obs.absorb(payload[0], payload[1])
        if trace_path:
            obs.export_jsonl(trace_path)
            print("[trace: wrote JSONL schema v1 to %s]" % trace_path)
        if args.trace_chrome:
            obs.export_chrome(args.trace_chrome)
            print("[trace: wrote Chrome trace-event JSON to %s]"
                  % args.trace_chrome)
        if args.metrics:
            print(obs.render_summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
