"""Send and receive buffers.

:class:`SendBuffer` stores the outbound byte stream and tracks the
unacknowledged prefix; :class:`Reassembler` turns possibly out-of-order,
possibly duplicated received segments back into an in-order stream.

Both are pure data structures (no simulator dependency), which makes them
ideal targets for property-based testing: any interleaving of segment
arrivals must reproduce the original stream exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SendBuffer:
    """Outbound stream buffer with sequence-number bookkeeping.

    Sequence numbers are absolute stream offsets (the connection layer
    adds its ISN).  ``una`` is the lowest unacknowledged offset, ``nxt``
    the next offset to be sent for the first time.
    """

    def __init__(self):
        self._chunks: List[bytes] = []
        self._base = 0          # stream offset of the start of _chunks
        self._length = 0        # total bytes ever enqueued
        self.una = 0
        self.nxt = 0
        self.fin_enqueued = False

    # ------------------------------------------------------------------
    @property
    def stream_length(self) -> int:
        """Total payload bytes enqueued so far."""
        return self._length

    @property
    def unsent_bytes(self) -> int:
        return self._length - self.nxt

    @property
    def unacked_bytes(self) -> int:
        return self.nxt - self.una

    @property
    def all_acked(self) -> bool:
        return self.una == self._length

    # ------------------------------------------------------------------
    def enqueue(self, data: bytes) -> None:
        """Append application data to the stream."""
        if self.fin_enqueued:
            raise RuntimeError("cannot enqueue after FIN")
        if data:
            self._chunks.append(bytes(data))
            self._length += len(data)

    def mark_fin(self) -> None:
        """Mark end-of-stream; no further enqueues are allowed."""
        self.fin_enqueued = True

    def peek(self, offset: int, size: int) -> bytes:
        """Return up to ``size`` bytes of the stream starting at ``offset``.

        Used both for new transmissions (offset == nxt) and for
        retransmissions (offset < nxt).
        """
        if offset < self._base:
            raise ValueError("offset %d below buffer base %d (already "
                             "released)" % (offset, self._base))
        if size <= 0 or offset >= self._length:
            return b""
        out = []
        remaining = size
        position = self._base
        for chunk in self._chunks:
            chunk_end = position + len(chunk)
            if chunk_end <= offset:
                position = chunk_end
                continue
            start = max(0, offset - position)
            take = chunk[start:start + remaining]
            out.append(take)
            remaining -= len(take)
            offset += len(take)
            position = chunk_end
            if remaining <= 0:
                break
        return b"".join(out)

    def peek_view(self, offset: int, size: int):
        """Zero-copy :meth:`peek`: a memoryview into one stored chunk.

        The transmit path sends MSS-sized slices of chunks the
        application enqueued whole, so the requested range almost always
        lies inside a single chunk; returning a view of it means segment
        payloads cross the simulated wire without being copied at every
        hop.  Ranges that straddle chunks fall back to the copying
        :meth:`peek`.  Views stay valid after :meth:`ack_to` releases the
        chunk (bytes are immutable and the view keeps them alive).
        """
        if offset < self._base:
            raise ValueError("offset %d below buffer base %d (already "
                             "released)" % (offset, self._base))
        if size <= 0 or offset >= self._length:
            return b""
        position = self._base
        for chunk in self._chunks:
            chunk_end = position + len(chunk)
            if chunk_end <= offset:
                position = chunk_end
                continue
            start = offset - position
            if start + size <= len(chunk):
                return memoryview(chunk)[start:start + size]
            break
        return self.peek(offset, size)

    def advance_nxt(self, size: int) -> None:
        """Record that ``size`` new bytes were transmitted."""
        if self.nxt + size > self._length:
            raise ValueError("cannot send beyond enqueued data")
        self.nxt += size

    def ack_to(self, offset: int) -> int:
        """Process a cumulative ACK up to stream ``offset``.

        Returns the number of newly acknowledged bytes.  Acked data below
        the new ``una`` is released from memory.
        """
        if offset <= self.una:
            return 0
        if offset > self.nxt:
            raise ValueError("ACK %d beyond nxt %d" % (offset, self.nxt))
        newly = offset - self.una
        self.una = offset
        self._release(offset)
        return newly

    def _release(self, offset: int) -> None:
        while self._chunks and self._base + len(self._chunks[0]) <= offset:
            self._base += len(self._chunks[0])
            self._chunks.pop(0)


class Reassembler:
    """In-order reassembly of received payload bytes.

    Offsets are absolute stream offsets (the connection layer strips the
    peer's ISN).  Duplicate and overlapping segments are tolerated; data
    already delivered is ignored.

    Offered data may be ``bytes`` or a ``memoryview`` (the zero-copy
    segment payloads produced by :meth:`SendBuffer.peek_view`); the
    in-order stream returned by :meth:`offer` is always real ``bytes`` —
    application delivery is the materialization boundary.
    """

    def __init__(self, window_bytes: int = 1 << 20):
        self.window_bytes = window_bytes
        self.next_expected = 0
        self._segments: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    @property
    def buffered_bytes(self) -> int:
        return sum(len(d) for d in self._segments.values())

    @property
    def available_window(self) -> int:
        """Receive window left to advertise."""
        return max(0, self.window_bytes - self.buffered_bytes)

    def offer(self, offset: int, data: bytes) -> bytes:
        """Insert a received segment; return newly in-order bytes.

        The returned bytes start exactly at the previous
        ``next_expected`` offset; an empty result means the segment was a
        duplicate or left a gap.
        """
        if data:
            expected = self.next_expected
            # Fast path: the segment lands exactly in order with nothing
            # buffered behind it — by far the common case on a loss-free
            # path.  Skips the store/drain dict traffic entirely.
            if offset == expected and not self._segments:
                self.next_expected = expected + len(data)
                return data if type(data) is bytes else bytes(data)
            end = offset + len(data)
            if end > expected:
                # Trim any prefix we have already delivered.
                if offset < expected:
                    data = data[expected - offset:]
                    offset = expected
                self._store(offset, data)
        return self._drain()

    def _store(self, offset: int, data: bytes) -> None:
        existing = self._segments.get(offset)
        if existing is None or len(existing) < len(data):
            self._segments[offset] = data

    def _drain(self) -> bytes:
        out = []
        while True:
            chunk = self._pop_covering(self.next_expected)
            if chunk is None:
                break
            out.append(chunk)
            self.next_expected += len(chunk)
        return b"".join(out)

    def _pop_covering(self, offset: int) -> Optional[bytes]:
        """Remove and return buffered data beginning at ``offset``."""
        direct = self._segments.pop(offset, None)
        if direct is not None:
            return direct
        # Handle overlap: a stored segment may begin before `offset` but
        # extend past it.
        for start in sorted(self._segments):
            if start > offset:
                return None
            data = self._segments[start]
            if start + len(data) > offset:
                del self._segments[start]
                return data[offset - start:]
            # Fully stale segment.
            del self._segments[start]
        return None

    def gaps(self) -> List[Tuple[int, int]]:
        """Return the (start, end) offsets of holes before buffered data."""
        holes = []
        cursor = self.next_expected
        for start in sorted(self._segments):
            if start > cursor:
                holes.append((cursor, start))
            cursor = max(cursor, start + len(self._segments[start]))
        return holes
