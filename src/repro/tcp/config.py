"""TCP stack configuration.

One :class:`TcpConfig` is attached per host stack (and may be overridden
per connection).  The defaults approximate a 2011-era Linux server stack —
the era of the paper's measurements — with an initial window of 3 segments
(RFC 3390; Google had only just begun experimenting with IW10 then).

The reproduction's split-TCP ablation works by varying these knobs: a
front-end server terminates the user connection with a normal cold stack
but talks to the back-end over a long-lived, already-warm connection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim import units
from repro.tcp.segment import DEFAULT_MSS


@dataclass(frozen=True)
class TcpConfig:
    """Tunables for one TCP endpoint.

    Attributes
    ----------
    mss:
        Maximum segment payload size in bytes.
    initial_window_segments:
        Initial congestion window, in segments (RFC 3390 allows up to 4;
        IW10 deployments use 10).
    initial_ssthresh_bytes:
        Initial slow-start threshold; effectively "infinite" by default.
    receive_window_bytes:
        Advertised receive window (held constant; window scaling is
        assumed).
    min_rto / max_rto:
        Bounds on the retransmission timeout, seconds.
    initial_rto:
        RTO before the first RTT sample (RFC 6298 says 1 s).
    delayed_ack:
        When True, pure ACKs for a single in-order segment are delayed up
        to ``delayed_ack_timeout`` (classic 40 ms quickack-off behaviour).
        Off by default: the measured services ACK queries immediately,
        which is what gives the paper a clean ``t2``.
    delayed_ack_timeout:
        Maximum ACK delay in seconds when ``delayed_ack`` is on.
    dupack_threshold:
        Duplicate ACKs that trigger fast retransmit.
    max_syn_retries / max_data_retries:
        Retransmission attempts before the connection is aborted.
    nagle:
        When True, small segments are coalesced while data is in flight.
        Off by default — interactive request/response traffic (search!)
        disables Nagle in practice.
    fixed_window_bytes:
        When set, the connection uses a
        :class:`~repro.tcp.congestion.FixedWindowController` pinned at
        this many bytes instead of Reno.  Models an operator-tuned
        internal path whose per-flow share is provisioned (no slow
        start, no unbounded growth) — the FE-BE legs of split TCP.
    congestion:
        Loss-based congestion-control algorithm: ``"reno"`` (NewReno,
        the default) or ``"cubic"`` (the 2011 Linux default).  Ignored
        when ``fixed_window_bytes`` is set or an explicit controller is
        passed to the connection.
    slow_start_after_idle:
        RFC 2861 congestion-window validation: after the connection has
        been idle for more than one RTO, collapse cwnd back to the
        initial window.  2011 Linux shipped with this ON; content
        providers turned it OFF for their persistent internal
        connections — exactly the knob split TCP's warm-connection
        benefit depends on, and what the idle-reset ablation measures.
        No effect on fixed-window connections.
    """

    mss: int = DEFAULT_MSS
    initial_window_segments: int = 3
    initial_ssthresh_bytes: int = 1 << 30
    receive_window_bytes: int = 1 << 20
    min_rto: float = units.ms(200)
    max_rto: float = 60.0
    initial_rto: float = 1.0
    delayed_ack: bool = False
    delayed_ack_timeout: float = units.ms(40)
    dupack_threshold: int = 3
    max_syn_retries: int = 6
    max_data_retries: int = 10
    nagle: bool = False
    fixed_window_bytes: "int | None" = None
    slow_start_after_idle: bool = False
    congestion: str = "reno"

    def __post_init__(self):
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.initial_window_segments <= 0:
            raise ValueError("initial_window_segments must be positive")
        if self.receive_window_bytes < self.mss:
            raise ValueError("receive window smaller than one MSS")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("invalid RTO bounds")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        if self.fixed_window_bytes is not None \
                and self.fixed_window_bytes < self.mss:
            raise ValueError("fixed window smaller than one MSS")
        if self.congestion not in ("reno", "cubic"):
            raise ValueError("congestion must be 'reno' or 'cubic', "
                             "got %r" % (self.congestion,))

    @property
    def initial_cwnd_bytes(self) -> int:
        return self.mss * self.initial_window_segments

    def with_overrides(self, **kwargs) -> "TcpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Era-appropriate defaults for a user-facing (cold) connection.
CLASSIC_2011 = TcpConfig()

#: A warmer stack used by some content providers in 2011 (IW10).
IW10 = TcpConfig(initial_window_segments=10)
