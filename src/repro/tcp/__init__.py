"""Event-driven TCP: handshake, slow start, loss recovery, persistence."""

from repro.tcp.buffers import Reassembler, SendBuffer
from repro.tcp.config import CLASSIC_2011, IW10, TcpConfig
from repro.tcp.congestion import (
    CongestionController,
    CubicController,
    FixedWindowController,
    RenoController,
)
from repro.tcp.connection import Connection, ConnectionStats, State, TcpApp
from repro.tcp.host import TcpHost
from repro.tcp.segment import DEFAULT_MSS, HEADER_BYTES, Segment

__all__ = [
    "CLASSIC_2011",
    "Connection",
    "ConnectionStats",
    "CongestionController",
    "CubicController",
    "DEFAULT_MSS",
    "FixedWindowController",
    "HEADER_BYTES",
    "IW10",
    "Reassembler",
    "RenoController",
    "Segment",
    "SendBuffer",
    "State",
    "TcpApp",
    "TcpConfig",
    "TcpHost",
]
