"""Per-node TCP stack.

:class:`TcpHost` binds to a :class:`repro.net.node.Node`, registers itself
as the node's ``"tcp"`` protocol handler, and demultiplexes incoming
segments to connections by flow key.  It provides the two socket-style
entry points used by everything above it:

* :meth:`connect` — active open toward a remote endpoint;
* :meth:`listen` — passive open; an application factory is invoked for
  every accepted connection.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.net.address import Endpoint, EphemeralPortAllocator, FlowKey
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams, derive_seed
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import CongestionController
from repro.tcp.connection import Connection, TcpApp
from repro.tcp.segment import Segment

AppFactory = Callable[[], TcpApp]

#: Initial sequence numbers are drawn modulo this space.  Kept well
#: below 2**32 so tests can do signed arithmetic on raw sequence
#: numbers without wraparound; exported for the session-replay cache,
#: which re-derives per-flow ISNs when materializing a cached timeline.
ISN_SPACE = 1 << 24


class TcpHost:
    """The TCP stack of a single simulated host."""

    def __init__(self, sim: Simulator, node: Node,
                 config: Optional[TcpConfig] = None,
                 streams: Optional[RandomStreams] = None):
        self.sim = sim
        self.node = node
        self.config = config or TcpConfig()
        self.streams = streams or RandomStreams(0)
        self.connections: Dict[FlowKey, Connection] = {}
        # Fast demux index: (local_port, remote_host, remote_port) ->
        # Connection.  Plain int/str tuples hash far cheaper than the
        # nested frozen-dataclass FlowKey, and _receive runs per packet.
        self._flows: Dict[tuple, Connection] = {}
        self.listeners: Dict[int, AppFactory] = {}
        self.listener_configs: Dict[int, TcpConfig] = {}
        self._ports = EphemeralPortAllocator()
        node.register_protocol("tcp", self._receive)

    # ------------------------------------------------------------------
    # socket API
    # ------------------------------------------------------------------
    def listen(self, port: int, factory: AppFactory,
               config: Optional[TcpConfig] = None) -> None:
        """Accept connections on ``port``; each gets ``factory()`` as app."""
        if port in self.listeners:
            raise ValueError("port %d already listening on %s"
                             % (port, self.node.name))
        self.listeners[port] = factory
        if config is not None:
            self.listener_configs[port] = config

    def connect(self, remote: Endpoint, app: TcpApp,
                local_port: Optional[int] = None,
                config: Optional[TcpConfig] = None,
                controller: Optional[CongestionController] = None
                ) -> Connection:
        """Open a connection to ``remote`` and return it immediately.

        ``app.on_established`` fires when the handshake completes.
        """
        port = local_port if local_port is not None else self._ports.allocate()
        flow = FlowKey(Endpoint(self.node.name, port), remote)
        if flow in self.connections:
            raise ValueError("flow already exists: %s" % flow)
        conn = Connection(self, flow, app, config or self.config,
                          controller=controller)
        self.connections[flow] = conn
        self._flows[self._flow_index(flow)] = conn
        conn.open_active()
        return conn

    @staticmethod
    def _flow_index(flow: FlowKey) -> tuple:
        return (flow.local.port, flow.remote.host, flow.remote.port)

    def reserve_port(self) -> int:
        """Allocate (and consume) the next ephemeral port without opening
        a connection.

        The session-replay cache uses this to keep port-allocation order
        identical between a replayed session and the full simulation it
        stands in for: a replay burns exactly the one ephemeral port the
        simulated connection would have bound.
        """
        return self._ports.allocate()

    def forget(self, conn: Connection) -> None:
        """Release a closed connection's flow state and ephemeral port."""
        self.connections.pop(conn.flow, None)
        self._flows.pop(self._flow_index(conn.flow), None)
        if conn.flow.local.port >= EphemeralPortAllocator.FIRST:
            self._ports.release(conn.flow.local.port)

    # ------------------------------------------------------------------
    # demux
    # ------------------------------------------------------------------
    def _receive(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, Segment):
            return
        conn = self._flows.get((segment.dport, packet.src, segment.sport))
        if conn is not None:
            conn.handle_segment(segment)
            return
        if segment.syn and not segment.ack_flag:
            factory = self.listeners.get(segment.dport)
            if factory is not None:
                flow = FlowKey(Endpoint(self.node.name, segment.dport),
                               Endpoint(packet.src, segment.sport))
                self._accept(flow, segment, factory)
                return
        # No matching flow or listener: silently drop (a real stack would
        # send RST; nothing in the reproduction depends on it).

    def _accept(self, flow: FlowKey, syn: Segment,
                factory: AppFactory) -> None:
        app = factory()
        config = self.listener_configs.get(flow.local.port, self.config)
        conn = Connection(self, flow, app, config, passive=True)
        self.connections[flow] = conn
        self._flows[self._flow_index(flow)] = conn
        conn._open_passive(syn)

    # ------------------------------------------------------------------
    def next_isn(self, flow: FlowKey) -> int:
        """Deterministic per-flow initial sequence number."""
        seed = derive_seed(self.streams.seed, "isn/%s" % flow)
        return seed % ISN_SPACE
