"""TCP segments.

A :class:`Segment` is the transport PDU carried in a
:class:`repro.net.packet.Packet`.  Segments carry *real payload bytes*:
the content-analysis pipeline (Section 3 of the paper) diffs actual
response bodies across keywords to find the static prefix, so the
simulated wire must carry the actual synthetic HTML.

Sequence-number arithmetic follows TCP conventions: SYN and FIN each
consume one sequence number; ``seq`` is the number of the first payload
byte; ``ack`` is cumulative (next byte expected).

``data`` is bytes-like rather than strictly ``bytes``: the send path
hands segments zero-copy :class:`memoryview` slices of the send buffer
(see :meth:`repro.tcp.buffers.SendBuffer.peek_view`), which every layer
below treats as length-only freight.  Consumers that need real bytes —
the packet-capture boundary, application delivery — materialize with
``bytes(...)`` there and only there.

Like :class:`~repro.net.packet.Packet`, this is a manual ``__slots__``
class: one segment per MSS of payload plus one per ACK makes the
constructor a hot-path cost.
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Combined TCP + IP + link framing bytes charged per segment on the wire.
HEADER_BYTES = 40

#: Default maximum segment size (payload bytes per segment); the classic
#: Ethernet-derived value used by the services measured in the paper.
DEFAULT_MSS = 1460

_segment_counter = itertools.count(1)


class Segment:
    """One TCP segment.

    Attributes
    ----------
    sport, dport:
        Source and destination ports (host names live on the enclosing
        :class:`~repro.net.packet.Packet`).
    seq:
        Sequence number of the first byte of ``data`` (or of the SYN/FIN
        when the segment carries one and no data).
    ack:
        Cumulative acknowledgement number; meaningful when ``ack_flag``.
    data:
        Payload bytes (may be empty; may be a ``memoryview`` into the
        sender's buffer — see module docstring).
    syn, fin, ack_flag:
        Control flags.
    retransmit:
        True when this transmission is a retransmission — used to honour
        Karn's algorithm when sampling RTT.
    uid:
        Unique id for tracing.
    """

    __slots__ = ("sport", "dport", "seq", "ack", "data", "syn", "fin",
                 "ack_flag", "retransmit", "uid")

    def __init__(self, sport: int, dport: int, seq: int, ack: int = 0,
                 data: bytes = b"", syn: bool = False, fin: bool = False,
                 ack_flag: bool = False, retransmit: bool = False,
                 uid: Optional[int] = None):
        if seq < 0 or ack < 0:
            raise ValueError("sequence/ack numbers must be non-negative")
        self.sport = sport
        self.dport = dport
        self.seq = seq
        self.ack = ack
        self.data = data
        self.syn = syn
        self.fin = fin
        self.ack_flag = ack_flag
        self.retransmit = retransmit
        self.uid = next(_segment_counter) if uid is None else uid

    @property
    def seq_span(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN flags."""
        return len(self.data) + int(self.syn) + int(self.fin)

    @property
    def end_seq(self) -> int:
        """First sequence number *after* this segment."""
        return self.seq + self.seq_span

    @property
    def wire_size(self) -> int:
        """On-wire size in bytes including all header overhead."""
        return HEADER_BYTES + len(self.data)

    @property
    def is_pure_ack(self) -> bool:
        """True for segments that carry only an acknowledgement."""
        return (self.ack_flag and not len(self.data)
                and not self.syn and not self.fin)

    def describe(self) -> str:
        """Compact tcpdump-style description, used in trace tooling."""
        flags = "".join(code for flag, code in
                        ((self.syn, "S"), (self.fin, "F"),
                         (self.ack_flag, "."))
                        if flag) or "-"
        return "%d>%d [%s] seq=%d ack=%d len=%d" % (
            self.sport, self.dport, flags, self.seq, self.ack,
            len(self.data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Segment #%d %s>" % (self.uid, self.describe())
