"""The TCP connection state machine.

This module implements an event-driven TCP endpoint faithful enough to
reproduce the transport phenomena the paper depends on:

* three-way handshake (the paper's first packet cluster in Fig. 4);
* slow-start window ramp-up (whose elimination on the FE-BE leg is the
  whole point of split TCP);
* cumulative ACKs, duplicate-ACK fast retransmit with NewReno-style
  recovery, and RFC 6298 retransmission timeouts with Karn's algorithm;
* persistent connections whose congestion window survives across
  request/response exchanges (no idle-window reset), which is how the
  FE's long-lived back-end connection stays warm;
* immediate or delayed ACKs, and ACK piggybacking on response data.

It does **not** model window scaling negotiation (the advertised window
is a constant from config), selective acknowledgements, or simultaneous
open — none of which affect the measured quantities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.net.address import Endpoint, FlowKey
from repro.net.packet import Packet
from repro.tcp.buffers import Reassembler, SendBuffer
from repro.tcp.config import TcpConfig
from repro.tcp.congestion import (
    CongestionController,
    CubicController,
    FixedWindowController,
    RenoController,
)
from repro.tcp.segment import Segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tcp.host import TcpHost


class State(enum.Enum):
    """TCP connection states (simultaneous open/close not modelled)."""

    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


class ConnectionError_(Exception):
    """Raised on fatal connection failures (handshake/retry exhaustion)."""


@dataclass
class ConnectionStats:
    """Diagnostics counters for one connection."""

    segments_sent: int = 0
    segments_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    retransmissions: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    dup_acks_received: int = 0


class TcpApp:
    """Application callback interface for a TCP connection.

    Subclass (or duck-type) and pass to ``TcpHost.connect`` /
    ``TcpHost.listen``.  All callbacks receive the connection first.
    """

    def on_established(self, conn: "Connection") -> None:
        """Handshake complete; the connection can carry data."""

    def on_data(self, conn: "Connection", data: bytes) -> None:
        """In-order payload bytes arrived."""

    def on_close(self, conn: "Connection") -> None:
        """The peer finished sending (FIN received and delivered)."""

    def on_error(self, conn: "Connection", message: str) -> None:
        """The connection was aborted (retry exhaustion etc.)."""


class Connection:
    """One endpoint of a TCP connection.

    Connections are created through :class:`repro.tcp.host.TcpHost`
    (active open via ``connect`` or passive open via ``listen``), never
    directly.
    """

    def __init__(self, host: "TcpHost", flow: FlowKey, app: TcpApp,
                 config: TcpConfig,
                 controller: Optional[CongestionController] = None,
                 passive: bool = False):
        self.host = host
        self.sim = host.sim
        self.flow = flow
        self.app = app
        self.config = config
        self.state = State.CLOSED
        self.passive = passive
        self.stats = ConnectionStats()

        if controller is not None:
            self.cc: CongestionController = controller
        elif config.fixed_window_bytes is not None:
            self.cc = FixedWindowController(config.fixed_window_bytes)
        elif config.congestion == "cubic":
            self.cc = CubicController(config.mss,
                                      config.initial_cwnd_bytes,
                                      config.initial_ssthresh_bytes,
                                      clock=lambda: self.sim.now)
        else:
            self.cc = RenoController(config.mss, config.initial_cwnd_bytes,
                                     config.initial_ssthresh_bytes)

        # Sequence bookkeeping.  ISNs are deterministic per flow for
        # reproducibility; buffers work in stream offsets.
        self.isn = host.next_isn(flow)
        self.peer_isn: Optional[int] = None
        self.send_buffer = SendBuffer()
        self.reassembler = Reassembler(config.receive_window_bytes)
        self.peer_rwnd = config.receive_window_bytes

        # Handshake / FIN bookkeeping.
        self._syn_acked = False
        self._fin_sent = False
        self._fin_acked = False
        self._peer_fin_offset: Optional[int] = None
        self._peer_fin_delivered = False

        # Loss recovery.
        self._dupacks = 0
        self._recover_offset = 0
        self._rto = config.initial_rto
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto_timer = None
        self._retries = 0
        self._rtt_probe: Optional[tuple] = None  # (end_offset, send_time)

        # ACK generation.
        self._ack_pending = False
        self._delack_timer = None
        self._segments_since_ack = 0

        # RFC 2861 idle detection.
        self._last_send_time = self.sim.now

        self.open_time = self.sim.now
        self.established_time: Optional[float] = None
        self.close_callbacks: list = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state in (State.ESTABLISHED, State.FIN_WAIT_1,
                              State.FIN_WAIT_2, State.CLOSE_WAIT)

    @property
    def local(self) -> Endpoint:
        return self.flow.local

    @property
    def remote(self) -> Endpoint:
        return self.flow.remote

    @property
    def srtt(self) -> Optional[float]:
        """Smoothed RTT estimate in seconds (None before first sample)."""
        return self._srtt

    def send(self, data: bytes) -> None:
        """Queue application ``data`` for transmission."""
        if self._fin_sent:
            raise ConnectionError_("send after close on %s" % self.flow)
        if self.state in (State.CLOSE_WAIT,) or self.established or \
                self.state in (State.SYN_SENT, State.SYN_RCVD):
            self.send_buffer.enqueue(data)
            if self.established:
                self._try_send()
        else:
            raise ConnectionError_("send on %s connection" % self.state.value)

    def close(self) -> None:
        """Finish sending: a FIN is queued after all buffered data."""
        if self._fin_sent or self.send_buffer.fin_enqueued:
            return
        self.send_buffer.mark_fin()
        if self.established:
            self._try_send()

    def abort(self, reason: str = "aborted") -> None:
        """Tear the connection down immediately (no FIN exchange)."""
        self._cancel_timers()
        if self.state != State.CLOSED:
            self.state = State.CLOSED
            self.host.forget(self)
            self.app.on_error(self, reason)

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------
    def open_active(self) -> None:
        """Send the initial SYN (client side)."""
        if self.state != State.CLOSED:
            raise ConnectionError_("open_active in state %s" % self.state)
        self.state = State.SYN_SENT
        self._transmit(Segment(sport=self.local.port, dport=self.remote.port,
                               seq=self.isn, syn=True))
        self._arm_rto()

    def _open_passive(self, syn: Segment) -> None:
        """Respond to a received SYN (server side)."""
        self.peer_isn = syn.seq
        self.reassembler.next_expected = 0
        self.state = State.SYN_RCVD
        self._transmit(Segment(sport=self.local.port, dport=self.remote.port,
                               seq=self.isn, ack=syn.seq + 1,
                               syn=True, ack_flag=True))
        self._arm_rto()

    # ------------------------------------------------------------------
    # offset helpers: buffers track stream offsets; wire uses absolute seq
    # ------------------------------------------------------------------
    def _send_seq(self, offset: int) -> int:
        """Stream offset -> absolute sequence number (our direction)."""
        return self.isn + 1 + offset

    def _recv_offset(self, seq: int) -> int:
        """Absolute sequence number -> stream offset (peer direction)."""
        assert self.peer_isn is not None
        return seq - (self.peer_isn + 1)

    def _rcv_nxt(self) -> int:
        """Next absolute sequence number expected from the peer."""
        assert self.peer_isn is not None
        offset = self.reassembler.next_expected
        fin_extra = 0
        if (self._peer_fin_offset is not None
                and offset >= self._peer_fin_offset):
            fin_extra = 1
        return self.peer_isn + 1 + offset + fin_extra

    # ------------------------------------------------------------------
    # segment reception
    # ------------------------------------------------------------------
    def handle_segment(self, segment: Segment) -> None:
        """Entry point for every segment of this flow delivered to us."""
        self.stats.segments_received += 1
        self.stats.bytes_received += len(segment.data)

        if self.state == State.SYN_SENT:
            self._handle_in_syn_sent(segment)
            return
        if self.state == State.CLOSED:
            return
        if segment.syn:
            # Duplicate SYN (our SYN-ACK was lost): re-ack it.
            if self.state == State.SYN_RCVD and not segment.ack_flag:
                self._transmit(Segment(
                    sport=self.local.port, dport=self.remote.port,
                    seq=self.isn, ack=segment.seq + 1,
                    syn=True, ack_flag=True, retransmit=True))
            return

        if segment.ack_flag:
            self._process_ack(segment)
        if segment.data or segment.fin:
            self._process_payload(segment)
        self._flush_ack_or_data()

    def _handle_in_syn_sent(self, segment: Segment) -> None:
        if not (segment.syn and segment.ack_flag):
            return
        if segment.ack != self.isn + 1:
            return
        self.peer_isn = segment.seq
        self._syn_acked = True
        self._retries = 0
        self._sample_rtt_for_handshake()
        self._enter_established()
        # The handshake ACK; piggybacked on data when the app already
        # queued some (typical HTTP client behaviour: ACK + GET go
        # back-to-back, which is exactly the paper's t1 cluster).
        self._ack_pending = True
        self._flush_ack_or_data()

    def _enter_established(self) -> None:
        self.state = State.ESTABLISHED
        self.established_time = self.sim.now
        self._cancel_rto()
        self.app.on_established(self)
        self._try_send()

    def _process_ack(self, segment: Segment) -> None:
        if self.state == State.SYN_RCVD:
            if segment.ack == self.isn + 1:
                self._syn_acked = True
                self._retries = 0
                self._enter_established()
            # fall through: the same segment may carry data (rare here).

        ack_offset = segment.ack - (self.isn + 1)
        fin_offset = (self.send_buffer.stream_length
                      if self.send_buffer.fin_enqueued else None)

        if fin_offset is not None and ack_offset == fin_offset + 1:
            ack_offset = fin_offset  # the +1 acknowledges our FIN
            fin_now_acked = self._fin_sent
        else:
            fin_now_acked = False

        if ack_offset > self.send_buffer.nxt:
            return  # acks data we never sent; ignore

        newly = 0
        if ack_offset > self.send_buffer.una:
            newly = self.send_buffer.ack_to(ack_offset)
            self._retries = 0
            self._on_bytes_acked(ack_offset, newly)
        elif (ack_offset == self.send_buffer.una
              and self.send_buffer.unacked_bytes > 0
              and not segment.data and not segment.fin):
            self._on_dup_ack()

        if fin_now_acked and not self._fin_acked:
            self._fin_acked = True
            self._retries = 0
            self._advance_close_state_on_fin_ack()

        if newly or fin_now_acked:
            if self._outstanding():
                self._arm_rto(restart=True)
            else:
                self._cancel_rto()
        self._try_send()

    def _on_bytes_acked(self, ack_offset: int, newly: int) -> None:
        # RTT sampling (Karn: the probe is only set on fresh sends).
        if self._rtt_probe is not None and ack_offset >= self._rtt_probe[0]:
            self._update_rtt(self.sim.now - self._rtt_probe[1])
            self._rtt_probe = None
        if self.cc.in_recovery:
            if ack_offset >= self._recover_offset:
                self.cc.on_recovery_exit()
                self._dupacks = 0
            else:
                # NewReno partial ACK: retransmit the next hole at once.
                self.cc.on_ack(newly, self._flight_size())
                self._retransmit_una()
                return
        else:
            self._dupacks = 0
            self.cc.on_ack(newly, self._flight_size())

    def _on_dup_ack(self) -> None:
        self.stats.dup_acks_received += 1
        self._dupacks += 1
        if self.cc.in_recovery:
            self.cc.on_dup_ack()
            self._try_send()
        elif self._dupacks == self.config.dupack_threshold:
            self.stats.fast_retransmits += 1
            self._recover_offset = self.send_buffer.nxt
            self.cc.on_fast_retransmit(self._flight_size())
            self._retransmit_una()

    def _process_payload(self, segment: Segment) -> None:
        if self.peer_isn is None:
            return
        offset = self._recv_offset(segment.seq)
        delivered = self.reassembler.offer(offset, segment.data)

        if segment.fin:
            fin_offset = offset + len(segment.data)
            if (self._peer_fin_offset is None
                    or fin_offset < self._peer_fin_offset):
                self._peer_fin_offset = fin_offset

        self._ack_pending = True
        self._segments_since_ack += 1

        if delivered:
            self.app.on_data(self, delivered)
        self._maybe_deliver_fin()

    def _maybe_deliver_fin(self) -> None:
        if (self._peer_fin_offset is not None
                and not self._peer_fin_delivered
                and self.reassembler.next_expected >= self._peer_fin_offset):
            self._peer_fin_delivered = True
            self._advance_close_state_on_peer_fin()
            self.app.on_close(self)

    # ------------------------------------------------------------------
    # close-state transitions
    # ------------------------------------------------------------------
    def _advance_close_state_on_peer_fin(self) -> None:
        if self.state == State.ESTABLISHED:
            self.state = State.CLOSE_WAIT
        elif self.state == State.FIN_WAIT_1:
            # Proper TCP would pass through CLOSING when our FIN is not
            # yet acked; collapsing to TIME_WAIT does not change timing.
            self.state = State.TIME_WAIT
            self._schedule_forget()
        elif self.state == State.FIN_WAIT_2:
            self.state = State.TIME_WAIT
            self._schedule_forget()

    def _advance_close_state_on_fin_ack(self) -> None:
        if self.state == State.FIN_WAIT_1:
            self.state = (State.TIME_WAIT if self._peer_fin_delivered
                          else State.FIN_WAIT_2)
            if self.state == State.TIME_WAIT:
                self._schedule_forget()
        elif self.state == State.LAST_ACK:
            self.state = State.CLOSED
            self._cancel_timers()
            self.host.forget(self)

    def _schedule_forget(self) -> None:
        """Approximate TIME_WAIT: linger 2 RTO then release the flow."""
        self._cancel_timers()
        # TIME_WAIT expiry is unconditional; the handle is never cancelled.
        self.sim.schedule(2 * self._rto,
                          self._finish_time_wait)  # simlint: ignore[EVT003]

    def _finish_time_wait(self) -> None:
        if self.state == State.TIME_WAIT:
            self.state = State.CLOSED
            self.host.forget(self)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _flight_size(self) -> int:
        return self.send_buffer.unacked_bytes

    def _outstanding(self) -> bool:
        if self.send_buffer.unacked_bytes > 0:
            return True
        if self._fin_sent and not self._fin_acked:
            return True
        if self.state in (State.SYN_SENT, State.SYN_RCVD):
            return True
        return False

    def _window_available(self) -> int:
        window = min(self.cc.cwnd, self.peer_rwnd)
        return max(0, window - self._flight_size())

    def _try_send(self) -> None:
        """Transmit as much new data as the windows allow."""
        if not self.established:
            return
        self._maybe_reset_after_idle()
        sent_any = False
        while True:
            available = self._window_available()
            unsent = self.send_buffer.unsent_bytes
            if unsent <= 0 or available <= 0:
                break
            size = min(self.config.mss, unsent, available)
            if (self.config.nagle and size < self.config.mss
                    and self._flight_size() > 0):
                break
            offset = self.send_buffer.nxt
            data = self.send_buffer.peek(offset, size)
            self.send_buffer.advance_nxt(len(data))
            fin = (self.send_buffer.fin_enqueued
                   and self.send_buffer.unsent_bytes == 0
                   and not self._fin_sent)
            if fin:
                self._fin_sent = True
                self._note_fin_state()
            segment = Segment(sport=self.local.port, dport=self.remote.port,
                              seq=self._send_seq(offset),
                              ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                              ack_flag=self.peer_isn is not None,
                              data=data, fin=fin)
            if self._rtt_probe is None:
                self._rtt_probe = (offset + len(data), self.sim.now)
            self._transmit(segment)
            self._ack_pending = False
            self._segments_since_ack = 0
            sent_any = True
        # A bare FIN when everything was already sent.
        if (self.send_buffer.fin_enqueued and not self._fin_sent
                and self.send_buffer.unsent_bytes == 0
                and self._window_available() >= 0):
            self._fin_sent = True
            self._note_fin_state()
            self._transmit(Segment(
                sport=self.local.port, dport=self.remote.port,
                seq=self._send_seq(self.send_buffer.stream_length),
                ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                ack_flag=self.peer_isn is not None, fin=True))
            self._ack_pending = False
            sent_any = True
        if sent_any:
            self._arm_rto()

    def _maybe_reset_after_idle(self) -> None:
        """RFC 2861: collapse cwnd after an idle period (if configured)."""
        if not self.config.slow_start_after_idle:
            return
        if not isinstance(self.cc, (RenoController, CubicController)):
            return
        if self._flight_size() > 0:
            return  # not idle: data is in flight
        idle = self.sim.now - self._last_send_time
        if idle > max(self._rto, self.config.min_rto):
            self.cc.cwnd = min(self.cc.cwnd, self.config.initial_cwnd_bytes)

    def _note_fin_state(self) -> None:
        if self.state == State.ESTABLISHED:
            self.state = State.FIN_WAIT_1
        elif self.state == State.CLOSE_WAIT:
            self.state = State.LAST_ACK

    def _retransmit_una(self) -> None:
        """Retransmit the first unacknowledged segment."""
        self.stats.retransmissions += 1
        offset = self.send_buffer.una
        if offset < self.send_buffer.stream_length:
            size = min(self.config.mss,
                       self.send_buffer.nxt - offset) or self.config.mss
            data = self.send_buffer.peek(offset, size)
            fin = (self._fin_sent
                   and offset + len(data) >= self.send_buffer.stream_length)
            segment = Segment(sport=self.local.port, dport=self.remote.port,
                              seq=self._send_seq(offset),
                              ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                              ack_flag=self.peer_isn is not None,
                              data=data, fin=fin, retransmit=True)
        elif self._fin_sent and not self._fin_acked:
            segment = Segment(sport=self.local.port, dport=self.remote.port,
                              seq=self._send_seq(self.send_buffer.stream_length),
                              ack=self._rcv_nxt() if self.peer_isn is not None else 0,
                              ack_flag=self.peer_isn is not None,
                              fin=True, retransmit=True)
        else:
            return
        self._rtt_probe = None  # Karn's algorithm
        self._transmit(segment)
        self._arm_rto(restart=True)

    def _flush_ack_or_data(self) -> None:
        """Send queued data (which piggybacks the ACK) or a pure ACK."""
        self._try_send()
        if not self._ack_pending or self.peer_isn is None:
            return
        if self.config.delayed_ack and self._segments_since_ack < 2 \
                and self._peer_fin_offset is None:
            if self._delack_timer is None:
                self._delack_timer = self.sim.schedule(
                    self.config.delayed_ack_timeout, self._delack_fire)
            return
        self._send_pure_ack()

    def _delack_fire(self) -> None:
        self._delack_timer = None
        if self._ack_pending:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._ack_pending = False
        self._segments_since_ack = 0
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
        self._transmit(Segment(sport=self.local.port, dport=self.remote.port,
                               seq=self._send_seq(self.send_buffer.nxt),
                               ack=self._rcv_nxt(), ack_flag=True))

    def _transmit(self, segment: Segment) -> None:
        self.stats.segments_sent += 1
        self.stats.bytes_sent += len(segment.data)
        self._last_send_time = self.sim.now
        if segment.retransmit:
            pass  # counted by callers that know the cause
        packet = Packet(src=self.local.host, dst=self.remote.host,
                        protocol="tcp", size_bytes=segment.wire_size,
                        payload=segment)
        self.host.node.send(packet)

    # ------------------------------------------------------------------
    # timers & RTT estimation (RFC 6298)
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        if sample < 0:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            alpha, beta = 1.0 / 8.0, 1.0 / 4.0
            self._rttvar = ((1 - beta) * self._rttvar
                            + beta * abs(self._srtt - sample))
            self._srtt = (1 - alpha) * self._srtt + alpha * sample
        self._rto = self._srtt + max(4 * self._rttvar, 0.001)
        self._rto = min(max(self._rto, self.config.min_rto),
                        self.config.max_rto)

    def _sample_rtt_for_handshake(self) -> None:
        self._update_rtt(self.sim.now - self.open_time)

    def _arm_rto(self, restart: bool = False) -> None:
        if restart:
            self._cancel_rto()
        if self._rto_timer is None:
            self._rto_timer = self.sim.schedule(self._rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _cancel_timers(self) -> None:
        self._cancel_rto()
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if not self._outstanding():
            return
        self.stats.timeouts += 1
        self._retries += 1
        limit = (self.config.max_syn_retries
                 if self.state in (State.SYN_SENT, State.SYN_RCVD)
                 else self.config.max_data_retries)
        if self._retries > limit:
            self.abort("retry limit exceeded in %s" % self.state.value)
            return
        self._rto = min(self._rto * 2, self.config.max_rto)
        if self.state == State.SYN_SENT:
            self._transmit(Segment(sport=self.local.port,
                                   dport=self.remote.port,
                                   seq=self.isn, syn=True, retransmit=True))
        elif self.state == State.SYN_RCVD:
            self._transmit(Segment(sport=self.local.port,
                                   dport=self.remote.port,
                                   seq=self.isn, ack=self.peer_isn + 1,
                                   syn=True, ack_flag=True, retransmit=True))
        else:
            self.cc.on_timeout(self._flight_size())
            self._dupacks = 0
            self._retransmit_una()
            return  # _retransmit_una re-armed the timer
        self._arm_rto()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Connection %s %s cwnd=%d>" % (
            self.flow, self.state.value, self.cc.cwnd)
